//! Quickstart: generate the paper's workload, run the zigzag join, inspect
//! the result and the data-movement summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A hybrid warehouse: a shared-nothing parallel database plus an
    //    HDFS cluster running the JEN engine (paper-shaped topology, small).
    let mut config = SystemConfig::paper_shape(4, 6);
    config.rows_per_block = 2_000;
    let mut system = HybridSystem::new(config)?;

    // 2. The paper's synthetic workload: transaction table T in the
    //    database, click-log table L on HDFS, with controlled predicate and
    //    join-key selectivities.
    let workload = WorkloadSpec {
        t_rows: 20_000,
        l_rows: 150_000,
        num_keys: 200,
        sigma_t: 0.1,
        sigma_l: 0.4,
        st: 0.2,
        sl: 0.1,
        ..WorkloadSpec::tiny()
    }
    .generate()?;
    workload.load_into(&mut system, FileFormat::Columnar)?;

    // 3. Run the paper's query with the zigzag join.
    let query = workload.query();
    let out = run(&mut system, &query, JoinAlgorithm::Zigzag)?;

    println!("query result ({} groups):", out.result.num_rows());
    for row in 0..out.result.num_rows().min(10) {
        let cells = out.result.row(row);
        println!("  group {:>4} -> count {}", cells[0], cells[1]);
    }

    let s = &out.summary;
    println!("\ndata movement:");
    println!("  HDFS rows scanned       {:>10}", s.hdfs_rows_raw);
    println!("  … after local predicates{:>10}", s.hdfs_rows_after_pred);
    println!("  … after BF_DB           {:>10}", s.hdfs_rows_after_bloom);
    println!("  HDFS tuples shuffled    {:>10}", s.hdfs_tuples_shuffled);
    println!("  DB tuples sent (T'')    {:>10}", s.db_tuples_sent);
    println!("  Bloom bytes exchanged   {:>10}", s.bloom_cross_bytes);

    // 4. Compare: the same query via the repartition join (no Bloom filters)
    let rep = run(
        &mut system,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )?;
    assert_eq!(rep.result, out.result, "all algorithms agree");
    println!(
        "\nrepartition (no BF) for comparison: {} tuples shuffled, {} DB tuples sent",
        rep.summary.hdfs_tuples_shuffled, rep.summary.db_tuples_sent
    );
    println!(
        "zigzag moved {:.1}x fewer HDFS tuples and {:.1}x fewer DB tuples",
        rep.summary.hdfs_tuples_shuffled as f64 / s.hdfs_tuples_shuffled.max(1) as f64,
        rep.summary.db_tuples_sent as f64 / s.db_tuples_sent.max(1) as f64
    );
    Ok(())
}
