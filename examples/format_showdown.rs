//! Text vs columnar storage for the same join (paper §5.4).
//!
//! Loads the identical log table in both formats, runs the zigzag join on
//! each, and shows why columnar wins: projection pushdown reads a fraction
//! of the bytes, and chunk min/max statistics skip whole blocks.
//!
//! ```sh
//! cargo run --release --example format_showdown
//! ```

use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_costmodel::{CostModel, ScaleFactors};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec {
        t_rows: 20_000,
        l_rows: 200_000,
        num_keys: 200,
        ..WorkloadSpec::tiny()
    };
    let workload = spec.generate()?;
    let query = workload.query();
    let model = CostModel::paper();
    let scale = ScaleFactors::to_paper(spec.t_rows, spec.l_rows, spec.num_keys);

    println!("zigzag join over the same data in two formats:\n");
    let mut results = Vec::new();
    for format in [FileFormat::Text, FileFormat::Columnar] {
        let mut config = SystemConfig::paper_shape(4, 6);
        config.rows_per_block = 4_000;
        let mut system = HybridSystem::new(config)?;
        workload.load_into(&mut system, format)?;
        let stored = system.hdfs.read().file_size("/warehouse/L")?;
        let out = run(&mut system, &query, JoinAlgorithm::Zigzag)?;
        let est = model.estimate(JoinAlgorithm::Zigzag, &out.summary, &scale);
        println!("[{format}]");
        println!("  stored size            {stored:>12} bytes");
        println!(
            "  bytes actually scanned {:>12} bytes",
            out.summary.hdfs_bytes_scanned
        );
        println!(
            "  blocks skipped via stats {:>10}",
            out.summary.hdfs_blocks_skipped
        );
        println!("  estimated paper-scale time {:>8.0} s", est.total_s);
        for phase in &est.phases {
            println!("    {:<38} {:>7.1} s", phase.name, phase.seconds);
        }
        println!();
        results.push((out.result.clone(), out.summary.hdfs_bytes_scanned));
    }
    assert_eq!(
        results[0].0, results[1].0,
        "formats must agree on the answer"
    );
    println!(
        "columnar scanned {:.1}x fewer bytes than text for the same result",
        results[0].1 as f64 / results[1].1.max(1) as f64
    );
    Ok(())
}
