//! Tour of the algorithm advisor (§5.5 rules): which join strategy to pick
//! as the predicate selectivities change.
//!
//! ```sh
//! cargo run --release --example advisor_tour
//! ```

use hybrid_core::advisor::{advise, estimated_costs, QueryEstimates};

fn main() {
    println!("advisor decisions across the selectivity space (paper-scale sizes):\n");
    println!(
        "{:>8} {:>8} {:>6} {:>6}   {:<16} cheapest transfer plan",
        "sigma_T", "sigma_L", "ST'", "SL'", "advice"
    );
    // T projects to ~25 GB, L to ~120 GB, as in the paper's dataset.
    for (sigma_t, sigma_l, st, sl) in [
        (0.001, 0.2, 1.0, 1.0), // tiny T' -> broadcast
        (0.01, 0.2, 1.0, 1.0),  // T' 10x bigger -> repartition family
        (0.1, 0.001, 1.0, 1.0), // tiny L' -> fetch into the DB
        (0.1, 0.01, 0.5, 0.1),  // small L', selective join -> db(BF)
        (0.1, 0.4, 0.2, 0.1),   // the common case -> zigzag
        (0.1, 0.4, 1.0, 1.0),   // join keys filter nothing -> plain repartition
        (0.2, 0.4, 0.05, 0.4),  // very selective T-side join keys -> zigzag
    ] {
        let est = QueryEstimates {
            t_prime_bytes: (25.0e9 * sigma_t) as u64,
            l_prime_bytes: (120.0e9 * sigma_l) as u64,
            st,
            sl,
            num_jen_workers: 30,
            bloom_bytes: 16 << 20,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        };
        let choice = advise(&est);
        let mut costs = estimated_costs(&est);
        costs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let ranking: Vec<String> = costs
            .iter()
            .take(3)
            .map(|(alg, c)| format!("{alg} ({:.1} GB-eq)", c / 1.0e9))
            .collect();
        println!(
            "{sigma_t:>8} {sigma_l:>8} {st:>6} {sl:>6}   {:<16} {}",
            choice.name(),
            ranking.join("  >  ")
        );
    }
    println!(
        "\nthe paper's conclusions fall out of the volumes: broadcast only for\n\
         very selective sigma_T, DB-side only for very selective sigma_L, and\n\
         zigzag as the robust default whenever the join itself is selective."
    );

    // Skewed join keys change the picture: the hot worker bounds every
    // shuffle phase, so repartition's estimate inflates while broadcast
    // (no L' shuffle at all) is untouched.
    println!("\nsame query under join-key skew (sigma_T=0.01, sigma_L=0.2):");
    for skew in [1.0, 4.0, 30.0] {
        let est = QueryEstimates {
            t_prime_bytes: (25.0e9 * 0.01) as u64,
            l_prime_bytes: (120.0e9 * 0.2) as u64,
            st: 1.0,
            sl: 1.0,
            num_jen_workers: 30,
            bloom_bytes: 16 << 20,
            shuffle_skew: skew,
            mem_budget_per_worker: None,
        };
        println!(
            "  max/mean shuffle load {skew:>5.1}  ->  {}",
            advise(&est).name()
        );
    }

    // A memory budget changes it again: repartition's per-worker hash
    // build (L'/30) no longer fits, so the governor would spill and
    // re-read most of it — the advisor charges that round trip and the
    // build-free DB-side join takes over under the tightest budgets.
    println!("\nsame query under a per-worker memory budget (sigma_T=0.1, sigma_L=0.4):");
    for budget in [None, Some(4u64 << 30), Some(64 << 20)] {
        let est = QueryEstimates {
            t_prime_bytes: (25.0e9 * 0.1) as u64,
            l_prime_bytes: (120.0e9 * 0.4) as u64,
            st: 1.0,
            sl: 1.0,
            num_jen_workers: 30,
            bloom_bytes: 16 << 20,
            shuffle_skew: 1.0,
            mem_budget_per_worker: budget,
        };
        let label = match budget {
            None => "unbounded".to_string(),
            Some(b) => format!("{} MB/worker", b >> 20),
        };
        println!("  budget {label:>16}  ->  {}", advise(&est).name());
    }
}
