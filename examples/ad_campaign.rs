//! The paper's motivating scenario (§1–§2): a retailer correlates online
//! click logs on HDFS with sales transactions in the warehouse.
//!
//! ```sql
//! SELECT L.url_prefix, COUNT(*)
//! FROM T, L
//! WHERE T.category = 'Canon Camera'
//!   AND region(L.ip) = 'East Coast'
//!   AND T.uid = L.uid
//!   AND T.tdate >= L.ldate AND T.tdate <= L.ldate + 1
//! GROUP BY L.url_prefix
//! ```
//!
//! This example builds those tables **by hand** (no generator) to show the
//! raw public API: schemas, batches, expressions, and a custom
//! [`HybridQuery`]. Categories and regions are dictionary-encoded ints, as
//! a real warehouse would store them.
//!
//! ```sh
//! cargo run --release --example ad_campaign
//! ```

use hybrid_bloom::BloomParams;
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::expr::Expr;
use hybrid_common::ops::AggSpec;
use hybrid_common::schema::Schema;
use hybrid_core::{run, HybridQuery, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_storage::FileFormat;

const CANON_CAMERA: i32 = 7; // category dictionary code
const EAST_COAST: i32 = 1; // region dictionary code

fn transactions() -> (Schema, Batch) {
    let schema = Schema::from_pairs(&[
        ("txnId", DataType::I64),
        ("uid", DataType::I32),
        ("category", DataType::I32),
        ("tdate", DataType::Date),
    ]);
    let n = 3_000usize;
    let batch = Batch::new(
        schema.clone(),
        vec![
            Column::I64((0..n as i64).collect()),
            Column::I32((0..n).map(|i| (i % 500) as i32).collect()),
            Column::I32((0..n).map(|i| (i % 23) as i32).collect()), // ~4% Canon
            Column::Date((0..n).map(|i| ((i * 13) % 60) as i32).collect()),
        ],
    )
    .unwrap();
    (schema, batch)
}

fn click_logs() -> (Schema, Batch) {
    let schema = Schema::from_pairs(&[
        ("uid", DataType::I32),
        ("region", DataType::I32),
        ("ldate", DataType::Date),
        ("url_prefix", DataType::Utf8),
    ]);
    let n = 40_000usize;
    let batch = Batch::new(
        schema.clone(),
        vec![
            Column::I32((0..n).map(|i| ((i * 7) % 700) as i32).collect()),
            Column::I32((0..n).map(|i| (i % 4) as i32).collect()), // 25% East Coast
            Column::Date((0..n).map(|i| ((i * 11) % 60) as i32).collect()),
            Column::Utf8((0..n).map(|i| format!("url_{}/landing", i % 12)).collect()),
        ],
    )
    .unwrap();
    (schema, batch)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = HybridSystem::new(SystemConfig::paper_shape(3, 5))?;

    let (_, txns) = transactions();
    system.load_db_table("transactions", 0, txns)?; // distributed on txnId
    system.create_db_index("transactions", &[2, 1])?; // (category, uid)

    let (log_schema, logs) = click_logs();
    system.load_hdfs_table("clicks", FileFormat::Columnar, log_schema, &logs)?;

    // The example query, written against the canonical joined layout
    // (T'.uid, T'.tdate) ++ (L'.uid, L'.ldate, L'.url_prefix):
    let tdate_minus_ldate = Expr::col(1).sub(Expr::col(3));
    let query = HybridQuery {
        db_table: "transactions".into(),
        hdfs_table: "clicks".into(),
        db_pred: Expr::col(2).eq(Expr::lit_i32(CANON_CAMERA)),
        db_proj: vec![1, 3], // uid, tdate
        db_key: 0,
        hdfs_pred: Expr::col(1).eq(Expr::lit_i32(EAST_COAST)),
        hdfs_proj: vec![0, 2, 3], // uid, ldate, url_prefix
        hdfs_key: 0,
        post_predicate: Some(
            tdate_minus_ldate
                .clone()
                .ge(Expr::lit_i64(0))
                .and(tdate_minus_ldate.le(Expr::lit_i64(1))),
        ),
        group_expr: Expr::ExtractGroup(Box::new(Expr::col(4))),
        aggs: vec![AggSpec::Count],
        bloom: BloomParams::optimal(1_000, 0.02)?,
    };

    // The category predicate is highly selective → the paper's §5.5 rule
    // says broadcast; but run all the strategies and see for ourselves.
    println!("views of each url_prefix by East-Coast Canon-Camera buyers:\n");
    let mut reference: Option<Batch> = None;
    for alg in [
        JoinAlgorithm::Broadcast,
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::DbSide { bloom: true },
    ] {
        let out = run(&mut system, &query, alg)?;
        match &reference {
            None => {
                for row in 0..out.result.num_rows() {
                    let cells = out.result.row(row);
                    println!("  url_{:<3} {:>6} views", cells[0], cells[1]);
                }
                reference = Some(out.result.clone());
            }
            Some(r) => assert_eq!(r, &out.result, "{alg} diverged"),
        }
        println!(
            "\n  [{alg}] cross-cluster bytes: {}, HDFS tuples shuffled: {}",
            out.summary.cross_bytes, out.summary.hdfs_tuples_shuffled
        );
    }
    println!("\nall three strategies returned identical results");
    Ok(())
}
