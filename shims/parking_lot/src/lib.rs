//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `parking_lot` on top of
//! `std::sync`. Semantics differ from the real crate only in that poisoned
//! locks panic (the workspace treats a panicked worker as fatal anyway).

use std::sync;

/// `parking_lot::Mutex`: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock`: `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<sync::RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<sync::RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
