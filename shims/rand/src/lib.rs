//! Offline shim for the `rand` API surface this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `SliceRandom::shuffle`. The build environment has no crates.io access.
//!
//! The generator is xoshiro256** seeded via splitmix64 — the same
//! construction rand's `SmallRng` used; statistically solid for workload
//! synthesis and reproducible block placement, which is all the workspace
//! needs. Streams differ from the real `StdRng` (ChaCha12), so generated
//! *values* differ from a crates.io build; every consumer in this repo
//! treats the stream as an opaque seeded source.

use std::ops::Range;

/// Core RNG trait (subset): uniform integers from a range.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (Lemire-style rejection, unbiased).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Seeding trait (subset): everything here seeds from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can produce.
pub trait SampleUniform: Copy {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `u64` below `bound` by rejection sampling (no modulo bias).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let off = uniform_below(rng, span);
                ((range.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )+};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Drop-in stand-in for `rand::rngs::StdRng` (xoshiro256** inside).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference)
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: Fisher–Yates shuffle.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
        // large i64 range does not overflow
        let v = rng.gen_range(i64::MIN..i64::MAX);
        assert!(v < i64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
