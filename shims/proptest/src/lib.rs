//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small property-testing engine under the same names: the [`proptest!`]
//! macro, [`prelude`], [`collection::vec`], integer-range / tuple / string
//! strategies, and `prop_map` / `prop_flat_map` combinators.
//!
//! Differences from the real crate, deliberately accepted:
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message of the inner assert, unminimized;
//! * **derandomized** — each test's RNG is seeded from its module path and
//!   name, so failures reproduce across runs;
//! * string strategies support exactly the subset of regex syntax the
//!   workspace uses: `.{lo,hi}` and `[c1-c2…]{lo,hi}` character classes.

/// Deterministic test RNG (xoshiro256** seeded via splitmix64).
pub mod test_runner {
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value below `bound` (rejection sampled, unbiased).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// Seed a test's RNG from its fully qualified name (FNV-1a).
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values (shim: no value tree, no shrinking).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// `s.prop_map(f)`.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `s.prop_flat_map(f)`.
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Integer types strategies can produce directly.
    pub trait ArbInt: Copy {
        fn from_bits(bits: u64) -> Self;
        fn edges() -> [Self; 5];
        fn range_sample(rng: &mut TestRng, lo: Self, hi_excl: Self) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty => $wide:ty),+ $(,)?) => {$(
            impl ArbInt for $t {
                fn from_bits(bits: u64) -> Self {
                    bits as $t
                }
                fn edges() -> [Self; 5] {
                    [<$t>::MIN, <$t>::MAX, 0 as $t, (0 as $t).wrapping_sub(1), 1 as $t]
                }
                fn range_sample(rng: &mut TestRng, lo: Self, hi_excl: Self) -> Self {
                    assert!(lo < hi_excl, "strategy on empty range");
                    let span = (hi_excl as $wide).wrapping_sub(lo as $wide) as u64;
                    let off = rng.below(span);
                    ((lo as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        )+};
    }

    impl_arb_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    );

    /// `any::<T>()` — full-domain values with edge-case bias.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub fn any<T: ArbInt>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: ArbInt> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            if rng.below(16) == 0 {
                let edges = T::edges();
                edges[rng.below(edges.len() as u64) as usize]
            } else {
                T::from_bits(rng.next_u64())
            }
        }
    }

    impl<T: ArbInt> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::range_sample(rng, self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// How many elements a collection strategy produces.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl SizeRange {
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_incl - self.lo + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// `Vec<T>` strategy; see [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The supported pattern subset: `.` or one `[…]` class, then `{lo,hi}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, lo, hi) = parse_pattern(self);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| class.sample(rng)).collect()
        }
    }

    enum CharClass {
        /// `.` — printable chars incl. multibyte, exercising UTF-8 paths.
        AnyChar,
        /// `[a-b…]` — union of inclusive ranges.
        Ranges(Vec<(char, char)>),
    }

    impl CharClass {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                CharClass::AnyChar => {
                    // mostly ASCII, some multibyte: é (2B), ₪ (3B), 🦀 (4B)
                    const EXTRA: [char; 6] = ['é', 'ß', '中', '₪', '🦀', '\u{7f}'];
                    if rng.below(4) == 0 {
                        EXTRA[rng.below(EXTRA.len() as u64) as usize]
                    } else {
                        char::from(b' ' + rng.below(95) as u8)
                    }
                }
                CharClass::Ranges(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                        .sum();
                    let mut idx = rng.below(total);
                    for &(a, b) in ranges {
                        let span = (b as u64) - (a as u64) + 1;
                        if idx < span {
                            return char::from_u32(a as u32 + idx as u32)
                                .expect("class range covers valid chars");
                        }
                        idx -= span;
                    }
                    unreachable!("index within total span")
                }
            }
        }
    }

    fn parse_pattern(pat: &str) -> (CharClass, usize, usize) {
        let bytes: Vec<char> = pat.chars().collect();
        let (class, rest) = if bytes.first() == Some(&'.') {
            (CharClass::AnyChar, &bytes[1..])
        } else if bytes.first() == Some(&'[') {
            let close = bytes
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated char class in {pat:?}"));
            let inner = &bytes[1..close];
            let mut ranges = Vec::new();
            let mut i = 0;
            while i < inner.len() {
                if i + 2 < inner.len() && inner[i + 1] == '-' {
                    ranges.push((inner[i], inner[i + 2]));
                    i += 3;
                } else {
                    ranges.push((inner[i], inner[i]));
                    i += 1;
                }
            }
            (CharClass::Ranges(ranges), &bytes[close + 1..])
        } else {
            panic!("unsupported pattern {pat:?} (shim supports '.' and '[…]' only)");
        };
        let rest: String = rest.iter().collect();
        let (lo, hi) = if rest.is_empty() {
            (1, 1)
        } else {
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
            match inner.split_once(',') {
                Some((a, b)) => (
                    a.parse().expect("repeat lower bound"),
                    b.parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = inner.parse().expect("repeat count");
                    (n, n)
                }
            }
        };
        (class, lo, hi)
    }
}

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// `proptest::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test-suite configuration (shim: only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Shim `prop_assert!`: plain `assert!` (panics carry the failing inputs'
/// Debug output only if the caller formats them in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Shim `proptest!` block: runs each property over `cases` seeded random
/// inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)+
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)+ }
    };
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn string_patterns_generate_expected_alphabets() {
        let mut rng = rng_for("string_patterns");
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[ -~]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            let u = crate::strategy::Strategy::generate(&".{0,12}", &mut rng);
            assert!(u.chars().count() <= 12);
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = rng_for("vec_sizes");
        for _ in 0..100 {
            let v = crate::strategy::Strategy::generate(
                &crate::collection::vec(any::<i64>(), 1..200),
                &mut rng,
            );
            assert!((1..200).contains(&v.len()));
            let exact = crate::strategy::Strategy::generate(
                &crate::collection::vec(0i32..5, 7..=7),
                &mut rng,
            );
            assert_eq!(exact.len(), 7);
            assert!(exact.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_with_config_and_tuples(
            pairs in crate::collection::vec((0i64..10, -100i64..100), 0..80),
            split in 0usize..80,
        ) {
            prop_assert!(pairs.len() < 80);
            prop_assert!(split < 80);
            for (g, v) in &pairs {
                prop_assert!((0..10).contains(g));
                prop_assert!((-100..100).contains(v));
            }
        }
    }

    proptest! {
        /// Doc comments and flat-mapped strategies parse.
        #[test]
        fn macro_default_config(
            v in (0..40usize).prop_flat_map(|n| crate::collection::vec(any::<u64>(), n..=n)),
        ) {
            prop_assert!(v.len() < 40);
        }
    }
}
