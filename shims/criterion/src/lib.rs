//! Offline shim for the `criterion` API surface this workspace's benches
//! use. The build environment has no crates.io access, so benches run on a
//! minimal wall-clock harness: per benchmark it warms up briefly, then
//! reports the mean ns/iter over a fixed time budget. No statistical
//! analysis, plots, or baselines — adequate for the A/B comparisons the
//! benches make (standard vs blocked Bloom, mutex vs sharded metrics, …).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Label for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

/// Runs closures and accumulates timing.
pub struct Bencher {
    /// (total_elapsed, total_iterations) of the measurement phase.
    measured: Option<(Duration, u64)>,
    budget: Duration,
}

impl Bencher {
    /// Measure `f`: short warmup, then as many runs as fit the time budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warmup: let caches/allocators settle, estimate per-iter cost
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.budget / 5 && warmup_iters < 1_000 {
            hint::black_box(f());
            warmup_iters += 1;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget && iters < 100_000 {
            hint::black_box(f());
            iters += 1;
        }
        self.measured = Some((start.elapsed(), iters.max(1)));
    }
}

fn report(path: &str, measured: Option<(Duration, u64)>) {
    match measured {
        Some((elapsed, iters)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let human = if ns >= 1.0e9 {
                format!("{:.3} s", ns / 1.0e9)
            } else if ns >= 1.0e6 {
                format!("{:.3} ms", ns / 1.0e6)
            } else if ns >= 1.0e3 {
                format!("{:.3} µs", ns / 1.0e3)
            } else {
                format!("{ns:.1} ns")
            };
            println!("{path:<50} {human:>12}/iter  ({iters} iters)");
        }
        None => println!("{path:<50} (no measurement)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let path = format!("{}/{}", self.name, id);
        self.criterion.run_one(&path, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&path, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // CRITERION_BUDGET_MS trades precision for runtime (CI uses a small
        // value; the default keeps a full suite under a couple of minutes)
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, path: &str, mut f: F) {
        let mut b = Bencher {
            measured: None,
            budget: self.budget,
        };
        f(&mut b);
        report(path, b.measured);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// Shim `criterion_group!`: collects the benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Shim `criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        tiny(&mut c);
        // exercise the criterion_group! expansion too
        benches();
    }

    criterion_group!(benches, tiny);
}
