//! Offline shim for the `crossbeam` API surface this workspace uses:
//! MPMC channels with cloneable receivers, bounded back-pressure, and
//! timeout receives. Built on a `Mutex<VecDeque>` + two `Condvar`s; the
//! build environment has no crates.io access, so the real crate cannot be
//! fetched. Throughput is adequate for the simulator's message volumes.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`]: all receivers dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; both variants hand the
    /// message back so the caller can retry (or drop it).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message is pushed (wakes receivers).
        not_empty: Condvar,
        /// Signalled when a message is popped (wakes bounded senders).
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; clones share the queue.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clones share the queue (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake receivers so they observe the hangup
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    fn lock<'a, T>(m: &'a Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Errors when every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = lock(&self.shared.queue);
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .shared
                            .not_full
                            .wait(q)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// waiting when a bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = lock(&self.shared.queue);
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = lock(&self.shared.queue);
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = lock(&self.shared.queue);
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = lock(&self.shared.queue);
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        pub fn is_empty(&self) -> bool {
            lock(&self.shared.queue).is_empty()
        }

        pub fn len(&self) -> usize {
            lock(&self.shared.queue).len()
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A bounded MPMC channel: `send` blocks while `cap` messages queue.
    /// `cap == 0` is treated as capacity 1 (the shim has no rendezvous mode;
    /// nothing in this workspace uses one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert!(rx.recv().is_err());
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_expires() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded::<usize>(2);
            let producer = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<i32>(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx) = unbounded::<usize>();
            let rx2 = rx.clone();
            for i in 0..50 {
                tx.send(i).unwrap();
            }
            let a = thread::spawn(move || (0..25).filter(|_| rx.recv().is_ok()).count());
            let b = thread::spawn(move || (0..25).filter(|_| rx2.recv().is_ok()).count());
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 50);
        }
    }
}
