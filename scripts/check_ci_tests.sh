#!/usr/bin/env bash
# Guard: every integration test under tests/ must actually run in CI.
#
# A tests/<name>.rs file is wired only if some crate registers it as a
# [[test]] target — the workflow's blanket `cargo test` then builds and
# runs it. These files sit at the repository root, outside every crate,
# so cargo's auto-discovery never finds them: without a registration the
# file is dead code that looks like coverage (exactly how a new suite
# silently goes missing when its Cargo.toml entry is forgotten). A
# `--test <name>` mention in the workflow is NOT an acceptable substitute
# — `cargo test --test <name>` fails against an unregistered root-level
# file, so a mention alone proves nothing about the suite running.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in tests/*.rs; do
  stem=$(basename "$f" .rs)
  if grep -qR --include=Cargo.toml -- "tests/$stem.rs" crates; then
    continue
  fi
  echo "tests/$stem.rs is not wired into CI: no crate registers it as a" \
    "[[test]] target, so no cargo test invocation can ever run it" >&2
  fail=1
done

# Any workflow step that does invoke a suite by name must point at a
# registered target, or that step fails for everyone.
while IFS= read -r stem; do
  if ! grep -qR --include=Cargo.toml -- "tests/$stem.rs" crates; then
    echo "ci.yml invokes '--test $stem' but no crate registers tests/$stem.rs" >&2
    fail=1
  fi
done < <(grep -oE -- '--test [a-z_]+' .github/workflows/ci.yml | awk '{print $2}' | sort -u)

# Inverse direction: every [[test]] target that points into tests/ must
# name a file that exists. A stale entry (file renamed or deleted, target
# forgotten) breaks `cargo test` for everyone — catch it here with a
# message that says which Cargo.toml is lying.
for toml in crates/*/Cargo.toml; do
  while IFS= read -r rel; do
    target="crates/$(basename "$(dirname "$toml")")/$rel"
    if [ ! -f "$target" ]; then
      echo "$toml registers $rel but $(basename "$rel") does not exist on disk" >&2
      fail=1
    fi
  done < <(sed -n 's/^path = "\(\.\.\/\.\.\/tests\/[^"]*\.rs\)"$/\1/p' "$toml")
done

# Every bench binary must be exercised by at least one CI job. Unlike the
# [[test]] targets, binaries are NOT covered by the blanket `cargo test`
# (it builds them, but never runs them), so a bin that no workflow step
# invokes with `--bin <stem>` is an artifact generator that rots silently
# — its output drifting from the code until someone runs it by hand.
for f in crates/bench/src/bin/*.rs; do
  stem=$(basename "$f" .rs)
  if ! grep -qE -- "--bin ${stem}\b" .github/workflows/ci.yml; then
    echo "crates/bench/src/bin/$stem.rs is never run by CI: no workflow" \
      "step invokes '--bin $stem'" >&2
    fail=1
  fi
done

# And the mirror image: a '--bin' mention must point at a binary that
# still exists, or the workflow step fails for everyone.
while IFS= read -r stem; do
  if [ ! -f "crates/bench/src/bin/$stem.rs" ]; then
    echo "ci.yml invokes '--bin $stem' but crates/bench/src/bin/$stem.rs" \
      "does not exist" >&2
    fail=1
  fi
done < <(grep -oE -- '--bin [a-z0-9_]+' .github/workflows/ci.yml | awk '{print $2}' | sort -u)

# The registered targets only execute because the workflow still carries an
# unfiltered `cargo test` — fail if that blanket run ever disappears.
if ! grep -qE 'cargo test -q( --release)?$' .github/workflows/ci.yml; then
  echo "ci.yml lost its blanket 'cargo test' run" >&2
  fail=1
fi

exit "$fail"
