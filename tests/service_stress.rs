//! Concurrency stress for the query service: 8 client threads submit a
//! mixed workload (all six paper algorithms × three query variants) over
//! one shared system with caches disabled, under whatever `HYBRID_THREADS`
//! the CI matrix sets. Every response must be bit-identical to a
//! single-query run on a fresh system, its per-query metric delta must
//! equal the fresh-system delta (no cross-query bleed), and the root
//! registry's fabric-carried counters must equal the exact sum of the
//! per-query deltas.

use hybrid_common::expr::Expr;
use hybrid_core::{
    run_adaptive, sample_stats, threads_from_env, HybridQuery, HybridSystem, JoinAlgorithm,
    RunOutput, SystemConfig,
};
use hybrid_datagen::tables::l_cols;
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_service::{QueryRequest, QueryService, ServiceConfig};
use hybrid_storage::FileFormat;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 6;

/// Counters carried by the shared fabric: these (and only these) are
/// dual-metered into the root registry, so root totals must equal the sum
/// over per-session deltas. (`net.intra_db.*` is metered by the database
/// cluster directly into the session registry and never reaches the root.)
const FABRIC_COUNTERS: [&str; 6] = [
    "net.cross.bytes",
    "net.cross.msgs",
    "net.cross.tuples",
    "net.intra_hdfs.bytes",
    "net.intra_hdfs.msgs",
    "net.intra_hdfs.tuples",
];

fn fresh_system(w: &Workload) -> HybridSystem {
    let mut cfg = SystemConfig::paper_shape(2, 3);
    cfg.rows_per_block = 1000;
    cfg.threads = threads_from_env();
    let mut sys = HybridSystem::new(cfg).unwrap();
    w.load_into(&mut sys, FileFormat::Columnar).unwrap();
    sys
}

fn variant(w: &Workload, l_cor: i64) -> HybridQuery {
    let mut q = w.query();
    q.hdfs_pred = Expr::col_le(l_cols::COR_PRED, l_cor)
        .and(Expr::col_le(l_cols::IND_PRED, w.thresholds.l_ind));
    q
}

#[test]
fn eight_clients_no_cross_query_bleed() {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let th = w.thresholds.l_cor;
    let queries = vec![w.query(), variant(&w, th - 1), variant(&w, th - 2)];
    let algorithms = JoinAlgorithm::paper_variants();

    // Single-query ground truth: each (query, algorithm) on its own
    // system, executed through the same adaptive entry point as a service
    // session with the same sampled estimates — byte-identical to a plain
    // `run` when `HYBRID_REPLAN_THRESHOLD` is unset, and carrying the
    // identical observation metering when the CI adaptive matrix arms it.
    let sample_blocks = ServiceConfig::default().sample_blocks;
    let mut reference: HashMap<(usize, JoinAlgorithm), RunOutput> = HashMap::new();
    for (qi, q) in queries.iter().enumerate() {
        for &alg in &algorithms {
            let mut sys = fresh_system(&w);
            let est = sample_stats(&sys, q, sample_blocks).unwrap().to_estimates(
                q,
                sys.config.jen_workers,
                None,
            );
            let out = run_adaptive(&mut sys, q, alg, &est).unwrap();
            assert!(out.result.num_rows() > 0, "degenerate workload");
            reference.insert((qi, alg), out);
        }
    }

    let cfg = ServiceConfig {
        max_in_flight: 4,
        max_queued: 64,
        queue_timeout: Duration::from_secs(120),
        result_cache_capacity: 0, // every submission must actually execute
        bloom_cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let svc = Arc::new(QueryService::new(fresh_system(&w), cfg));
    let queries = Arc::new(queries);
    let snapshots = Arc::new(Mutex::new(Vec::new()));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let queries = Arc::clone(&queries);
            let snapshots = Arc::clone(&snapshots);
            let reference: HashMap<_, _> = reference
                .iter()
                .map(|(k, v)| (*k, (v.result.clone(), v.snapshot.clone())))
                .collect();
            thread::spawn(move || {
                for i in 0..QUERIES_PER_CLIENT {
                    let job = client * QUERIES_PER_CLIENT + i;
                    let qi = job % queries.len();
                    let alg = JoinAlgorithm::paper_variants()[job % 6];
                    let req = QueryRequest::with_algorithm(queries[qi].clone(), alg);
                    let resp = svc
                        .submit(&req)
                        .unwrap_or_else(|e| panic!("client {client} job {job} ({alg}): {e}"));
                    assert!(!resp.from_cache, "caches are disabled");
                    let (ref_result, ref_snapshot) = &reference[&(qi, alg)];
                    assert_eq!(
                        *resp.result, *ref_result,
                        "client {client} job {job}: {alg} diverged from single-query run"
                    );
                    let snapshot = resp.snapshot.expect("executed query has a snapshot");
                    assert_eq!(
                        &snapshot, ref_snapshot,
                        "client {client} job {job}: {alg} per-query metric delta \
                         differs under concurrency (cross-query bleed)"
                    );
                    snapshots.lock().unwrap().push(snapshot);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = svc.metrics();
    let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(m.get("svc.completed"), total);
    assert_eq!(m.get("svc.failed"), 0);
    assert_eq!(m.get("svc.rejected"), 0);
    assert_eq!(svc.latency_histogram().count(), total);
    let (in_flight, queued) = svc.load();
    assert_eq!((in_flight, queued), (0, 0), "all slots released");

    // Conservation: the root plane saw exactly the sum of all sessions.
    let snapshots = snapshots.lock().unwrap();
    for counter in FABRIC_COUNTERS {
        let sum: u64 = snapshots
            .iter()
            .map(|s| s.get(counter).copied().unwrap_or(0))
            .sum();
        assert_eq!(
            m.get(counter),
            sum,
            "{counter}: root total != sum of per-query deltas"
        );
    }
}
