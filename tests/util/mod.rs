//! Shared helpers for the integration suites.
//!
//! Each `tests/*.rs` file is its own crate, so this module is included via
//! `mod util;` per suite — any helper only some suites call would trip the
//! dead-code lint in the others, hence the blanket allow.
#![allow(dead_code)]

use hybrid_core::{HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::Workload;
use hybrid_storage::FileFormat;

/// Small blocks so even tiny workloads exercise multi-block scans.
pub const ROWS_PER_BLOCK: usize = 500;

/// Every implemented algorithm: the paper's five variants plus the
/// semi-join and PERF baselines.
pub fn all_algorithms() -> Vec<JoinAlgorithm> {
    JoinAlgorithm::paper_variants()
        .into_iter()
        .chain([JoinAlgorithm::SemiJoin, JoinAlgorithm::PerfJoin])
        .collect()
}

/// The algorithms whose `L'` shuffle (and `T'` routing) goes through the
/// salt router — the only ones a salted config can affect.
pub fn salted_algorithms() -> [JoinAlgorithm; 4] {
    [
        JoinAlgorithm::Repartition { bloom: false },
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::SemiJoin,
    ]
}

/// The paper-shaped config every suite starts from: a small cluster with
/// [`ROWS_PER_BLOCK`]-row blocks. Callers tweak the returned config
/// (threads, salt, batch size, faults) before building the system.
pub fn test_config(db_workers: usize, jen_workers: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_shape(db_workers, jen_workers);
    cfg.rows_per_block = ROWS_PER_BLOCK;
    cfg
}

/// Build a system from `cfg` and load `workload` in `format`.
pub fn loaded_system(cfg: SystemConfig, workload: &Workload, format: FileFormat) -> HybridSystem {
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, format).unwrap();
    sys
}

/// A test-matrix axis, optionally pinned by an environment variable: CI
/// shards the columnar grid by setting `HYBRID_THREADS` /
/// `HYBRID_BATCH_ROWS`; a plain `cargo test` leaves them unset and runs
/// the full grid.
pub fn grid_from_env(var: &str, full: &[usize]) -> Vec<usize> {
    match std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => full.to_vec(),
    }
}
