//! Spill-to-disk integration: the paper's JEN "requires that all data fit
//! in memory … in the future, we plan to support spilling to disk". With a
//! build-side budget configured, the shuffle-based joins degrade to grace
//! hash joins on every worker — and must still produce exactly the
//! reference result.

use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn system(limit: Option<usize>) -> (HybridSystem, hybrid_datagen::Workload) {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(3, 4);
    cfg.rows_per_block = 500;
    cfg.jen_memory_limit_rows = limit;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    (sys, workload)
}

#[test]
fn spilling_joins_match_reference() {
    // a 50-row budget on a ~1200-row-per-worker build side forces spills
    let (mut sys, workload) = system(Some(50));
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    for alg in [
        JoinAlgorithm::Repartition { bloom: false },
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::SemiJoin,
    ] {
        let out = run(&mut sys, &query, alg).unwrap();
        assert_eq!(out.result, expected, "{alg} diverged while spilling");
        assert!(
            out.snapshot
                .get("jen.spill.activations")
                .copied()
                .unwrap_or(0)
                > 0,
            "{alg} never spilled despite the 50-row budget"
        );
        assert!(
            out.snapshot
                .get("jen.spill.bytes_written")
                .copied()
                .unwrap_or(0)
                > 0
        );
    }
}

#[test]
fn generous_budget_never_spills() {
    let (mut sys, workload) = system(Some(1_000_000));
    let query = workload.query();
    let out = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
    assert_eq!(out.snapshot.get("jen.spill.activations"), None);
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(out.result, expected);
}

#[test]
fn spilling_does_not_change_movement_counters() {
    // spilling is worker-local: network volumes must be identical
    let query = WorkloadSpec::tiny().generate().unwrap().query();
    let (mut in_mem, _) = system(None);
    let (mut spilled, _) = system(Some(50));
    let a = run(&mut in_mem, &query, JoinAlgorithm::Zigzag).unwrap();
    let b = run(&mut spilled, &query, JoinAlgorithm::Zigzag).unwrap();
    assert_eq!(a.result, b.result);
    assert_eq!(
        a.summary.hdfs_tuples_shuffled,
        b.summary.hdfs_tuples_shuffled
    );
    assert_eq!(a.summary.db_tuples_sent, b.summary.db_tuples_sent);
    assert_eq!(a.summary.cross_bytes, b.summary.cross_bytes);
}
