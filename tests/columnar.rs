//! Differential batch-vs-tuple harness: the vectorized columnar path must
//! be **observationally identical** to one-tuple-at-a-time execution.
//!
//! `SystemConfig::batch_rows = 1` replays the engine tuple by tuple — every
//! `Data` message carries one row, every selection vector picks single
//! rows, every shuffle buffer flushes per row. That replay is the reference
//! each grid cell is measured against: for every algorithm × batch size
//! {1, 7, 256, 4096} × storage format × thread count × salting, the run
//! must produce
//!
//! 1. the **bit-identical** result batch,
//! 2. **exactly equal row-level metric totals** (`.tuples`, `rows_*`,
//!    scan/bloom/balance counters) — batching may change how rows are
//!    framed into messages, never how many rows flow where,
//! 3. a full snapshot that is thread-count-invariant at every batch size
//!    (the determinism contract must survive non-default framing).
//!
//! Message- and byte-denominated counters (`net.*.msgs`, `net.*.bytes`)
//! legitimately shrink as batches grow — a final sanity test pins that
//! they *do* change, so this harness cannot silently pass by comparing
//! nothing.
//!
//! CI shards the grid via `HYBRID_BATCH_ROWS` / `HYBRID_THREADS`; a plain
//! `cargo test` runs all cells.

mod util;

use std::collections::BTreeMap;

use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem, JoinAlgorithm};
use hybrid_datagen::{KeySkew, Workload, WorkloadSpec};
use hybrid_storage::FileFormat;
use util::{all_algorithms, grid_from_env, loaded_system, salted_algorithms, test_config};

fn batch_grid() -> Vec<usize> {
    grid_from_env("HYBRID_BATCH_ROWS", &[1, 7, 256, 4096])
}

fn thread_grid() -> Vec<usize> {
    grid_from_env("HYBRID_THREADS", &[1, 8])
}

fn system(
    workload: &Workload,
    format: FileFormat,
    threads: usize,
    batch_rows: usize,
    salt_buckets: Option<usize>,
) -> HybridSystem {
    let mut cfg = test_config(3, 4);
    cfg.threads = threads;
    cfg.batch_rows = batch_rows;
    cfg.salt_buckets = salt_buckets;
    loaded_system(cfg, workload, format)
}

/// The row-denominated slice of a metrics snapshot: everything except the
/// message/byte counters that legitimately vary with batch framing, and
/// spill volumes (written in whatever framing the builds received).
fn row_level(snapshot: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    snapshot
        .iter()
        .filter(|(k, _)| !(k.ends_with(".msgs") || k.ends_with(".bytes") || k.contains("spill")))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// One algorithm's full differential grid against its tuple-at-a-time
/// sequential replay, on both storage formats.
fn assert_batching_invisible(alg: JoinAlgorithm, salt_buckets: Option<usize>, workload: &Workload) {
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert!(expected.num_rows() > 0, "query must be non-trivial");

    for format in [FileFormat::Columnar, FileFormat::Text] {
        // batch_rows = 1, threads = 1: the engine replayed one tuple at a
        // time in sequential worker order — the reference execution.
        let mut ref_sys = system(workload, format, 1, 1, salt_buckets);
        let reference = run(&mut ref_sys, &query, alg).unwrap();
        assert_eq!(
            reference.result, expected,
            "{alg} tuple replay wrong on {format}"
        );
        let ref_rows = row_level(&reference.snapshot);

        for batch_rows in batch_grid() {
            let mut snapshots = Vec::new();
            for threads in thread_grid() {
                let mut sys = system(workload, format, threads, batch_rows, salt_buckets);
                let out = run(&mut sys, &query, alg).unwrap();
                assert_eq!(
                    out.result, reference.result,
                    "{alg} result diverged from tuple replay at batch_rows={batch_rows}, \
                     {threads} threads on {format}"
                );
                assert_eq!(
                    row_level(&out.snapshot),
                    ref_rows,
                    "{alg} row-level counters diverged at batch_rows={batch_rows}, \
                     {threads} threads on {format}"
                );
                snapshots.push(out.snapshot);
            }
            // at a fixed batch size the *full* snapshot — message and byte
            // counters included — must not depend on the thread count
            for s in &snapshots[1..] {
                assert_eq!(
                    s, &snapshots[0],
                    "{alg} full snapshot thread-dependent at batch_rows={batch_rows} on {format}"
                );
            }
        }
    }
}

#[test]
fn repartition_batched_equals_tuple_replay() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::Repartition { bloom: false }, None, &workload);
}

#[test]
fn repartition_bloom_batched_equals_tuple_replay() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::Repartition { bloom: true }, None, &workload);
}

#[test]
fn zigzag_batched_equals_tuple_replay() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::Zigzag, None, &workload);
}

#[test]
fn broadcast_batched_equals_tuple_replay() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::Broadcast, None, &workload);
}

#[test]
fn db_side_batched_equals_tuple_replay() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::DbSide { bloom: true }, None, &workload);
    assert_batching_invisible(JoinAlgorithm::DbSide { bloom: false }, None, &workload);
}

#[test]
fn semijoin_batched_equals_tuple_replay() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::SemiJoin, None, &workload);
}

#[test]
fn perf_batched_equals_tuple_replay() {
    // PERF keeps its per-row positional protocol, but its mailbox still
    // frames streams at `batch_rows` — the replay contract holds anyway.
    let workload = WorkloadSpec::tiny().generate().unwrap();
    assert_batching_invisible(JoinAlgorithm::PerfJoin, None, &workload);
}

/// Salted hot-key routing is a function of (key, scan order) alone: under
/// a Zipf-1.2 key distribution with the salt router engaged, every batch
/// size must replicate/split exactly the same rows to exactly the same
/// workers as the tuple replay.
#[test]
fn salted_hot_keys_route_identically_at_every_batch_size() {
    let mut spec = WorkloadSpec::tiny();
    spec.t_rows = 600;
    spec.l_rows = 3_000;
    spec.skew = KeySkew::Zipf { s: 1.2 };
    let workload = spec.generate().unwrap();
    for alg in salted_algorithms() {
        assert_batching_invisible(alg, Some(4), &workload);
    }
}

/// Every implemented algorithm is in the grid above — fail if a new
/// variant is added without a differential cell.
#[test]
fn grid_covers_every_algorithm() {
    let covered = [
        JoinAlgorithm::Repartition { bloom: false },
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::Broadcast,
        JoinAlgorithm::DbSide { bloom: true },
        JoinAlgorithm::DbSide { bloom: false },
        JoinAlgorithm::SemiJoin,
        JoinAlgorithm::PerfJoin,
    ];
    for alg in all_algorithms() {
        assert!(
            covered.contains(&alg),
            "{alg} has no differential batch-vs-tuple test"
        );
    }
}

/// The harness must not be vacuous: batching really does change the wire
/// framing. One-row batches send ~`rows` shuffle messages; 4096-row
/// batches collapse that by three orders of magnitude — while the row
/// totals stay exactly fixed.
#[test]
fn batching_shrinks_messages_but_never_rows() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let alg = JoinAlgorithm::Repartition { bloom: false };

    let mut tuple_sys = system(&workload, FileFormat::Columnar, 1, 1, None);
    let tuple = run(&mut tuple_sys, &query, alg).unwrap();
    let mut batched_sys = system(&workload, FileFormat::Columnar, 1, 4096, None);
    let batched = run(&mut batched_sys, &query, alg).unwrap();

    assert_eq!(
        tuple.summary.hdfs_tuples_shuffled,
        batched.summary.hdfs_tuples_shuffled
    );
    assert_eq!(tuple.summary.db_tuples_sent, batched.summary.db_tuples_sent);
    assert!(
        tuple.summary.fabric_msgs > batched.summary.fabric_msgs * 4,
        "one-row framing ({} msgs) should dwarf 4096-row framing ({} msgs)",
        tuple.summary.fabric_msgs,
        batched.summary.fabric_msgs
    );
}
