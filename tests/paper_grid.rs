//! The full §5 selectivity grid: every (σT, σL, ST′, SL′) combination the
//! paper evaluates must be (a) realizable by the generator and (b) answered
//! identically by the zigzag join and the single-node reference. This is
//! the broad-coverage safety net behind the figure harnesses.

use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

/// Every selectivity combination appearing in Figures 8–15 / Table 1.
fn paper_grid() -> Vec<(f64, f64, f64, f64)> {
    let mut grid = vec![
        // Fig 8(a) and 8(b)
        (0.1, 0.1, 0.05, 0.1),
        (0.1, 0.2, 0.1, 0.1),
        (0.1, 0.4, 0.2, 0.1),
        (0.2, 0.1, 0.05, 0.2),
        (0.2, 0.2, 0.1, 0.2),
        (0.2, 0.4, 0.2, 0.2),
        // Fig 9(a)/(b)
        (0.1, 0.4, 0.5, 0.8),
        (0.1, 0.4, 0.5, 0.4),
        (0.1, 0.4, 0.5, 0.1),
        (0.1, 0.4, 0.35, 0.4),
        (0.1, 0.4, 0.2, 0.4),
    ];
    // Figs 10-15 default-S grids
    for sigma_t in [0.001, 0.01, 0.05, 0.1, 0.2] {
        for sigma_l in [0.001, 0.01, 0.2] {
            grid.push((sigma_t, sigma_l, 0.2, 0.1));
        }
    }
    grid
}

#[test]
fn zigzag_matches_reference_on_every_paper_config() {
    for (sigma_t, sigma_l, st, sl) in paper_grid() {
        let spec = WorkloadSpec {
            sigma_t,
            sigma_l,
            st,
            sl,
            t_rows: 4_000,
            l_rows: 16_000,
            num_keys: 200,
            ..WorkloadSpec::tiny()
        };
        let workload = spec
            .generate()
            .unwrap_or_else(|e| panic!("infeasible config ({sigma_t},{sigma_l},{st},{sl}): {e}"));
        let query = workload.query();
        let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 1_000;
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let out = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
        assert_eq!(
            out.result, expected,
            "zigzag diverged at (sigma_T={sigma_t}, sigma_L={sigma_l}, ST'={st}, SL'={sl})"
        );
    }
}

#[test]
fn bloom_variants_never_lose_rows_on_the_grid() {
    // Bloom filters must be one-sided: for a sample of grid points, the
    // BF'd variants produce the same aggregate as the plain repartition.
    for (sigma_t, sigma_l, st, sl) in [
        (0.1, 0.4, 0.2, 0.1),
        (0.2, 0.2, 0.1, 0.2),
        (0.1, 0.4, 0.5, 0.8),
    ] {
        let spec = WorkloadSpec {
            sigma_t,
            sigma_l,
            st,
            sl,
            t_rows: 4_000,
            l_rows: 16_000,
            num_keys: 200,
            ..WorkloadSpec::tiny()
        };
        let workload = spec.generate().unwrap();
        let query = workload.query();
        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 1_000;
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let plain = run(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
        )
        .unwrap();
        let bf = run(&mut sys, &query, JoinAlgorithm::Repartition { bloom: true }).unwrap();
        assert_eq!(plain.result, bf.result);
    }
}
