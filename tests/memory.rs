//! Memory-governor differential suite: a byte budget may change *where*
//! the hybrid hash join keeps its build side, never *what* the query
//! answers.
//!
//! Every budgeted cell — {fits-half, tiny} × grace algorithm × batch size
//! {1, 4096} × thread count {1, 8} — is measured against the unbounded
//! batch-1 single-thread replay of the same algorithm:
//!
//! 1. the **bit-identical** result batch,
//! 2. **exactly equal row-level counters** (`.tuples`, `rows_*`, scan and
//!    bloom totals) — eviction is worker-local, so no budget may move a
//!    single row across the network,
//! 3. spill-file conservation (`files_created == files_removed`) in every
//!    cell, so no budget leaks a run file,
//! 4. unbounded runs emit **no `mem.*` counters at all** — the governor is
//!    invisible until a budget exists.
//!
//! Non-vacuity is pinned separately: a fits-half budget must actually
//! evict *and* keep at least one partition resident, and a tiny budget
//! must recurse into sub-partitions. A final scenario runs 8 concurrent
//! queries through the service under one fixed pool and asserts zero
//! over-commit from the root ledger.
//!
//! CI shards the grid via `HYBRID_MEM_BUDGET` (`unbounded` → unbounded
//! cells only; any other value, e.g. `tight` → the two budgeted tiers) and
//! `HYBRID_THREADS`; a plain `cargo test` runs everything. The budgets
//! themselves are always derived from the workload here — the env var only
//! selects cells.
//!
//! Like the chaos soak, a failing grid cell does not abort its sweep: the
//! whole grid runs, the complete failing-cell list is reported, and when
//! `HYBRID_CHAOS_FAIL_LOG` names a file the cells are appended there for
//! CI to upload as the failure artifact.

mod util;

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem, JoinAlgorithm};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_service::{QueryRequest, QueryService, ServiceConfig};
use hybrid_storage::FileFormat;
use util::{grid_from_env, loaded_system, test_config};

/// The algorithms whose JEN-side hash build runs under the governor.
fn grace_algorithms() -> [JoinAlgorithm; 4] {
    [
        JoinAlgorithm::Repartition { bloom: false },
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::SemiJoin,
    ]
}

/// Budget tiers, sized from the workload's actual `L'` volume.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Budget {
    /// No pool at all — the pre-governor engine, byte for byte.
    Unbounded,
    /// Half of `L'`: the plain-repartition build fits partially, so the
    /// join must evict some partitions and keep others resident.
    Half,
    /// A few KB: nothing fits, and overflowing buckets must recurse.
    Tiny,
}

impl Budget {
    fn bytes(self, l_prime_bytes: u64) -> Option<u64> {
        match self {
            Budget::Unbounded => None,
            Budget::Half => Some((l_prime_bytes / 2).max(1)),
            Budget::Tiny => Some(4 << 10),
        }
    }
}

/// Grid axes, CI-shardable.
fn budget_grid() -> Vec<Budget> {
    match std::env::var("HYBRID_MEM_BUDGET").ok().as_deref() {
        None | Some("") => vec![Budget::Unbounded, Budget::Half, Budget::Tiny],
        Some("unbounded") => vec![Budget::Unbounded],
        Some(_) => vec![Budget::Half, Budget::Tiny],
    }
}

fn thread_grid() -> Vec<usize> {
    grid_from_env("HYBRID_THREADS", &[1, 8])
}

/// Serialized bytes of `L` after local predicates + projection — the total
/// volume the repartition family shuffles into its build sides.
fn l_prime_bytes(workload: &Workload) -> u64 {
    let q = workload.query();
    let mask = q.hdfs_pred.eval_predicate(&workload.l).unwrap();
    let l_prime = workload
        .l
        .filter(&mask)
        .unwrap()
        .project(&q.hdfs_proj)
        .unwrap();
    l_prime.serialized_bytes() as u64
}

fn system(
    workload: &Workload,
    threads: usize,
    batch_rows: usize,
    budget: Option<u64>,
) -> HybridSystem {
    let mut cfg = test_config(3, 4);
    cfg.threads = threads;
    cfg.batch_rows = batch_rows;
    cfg.mem_budget_bytes = budget;
    loaded_system(cfg, workload, FileFormat::Columnar)
}

/// The row-denominated slice of a snapshot: everything except message and
/// byte framing, spill volumes (written in whatever framing the build
/// received) and the governor's own `mem.*` ledger.
fn row_level(snapshot: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    snapshot
        .iter()
        .filter(|(k, _)| {
            !(k.ends_with(".msgs")
                || k.ends_with(".bytes")
                || k.contains("spill")
                || k.starts_with("mem."))
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

fn counter(snapshot: &BTreeMap<String, u64>, name: &str) -> u64 {
    snapshot.get(name).copied().unwrap_or(0)
}

/// Append failing grid cells to `HYBRID_CHAOS_FAIL_LOG` (the same artifact
/// CI uploads for the chaos soak — appended, because the four grid tests
/// share one file).
fn log_failed_cells(failures: &[(String, String)]) {
    use std::io::Write;
    let Ok(path) = std::env::var("HYBRID_CHAOS_FAIL_LOG") else {
        return;
    };
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            for (cell, msg) in failures {
                let _ = writeln!(f, "{cell}\t{}", msg.replace('\n', " "));
            }
            eprintln!("failing cells appended to {path}");
        }
        Err(e) => eprintln!("could not write failing-cell log {path}: {e}"),
    }
}

/// Every spill file a run created must be removed by the time it returns.
fn assert_spill_conservation(snapshot: &BTreeMap<String, u64>, ctx: &str) {
    assert_eq!(
        counter(snapshot, "jen.spill.files_created"),
        counter(snapshot, "jen.spill.files_removed"),
        "{ctx}: leaked spill run files"
    );
}

/// One algorithm's full budget × batch × thread grid against its
/// unbounded batch-1 sequential replay.
fn assert_budget_invisible(alg: JoinAlgorithm) {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let l_bytes = l_prime_bytes(&workload);
    assert!(l_bytes > 16 << 10, "workload too small to pressure");

    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    let mut ref_sys = system(&workload, 1, 1, None);
    let reference = run(&mut ref_sys, &query, alg).unwrap();
    assert_eq!(reference.result, expected, "{alg} reference replay wrong");
    let ref_rows = row_level(&reference.snapshot);
    assert!(
        !reference.snapshot.keys().any(|k| k.starts_with("mem.")),
        "{alg}: unbounded reference leaked mem.* counters"
    );

    let mut failures: Vec<(String, String)> = Vec::new();
    for budget in budget_grid() {
        for batch_rows in [1usize, 4096] {
            for threads in thread_grid() {
                let ctx = format!("{alg} {budget:?} batch_rows={batch_rows} threads={threads}");
                // one bad cell must not hide the rest of the grid
                let cell = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut sys = system(&workload, threads, batch_rows, budget.bytes(l_bytes));
                    let out = run(&mut sys, &query, alg).unwrap();
                    assert_eq!(
                        out.result, reference.result,
                        "{ctx}: result diverged from unbounded batch-1 replay"
                    );
                    assert_eq!(
                        row_level(&out.snapshot),
                        ref_rows,
                        "{ctx}: row-level counters diverged"
                    );
                    assert_spill_conservation(&out.snapshot, &ctx);
                    if budget == Budget::Unbounded {
                        assert!(
                            !out.snapshot.keys().any(|k| k.starts_with("mem.")),
                            "{ctx}: governor must be invisible without a budget"
                        );
                    } else {
                        // the run held a reservation and reported residency
                        assert!(
                            counter(&out.snapshot, "mem.high_water") > 0
                                || counter(&out.snapshot, "mem.evictions") > 0,
                            "{ctx}: budgeted run left no governor trace"
                        );
                    }
                }));
                if let Err(panic) = cell {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".into());
                    eprintln!("cell {ctx} FAILED: {msg}");
                    failures.push((ctx, msg));
                }
            }
        }
    }
    if !failures.is_empty() {
        log_failed_cells(&failures);
        let cells: Vec<&str> = failures.iter().map(|(c, _)| c.as_str()).collect();
        panic!(
            "{} {alg} grid cell(s) failed: {}",
            failures.len(),
            cells.join("; ")
        );
    }
}

#[test]
fn repartition_budget_grid() {
    assert_budget_invisible(JoinAlgorithm::Repartition { bloom: false });
}

#[test]
fn repartition_bloom_budget_grid() {
    assert_budget_invisible(JoinAlgorithm::Repartition { bloom: true });
}

#[test]
fn zigzag_budget_grid() {
    assert_budget_invisible(JoinAlgorithm::Zigzag);
}

#[test]
fn semijoin_budget_grid() {
    assert_budget_invisible(JoinAlgorithm::SemiJoin);
}

/// Non-vacuity of the Half tier: plain repartition's build is all of
/// `L'`, so half of it cannot stay resident — some partitions must be
/// evicted, at least one must survive, and no worker may exceed its cap.
#[test]
fn fits_half_budget_evicts_partially() {
    if budget_grid().iter().all(|b| *b == Budget::Unbounded) {
        return; // sharded out by HYBRID_MEM_BUDGET=unbounded
    }
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let l_bytes = l_prime_bytes(&workload);
    let total = Budget::Half.bytes(l_bytes).unwrap();

    let mut sys = system(&workload, 1, 4096, Some(total));
    let jen_workers = sys.config.jen_workers as u64;
    let out = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap();

    let evictions = counter(&out.snapshot, "mem.evictions");
    let resident = counter(&out.snapshot, "mem.partitions_resident");
    let high_water = counter(&out.snapshot, "mem.high_water");
    assert!(evictions > 0, "half of L' cannot hold the whole build");
    assert!(
        resident > 0,
        "half of L' must keep some partitions resident"
    );
    assert!(high_water > 0, "resident partitions must be ledgered");
    assert!(
        high_water <= total / jen_workers,
        "worker high-water {high_water} exceeds its {} cap",
        total / jen_workers
    );
    assert!(
        out.summary.spill_bytes_written > 0 && out.summary.spill_bytes_read > 0,
        "evicted partitions must round-trip through spill runs"
    );
    assert_eq!(out.summary.mem_high_water, high_water);
}

/// Non-vacuity of the Tiny tier: a spilled partition that still exceeds
/// its share must be recursively repartitioned, and the depth-salted
/// sub-partitioning must still converge to the exact result.
#[test]
fn tiny_budget_recursively_repartitions() {
    if budget_grid().iter().all(|b| *b == Budget::Unbounded) {
        return; // sharded out by HYBRID_MEM_BUDGET=unbounded
    }
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let mut sys = system(&workload, 1, 4096, Budget::Tiny.bytes(0));
    let out = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap();
    assert_eq!(out.result, expected, "recursive repartitioning diverged");
    assert!(
        counter(&out.snapshot, "mem.recursive_repartitions") > 0,
        "a few-KB budget must force recursion, or the tier tests nothing"
    );
    assert_spill_conservation(&out.snapshot, "tiny budget");
}

/// Service-level scenario: 8 concurrent queries draw from one fixed pool.
/// All must complete with exact results, the root ledger must show zero
/// over-commit (reservations and live usage both bounded by the pool), and
/// the pressure must be real — the runs spill.
#[test]
fn eight_queries_share_one_pool_without_overcommit() {
    if budget_grid().iter().all(|b| *b == Budget::Unbounded) {
        return; // sharded out by HYBRID_MEM_BUDGET=unbounded
    }
    const CLIENTS: usize = 8;
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let l_bytes = l_prime_bytes(&workload);
    let total = l_bytes / 2;

    // ground truth per algorithm on fresh unbounded systems
    let algorithms = grace_algorithms();
    let mut reference = Vec::new();
    for &alg in &algorithms {
        let mut sys = system(&workload, 1, 4096, None);
        reference.push(run(&mut sys, &query, alg).unwrap().result);
    }

    let mut cfg = test_config(3, 4);
    cfg.batch_rows = 4096;
    cfg.mem_budget_bytes = Some(total);
    let root = loaded_system(cfg, &workload, FileFormat::Columnar);
    let svc_cfg = ServiceConfig {
        max_in_flight: 4,
        max_queued: 64,
        queue_timeout: Duration::from_secs(120),
        result_cache_capacity: 0, // every submission must execute
        bloom_cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let svc = Arc::new(QueryService::new(root, svc_cfg));
    let reference = Arc::new(reference);

    let mut spilled_total = 0u64;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let reference = Arc::clone(&reference);
            let query = query.clone();
            thread::spawn(move || {
                let alg = grace_algorithms()[client % 4];
                let req = QueryRequest::with_algorithm(query, alg);
                let resp = svc
                    .submit(&req)
                    .unwrap_or_else(|e| panic!("client {client} ({alg}): {e}"));
                assert_eq!(
                    *resp.result,
                    reference[client % 4],
                    "client {client}: {alg} diverged under the shared pool"
                );
                resp.summary.expect("executed query has a summary")
            })
        })
        .collect();
    for h in handles {
        spilled_total += h.join().unwrap().spill_bytes_written;
    }

    let root_snapshot = svc.metrics().snapshot();
    let reservations = counter(&root_snapshot, "mem.reservations");
    let reserved_hw = counter(&root_snapshot, "mem.reserved_high_water");
    let pool_hw = counter(&root_snapshot, "mem.pool_high_water");
    assert_eq!(reservations, CLIENTS as u64, "one grant per query");
    assert_eq!(counter(&root_snapshot, "mem.reservation_denied"), 0);
    assert!(
        reserved_hw > 0 && reserved_hw <= total,
        "reserved high-water {reserved_hw} over-commits the {total}-byte pool"
    );
    assert!(
        pool_hw > 0 && pool_hw <= total,
        "live usage high-water {pool_hw} over-commits the {total}-byte pool"
    );
    assert!(
        spilled_total > 0,
        "an L'/2 pool split 4 ways must make someone spill"
    );
    // every reservation was handed back
    let sys = svc.system();
    assert_eq!(sys.mem_pool.reserved(), 0, "leaked reservation");
    assert_eq!(sys.mem_pool.used(), 0, "leaked residency ledger");
}
