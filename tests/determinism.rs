//! Determinism contract of the parallel driver: for every algorithm, the
//! query result must be **bit-identical** and the per-run metric totals
//! must be **exactly equal** whether workers run sequentially (`threads =
//! 1`, the reference order) or on real OS threads — on both storage
//! formats.
//!
//! This holds because every cross-worker reduction in the system is a
//! commutative monoid (integer aggregates, Bloom-filter OR, additive
//! counters), final aggregation sorts by group key, and order-sensitive
//! exchanges (PERF bitmaps) are indexed by sender rather than by arrival.

mod util;

use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_storage::FileFormat;
use util::{all_algorithms, loaded_system, test_config};

fn system(workload: &Workload, format: FileFormat, threads: usize) -> HybridSystem {
    let mut cfg = test_config(3, 5);
    cfg.threads = threads;
    loaded_system(cfg, workload, format)
}

#[test]
fn thread_count_changes_nothing_observable() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert!(expected.num_rows() > 0);

    for format in [FileFormat::Columnar, FileFormat::Text] {
        let mut baseline_sys = system(&workload, format, 1);
        let mut parallel_sys: Vec<(usize, HybridSystem)> = [2usize, 8]
            .into_iter()
            .map(|t| (t, system(&workload, format, t)))
            .collect();

        for alg in all_algorithms() {
            let baseline = run(&mut baseline_sys, &query, alg).unwrap();
            assert_eq!(baseline.result, expected, "{alg} wrong on {format}");
            for (threads, sys) in &mut parallel_sys {
                let out = run(sys, &query, alg).unwrap();
                assert_eq!(
                    out.result, baseline.result,
                    "{alg} result diverged at {threads} threads on {format}"
                );
                assert_eq!(
                    out.snapshot, baseline.snapshot,
                    "{alg} metric totals diverged at {threads} threads on {format}"
                );
            }
        }
    }
}
