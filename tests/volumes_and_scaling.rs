//! Volume accounting invariants: the counters behind Table 1 scale linearly
//! with the workload, Bloom filters beat exact key sets on the wire when
//! the key set is large, and the zigzag join's defining reductions hold.

use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn run_at(l_rows: usize, alg: JoinAlgorithm) -> hybrid_core::JoinSummary {
    let spec = WorkloadSpec {
        t_rows: l_rows / 6,
        l_rows,
        num_keys: 100,
        ..WorkloadSpec::tiny()
    };
    let workload = spec.generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(3, 5);
    cfg.rows_per_block = 500;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    run(&mut sys, &workload.query(), alg).unwrap().summary
}

#[test]
fn shuffle_volume_scales_linearly_with_l() {
    let small = run_at(12_000, JoinAlgorithm::Repartition { bloom: false });
    let large = run_at(36_000, JoinAlgorithm::Repartition { bloom: false });
    let ratio = large.hdfs_tuples_shuffled as f64 / small.hdfs_tuples_shuffled as f64;
    assert!(
        (2.5..3.5).contains(&ratio),
        "expected ~3x shuffle volume, got {ratio:.2} ({} -> {})",
        small.hdfs_tuples_shuffled,
        large.hdfs_tuples_shuffled
    );
}

#[test]
fn zigzag_reduces_both_directions() {
    let rep = run_at(24_000, JoinAlgorithm::Repartition { bloom: false });
    let rep_bf = run_at(24_000, JoinAlgorithm::Repartition { bloom: true });
    let zz = run_at(24_000, JoinAlgorithm::Zigzag);

    // BF_DB: ~SL' = 0.1 of L' survives (plus false positives)
    let shuffle_cut = rep.hdfs_tuples_shuffled as f64 / rep_bf.hdfs_tuples_shuffled as f64;
    assert!(
        (5.0..14.0).contains(&shuffle_cut),
        "BF shuffle cut {shuffle_cut:.1}"
    );
    // zigzag keeps the same shuffle but also cuts DB tuples by ~ST' = 0.2
    assert_eq!(zz.hdfs_tuples_shuffled, rep_bf.hdfs_tuples_shuffled);
    let sent_cut = rep_bf.db_tuples_sent as f64 / zz.db_tuples_sent as f64;
    assert!((3.0..8.0).contains(&sent_cut), "T'' cut {sent_cut:.1}");
}

#[test]
fn bloom_filter_cheaper_than_exact_key_set_on_the_wire() {
    // With ~20 distinct T' keys at tiny scale the key set is small, so use
    // a bigger key universe where the semi-join's exact set costs more.
    let spec = WorkloadSpec {
        t_rows: 30_000,
        l_rows: 60_000,
        num_keys: 3_000,
        sigma_t: 0.5,
        ..WorkloadSpec::tiny()
    };
    let workload = spec.generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(3, 5);
    cfg.rows_per_block = 2_000;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    let query = workload.query();

    let bf = run(&mut sys, &query, JoinAlgorithm::Repartition { bloom: true }).unwrap();
    let semi = run(&mut sys, &query, JoinAlgorithm::SemiJoin).unwrap();
    assert_eq!(bf.result, semi.result);
    assert!(
        bf.summary.bloom_cross_bytes < semi.summary.keyset_cross_bytes,
        "bloom {}B vs exact key set {}B",
        bf.summary.bloom_cross_bytes,
        semi.summary.keyset_cross_bytes
    );
    // but the exact set filters at least as sharply (no false positives)
    assert!(semi.summary.hdfs_tuples_shuffled <= bf.summary.hdfs_tuples_shuffled);
}

#[test]
fn perf_join_forward_transfer_grows_with_duplicates() {
    // PERF ships one key per T' *tuple*; the Bloom filter's size depends
    // only on its geometry. With ~100 rows per key, PERF's forward key
    // stream dwarfs the zigzag join's fixed-size filters — the paper's §6
    // criticism, measured.
    let spec = WorkloadSpec {
        t_rows: 30_000, // ~300 rows per selected key: heavy duplication
        l_rows: 60_000,
        num_keys: 100,
        ..WorkloadSpec::tiny()
    };
    let workload = spec.generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(3, 5);
    cfg.rows_per_block = 2_000;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    let query = workload.query();

    let zz = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
    let perf = run(&mut sys, &query, JoinAlgorithm::PerfJoin).unwrap();
    assert_eq!(zz.result, perf.result);
    // PERF keys = one per T' tuple
    assert_eq!(perf.summary.perf_keys_tuples, perf.summary.t_prime_rows);
    assert!(
        perf.summary.perf_keys_cross_bytes > 4 * zz.summary.bloom_cross_bytes,
        "perf keys {}B should dwarf zigzag's filters {}B",
        perf.summary.perf_keys_cross_bytes,
        zz.summary.bloom_cross_bytes
    );
    // but PERF is exact: it never ships a false-positive T' tuple
    assert!(perf.summary.db_data_tuples <= zz.summary.db_data_tuples);
}

#[test]
fn broadcast_volume_scales_with_worker_count() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let mut sent = Vec::new();
    for jen in [2usize, 6] {
        let mut cfg = SystemConfig::paper_shape(2, jen);
        cfg.rows_per_block = 500;
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let out = run(&mut sys, &query, JoinAlgorithm::Broadcast).unwrap();
        sent.push(out.summary.db_tuples_sent);
    }
    assert_eq!(
        sent[1],
        sent[0] * 3,
        "broadcast fan-out must scale: {sent:?}"
    );
}

#[test]
fn db_side_cross_traffic_tracks_sigma_l() {
    let narrow = {
        let spec = WorkloadSpec {
            sigma_l: 0.1,
            ..WorkloadSpec::tiny()
        };
        let workload = spec.generate().unwrap();
        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 500;
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        run(
            &mut sys,
            &workload.query(),
            JoinAlgorithm::DbSide { bloom: false },
        )
        .unwrap()
        .summary
    };
    let wide = {
        let spec = WorkloadSpec {
            sigma_l: 0.4,
            ..WorkloadSpec::tiny()
        };
        let workload = spec.generate().unwrap();
        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 500;
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        run(
            &mut sys,
            &workload.query(),
            JoinAlgorithm::DbSide { bloom: false },
        )
        .unwrap()
        .summary
    };
    let ratio = wide.hdfs_tuples_sent as f64 / narrow.hdfs_tuples_sent as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "expected ~4x ingestion at 4x sigma_L, got {ratio:.2}"
    );
}
