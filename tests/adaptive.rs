//! Differential contract of the mid-query adaptive re-optimization
//! subsystem (`hybrid_core::adapt`):
//!
//! * **Disarmed is invisible.** With `replan_threshold = None`,
//!   [`run_adaptive`] must be byte-for-byte the plain [`run`] — same
//!   result bits, same metric snapshot, zero `advisor.*` replan counters
//!   — for every algorithm on both storage formats.
//! * **Mis-estimates are caught.** A workload whose Bloom filter would
//!   eliminate 95% of `L'`, run through `repartition` under estimates
//!   corrupted to claim the filter is useless (`SL' = ST' = 1`), must
//!   replan exactly once at the observation point, still produce the
//!   bit-identical sequential-reference answer, shuffle strictly fewer
//!   tuples than the non-adaptive run of the same mis-chosen plan, and
//!   beat its wall clock (min-of-3 on both sides).
//! * **Good estimates never replan.** Honest sampled estimates on the
//!   same data keep the controller quiet for every advisor-priced
//!   algorithm: no replans, no false-positive restarts, bit-identical
//!   answers.

mod util;

use hybrid_core::reference::run_reference;
use hybrid_core::{
    run, run_adaptive, sample_stats, HybridQuery, HybridSystem, JoinAlgorithm, QueryEstimates,
};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_storage::FileFormat;
use util::{all_algorithms, loaded_system, test_config};

const THRESHOLD: f64 = 1.5;

/// A workload whose join-key selectivity on `L'` is tiny — the shape
/// where a plan that ignores `BF_DB` ships ~20x more tuples than one
/// that consumes it, so a corrupted `SL' = 1` estimate is maximally
/// wrong. Mirrors the pinned `bench_baseline` adaptive demonstration.
fn mis_estimable_workload() -> Workload {
    WorkloadSpec {
        t_rows: 10_000,
        l_rows: 100_000,
        sigma_l: 0.8,
        sl: 0.05,
        ..WorkloadSpec::tiny()
    }
    .generate()
    .unwrap()
}

/// `test_config` inherits `HYBRID_THREADS` (the CI adaptive-matrix axis);
/// the threshold is always pinned explicitly — each case's semantics
/// define it, so the `HYBRID_REPLAN_THRESHOLD` axis must not leak in.
fn system(workload: &Workload, format: FileFormat, threshold: Option<f64>) -> HybridSystem {
    let mut cfg = test_config(3, 4);
    cfg.replan_threshold = threshold;
    loaded_system(cfg, workload, format)
}

/// Honest sampling-derived estimates — what the advisor would run with.
fn honest_estimates(sys: &HybridSystem, query: &HybridQuery) -> QueryEstimates {
    sample_stats(sys, query, 8).unwrap().to_estimates(
        query,
        sys.config.jen_workers,
        sys.mem_budget_per_worker(),
    )
}

/// The deliberate mis-estimate: honest volumes, but join-key
/// selectivities forced to 1.0 as if the Bloom filter eliminated nothing.
fn corrupted_estimates(sys: &HybridSystem, query: &HybridQuery) -> QueryEstimates {
    let mut est = honest_estimates(sys, query);
    est.st = 1.0;
    est.sl = 1.0;
    est
}

/// (a) Threshold off ⇒ the adaptive entry point is the plain runner,
/// byte for byte: identical result bits, identical metric snapshots, and
/// the replan counters never even register.
#[test]
fn threshold_off_is_byte_identical_to_plain_execution() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert!(expected.num_rows() > 0);

    for format in [FileFormat::Columnar, FileFormat::Text] {
        let mut plain_sys = system(&workload, format, None);
        let mut off_sys = system(&workload, format, None);
        let est = honest_estimates(&off_sys, &query);
        for alg in all_algorithms() {
            let plain = run(&mut plain_sys, &query, alg).unwrap();
            let off = run_adaptive(&mut off_sys, &query, alg, &est).unwrap();
            assert_eq!(plain.result, expected, "{alg} wrong on {format}");
            assert_eq!(
                off.result, plain.result,
                "{alg} disarmed adaptive result diverged on {format}"
            );
            assert_eq!(
                off.snapshot, plain.snapshot,
                "{alg} disarmed adaptive metrics diverged on {format}"
            );
            assert_eq!(off_sys.metrics.get("advisor.replans"), 0);
            assert_eq!(off_sys.metrics.get("advisor.replan_considered"), 0);
        }
    }
}

/// (b) The mis-sampled workload: corrupted estimates send `repartition`
/// (no Bloom) into a 20x-too-big shuffle; the observation point must
/// catch it, replan exactly once, answer bit-identically to the
/// sequential reference, move strictly fewer tuples, and win on wall
/// clock against the same workload with adaptation off.
#[test]
fn mis_estimated_workload_replans_once_and_wins() {
    let workload = mis_estimable_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let mut cfg = test_config(3, 4);
    // Sequential execution and small fabric batches are pinned regardless
    // of the CI matrix axes: the batches magnify the per-row cost of the
    // wasted shuffle the replan recovers, and one thread keeps the timing
    // gate's margin wide (same framing the bench_baseline adaptive gate
    // pins).
    cfg.threads = 1;
    cfg.batch_rows = 64;
    cfg.replan_threshold = None;
    let mut plain_sys = loaded_system(cfg.clone(), &workload, FileFormat::Columnar);
    cfg.replan_threshold = Some(THRESHOLD);
    let mut adaptive_sys = loaded_system(cfg, &workload, FileFormat::Columnar);

    let alg = JoinAlgorithm::Repartition { bloom: false };
    let est = corrupted_estimates(&adaptive_sys, &query);

    // The volumes are deterministic — every repeat is bit-identical — so
    // min-of-3 interleaved repeats only strip scheduler noise from the
    // wall-clock comparison.
    let mut plain_wall = std::time::Duration::MAX;
    let mut adaptive_wall = std::time::Duration::MAX;
    let mut plain = None;
    let mut adaptive = None;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        plain = Some(run(&mut plain_sys, &query, alg).unwrap());
        plain_wall = plain_wall.min(started.elapsed());
        let started = std::time::Instant::now();
        adaptive = Some(run_adaptive(&mut adaptive_sys, &query, alg, &est).unwrap());
        adaptive_wall = adaptive_wall.min(started.elapsed());
    }
    let (plain, adaptive) = (plain.unwrap(), adaptive.unwrap());

    assert_eq!(plain.result, expected, "non-adaptive baseline wrong");
    assert_eq!(
        adaptive.result, expected,
        "replanned run diverged from the sequential reference"
    );
    assert_eq!(
        adaptive_sys.metrics.get("advisor.replans"),
        1,
        "the mis-estimated workload must replan exactly once"
    );
    assert!(
        adaptive_sys.metrics.get("advisor.replan_considered") >= 1,
        "the divergence must cross the threshold"
    );
    assert!(
        adaptive.summary.hdfs_tuples_shuffled < plain.summary.hdfs_tuples_shuffled,
        "replanned plan must move fewer tuples ({} vs {})",
        adaptive.summary.hdfs_tuples_shuffled,
        plain.summary.hdfs_tuples_shuffled
    );
    // The wall-clock gate is only meaningful on optimized builds: debug
    // binaries distort the shuffle-vs-fixed-overhead balance the replan
    // win rests on, and the blanket debug `cargo test` runs this test
    // alongside siblings on loaded cores. The release `adaptive-matrix`
    // CI job and the `bench_baseline` adaptive section both enforce it.
    if !cfg!(debug_assertions) {
        assert!(
            adaptive_wall <= plain_wall,
            "adaptive run ({adaptive_wall:?}) slower than the non-adaptive \
             mis-chosen plan ({plain_wall:?})"
        );
    }
}

/// (c) No false positives: honest estimates on the same mis-estimable
/// data never trip the controller — every advisor-priced algorithm runs
/// to completion on its original plan, bit-identical to the reference,
/// with zero replans considered or taken.
#[test]
fn well_estimated_workload_never_replans() {
    let workload = mis_estimable_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let mut sys = system(&workload, FileFormat::Columnar, Some(THRESHOLD));
    let est = honest_estimates(&sys, &query);
    for alg in all_algorithms() {
        let out = run_adaptive(&mut sys, &query, alg, &est).unwrap();
        assert_eq!(out.result, expected, "{alg} wrong under armed controller");
        assert_eq!(
            sys.metrics.get("advisor.replans"),
            0,
            "{alg} replanned on honest estimates"
        );
    }
}
