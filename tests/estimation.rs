//! Sampling-based estimation against the generator's ground truth: the
//! estimated selectivities must land near the requested ones, and
//! `run_auto` must both pick a §5.5-consistent algorithm and return the
//! correct answer.

use hybrid_core::reference::run_reference;
use hybrid_core::{run_auto, sample_stats, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn system(spec: WorkloadSpec) -> (HybridSystem, hybrid_datagen::Workload) {
    let workload = spec.generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(3, 5);
    cfg.rows_per_block = 1_000;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    (sys, workload)
}

#[test]
fn sampled_selectivities_near_ground_truth() {
    let spec = WorkloadSpec {
        t_rows: 20_000,
        l_rows: 60_000,
        num_keys: 300,
        sigma_t: 0.1,
        sigma_l: 0.4,
        st: 0.2,
        sl: 0.1,
        ..WorkloadSpec::tiny()
    };
    let (sys, workload) = system(spec);
    let stats = sample_stats(&sys, &workload.query(), 8).unwrap();
    assert!(
        (stats.sigma_t - 0.1).abs() < 0.04,
        "sigma_T est {}",
        stats.sigma_t
    );
    assert!(
        (stats.sigma_l - 0.4).abs() < 0.08,
        "sigma_L est {}",
        stats.sigma_l
    );
    // join-key estimates are sketchy but must have the right order
    assert!(stats.st < 0.5, "ST' est {}", stats.st);
    assert!(stats.sl < 0.4, "SL' est {}", stats.sl);
    // row estimates within 2x
    let t_ratio = stats.t_prime_rows / (0.1 * 20_000.0);
    assert!((0.5..2.0).contains(&t_ratio), "T' rows est off: {t_ratio}");
    let l_ratio = stats.l_prime_rows / (0.4 * 60_000.0);
    assert!((0.5..2.0).contains(&l_ratio), "L' rows est off: {l_ratio}");
}

#[test]
fn run_auto_returns_correct_result() {
    let (mut sys, workload) = system(WorkloadSpec::tiny());
    let query = workload.query();
    let (choice, out, stats) = run_auto(&mut sys, &query).unwrap();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(out.result, expected, "auto-chosen {choice} diverged");
    // the sampling pass's stats ride along for estimate-vs-actual audits
    assert!(stats.sigma_t > 0.0 && stats.sigma_l > 0.0);
}

#[test]
fn run_auto_prefers_broadcast_for_tiny_t_prime() {
    let spec = WorkloadSpec {
        sigma_t: 0.004,
        sigma_l: 0.4,
        st: 0.8,
        sl: 0.8,
        t_rows: 20_000,
        l_rows: 60_000,
        num_keys: 300,
        ..WorkloadSpec::tiny()
    };
    let (mut sys, workload) = system(spec);
    let (choice, _, _) = run_auto(&mut sys, &workload.query()).unwrap();
    assert_eq!(choice, JoinAlgorithm::Broadcast, "tiny T' should broadcast");
}

#[test]
fn run_auto_prefers_db_side_for_tiny_l_prime() {
    let spec = WorkloadSpec {
        sigma_t: 0.2,
        sigma_l: 0.004,
        st: 0.8,
        sl: 0.8,
        t_rows: 20_000,
        l_rows: 60_000,
        num_keys: 300,
        ..WorkloadSpec::tiny()
    };
    let (mut sys, workload) = system(spec);
    let (choice, _, _) = run_auto(&mut sys, &workload.query()).unwrap();
    assert!(
        matches!(choice, JoinAlgorithm::DbSide { .. }),
        "tiny L' should run in the database, chose {choice}"
    );
}
