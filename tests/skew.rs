//! Skew-aware shuffle: correctness and balance under heavy-hitter join
//! keys.
//!
//! The contract mirrors the determinism suite, with hostile key
//! distributions: for Zipf(0.8), Zipf(1.2), and the pathological
//! single-key table, every algorithm must return the **bit-identical**
//! sequential-reference answer on both storage formats at 1 and 8 threads
//! — with salting off *and* on. Salting relocates work, never results:
//! a hot build-side key is split across `salt_buckets` JEN workers and the
//! matching probe tuples are replicated to exactly those workers, so each
//! join pair still meets exactly once.
//!
//! On top of correctness, `net.shuffle.max_over_mean_x1000` (the straggler
//! metric the cost model consumes) must collapse when salting is enabled.

mod util;

use hybrid_core::reference::run_reference;
use hybrid_core::{run, FaultSpec, HybridSystem, JoinAlgorithm};
use hybrid_datagen::{KeySkew, Workload, WorkloadSpec};
use hybrid_storage::FileFormat;
use util::{all_algorithms, loaded_system, salted_algorithms, test_config};

const DB_WORKERS: usize = 3;
const JEN_WORKERS: usize = 4;
const SALT_BUCKETS: usize = 4;

fn skewed_workload(skew: KeySkew) -> Workload {
    let mut spec = WorkloadSpec::tiny();
    spec.t_rows = 600;
    spec.l_rows = 3_000;
    spec.skew = skew;
    spec.generate().unwrap()
}

fn system(
    workload: &Workload,
    format: FileFormat,
    jen_workers: usize,
    threads: usize,
    salt_buckets: Option<usize>,
) -> HybridSystem {
    let mut cfg = test_config(DB_WORKERS, jen_workers);
    cfg.threads = threads;
    cfg.salt_buckets = salt_buckets;
    loaded_system(cfg, workload, format)
}

/// The correctness grid for one skew: every format × thread count ×
/// algorithm, salted and unsalted, against the sequential unsalted
/// reference. One `#[test]` per skew so the harness runs them in parallel.
fn assert_grid_bit_identical(name: &str, skew: KeySkew) {
    let workload = skewed_workload(skew);
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert!(expected.num_rows() > 0, "{name}: query must be non-trivial");

    for format in [FileFormat::Columnar, FileFormat::Text] {
        for threads in [1usize, 8] {
            let mut plain = system(&workload, format, JEN_WORKERS, threads, None);
            for alg in all_algorithms() {
                let out = run(&mut plain, &query, alg).unwrap();
                assert_eq!(
                    out.result, expected,
                    "{name}: {alg} wrong on {format} at {threads} threads"
                );
            }
            let mut salted = system(&workload, format, JEN_WORKERS, threads, Some(SALT_BUCKETS));
            for alg in salted_algorithms() {
                let out = run(&mut salted, &query, alg).unwrap();
                assert_eq!(
                    out.result, expected,
                    "{name}: salted {alg} wrong on {format} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn zipf_08_joins_are_bit_identical_to_reference() {
    assert_grid_bit_identical("zipf-0.8", KeySkew::Zipf { s: 0.8 });
}

#[test]
fn zipf_12_joins_are_bit_identical_to_reference() {
    assert_grid_bit_identical("zipf-1.2", KeySkew::Zipf { s: 1.2 });
}

#[test]
fn single_key_joins_are_bit_identical_to_reference() {
    assert_grid_bit_identical("single-key", KeySkew::SingleKey);
}

/// The point of salting: the straggler metric collapses. Run at 8 JEN
/// workers so a hot key leaves real headroom between the unsalted ratio
/// and the fan-out-of-4 salted one. All values are exact — the metric is
/// schedule-independent.
#[test]
fn salting_collapses_the_shuffle_straggler() {
    let jen = 8usize;

    // Pathological single key: unsalted, one worker receives every build
    // row, so max/mean is exactly the worker count.
    let workload = skewed_workload(KeySkew::SingleKey);
    let query = workload.query();
    let alg = JoinAlgorithm::Repartition { bloom: false };

    let mut plain = system(&workload, FileFormat::Columnar, jen, 8, None);
    let off = run(&mut plain, &query, alg).unwrap();
    assert_eq!(
        off.summary.shuffle_max_over_mean_x1000,
        (jen * 1000) as u64,
        "single hot key must land every build row on one worker"
    );
    let mut salty = system(&workload, FileFormat::Columnar, jen, 8, Some(SALT_BUCKETS));
    let on = run(&mut salty, &query, alg).unwrap();
    assert_eq!(off.result, on.result);
    assert!(
        // fan-out 4 splits the key across 4 of 8 workers: max/mean ~2.0
        on.summary.shuffle_max_over_mean_x1000 <= 2_600,
        "salted single-key ratio {} should approach the fan-out bound",
        on.summary.shuffle_max_over_mean_x1000
    );

    // Zipf 1.2 at 8 threads — the acceptance configuration: at least a
    // 1.5x balance improvement, bit-identical results.
    let workload = skewed_workload(KeySkew::Zipf { s: 1.2 });
    let query = workload.query();
    let mut plain = system(&workload, FileFormat::Columnar, jen, 8, None);
    let off = run(&mut plain, &query, alg).unwrap();
    let mut salty = system(&workload, FileFormat::Columnar, jen, 8, Some(SALT_BUCKETS));
    let on = run(&mut salty, &query, alg).unwrap();
    assert_eq!(off.result, on.result, "salting must not change the answer");
    let (u, s) = (
        off.summary.shuffle_max_over_mean_x1000,
        on.summary.shuffle_max_over_mean_x1000,
    );
    assert!(
        s > 0 && u * 2 >= s * 3,
        "zipf-1.2 salting must improve max/mean by >= 1.5x, got {u} -> {s}"
    );
}

/// A cold (uniform) workload must not be touched by the detector: with no
/// heavy hitter above threshold the router disables itself and the salted
/// system meters the exact same shuffle volumes as the plain one.
#[test]
fn uniform_keys_leave_salting_dormant() {
    let workload = skewed_workload(KeySkew::Uniform);
    let query = workload.query();
    let alg = JoinAlgorithm::Repartition { bloom: false };
    let mut plain = system(&workload, FileFormat::Columnar, JEN_WORKERS, 1, None);
    let off = run(&mut plain, &query, alg).unwrap();
    let mut salty = system(
        &workload,
        FileFormat::Columnar,
        JEN_WORKERS,
        1,
        Some(SALT_BUCKETS),
    );
    let on = run(&mut salty, &query, alg).unwrap();
    assert_eq!(off.result, on.result);
    assert_eq!(
        off.summary.hdfs_tuples_shuffled, on.summary.hdfs_tuples_shuffled,
        "a dormant router must not add replication traffic"
    );
    assert_eq!(
        off.summary.db_tuples_sent, on.summary.db_tuples_sent,
        "a dormant router must not replicate probe tuples"
    );
}

/// The sampling estimator feeds the advisor a real skew number: the
/// single-key table must report (close to) the worker count, the uniform
/// table something near 1.
#[test]
fn sampled_estimates_see_the_skew() {
    let hot = skewed_workload(KeySkew::SingleKey);
    let sys = system(&hot, FileFormat::Columnar, JEN_WORKERS, 1, None);
    let stats = hybrid_core::sample_stats(&sys, &hot.query(), 8).unwrap();
    assert!(
        stats.shuffle_skew > JEN_WORKERS as f64 - 0.1,
        "single-key sampled skew {} must approach the worker count",
        stats.shuffle_skew
    );

    let flat = skewed_workload(KeySkew::Uniform);
    let sys = system(&flat, FileFormat::Columnar, JEN_WORKERS, 1, None);
    let stats = hybrid_core::sample_stats(&sys, &flat.query(), 8).unwrap();
    assert!(
        stats.shuffle_skew < 2.0,
        "uniform sampled skew {} should stay near 1",
        stats.shuffle_skew
    );
}

/// Chaos over the salted path: seeded drops/dups/reorders on the Zipf-1.2
/// salted repartition must still recover to the bit-identical reference
/// answer or fail with the typed injected fault — replicated probe tuples
/// and split build keys included.
#[test]
fn chaos_cell_on_salted_repartition() {
    let workload = skewed_workload(KeySkew::Zipf { s: 1.2 });
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    let faults = FaultSpec::quiet(0x5A17)
        .with_drops(0.2)
        .with_dups(0.2)
        .with_reorders(0.3);

    for threads in [1usize, 8] {
        let mut cfg = test_config(DB_WORKERS, JEN_WORKERS);
        cfg.threads = threads;
        cfg.salt_buckets = Some(SALT_BUCKETS);
        cfg.recv_timeout = std::time::Duration::from_secs(10);
        cfg.fault_spec = Some(faults.clone());
        let mut sys = loaded_system(cfg, &workload, FileFormat::Columnar);
        match run(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
        ) {
            Ok(out) => assert_eq!(
                out.result, expected,
                "salted chaos run diverged at {threads} threads"
            ),
            Err(e) => assert!(
                matches!(
                    e,
                    hybrid_common::error::HybridError::FaultInjected { .. }
                        | hybrid_common::error::HybridError::Disconnected { .. }
                ),
                "untyped error from salted chaos run at {threads} threads: {e}"
            ),
        }
    }
}
