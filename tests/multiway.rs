//! Multiway star-join differential grid: every planner must be
//! **observationally identical** to the sequential n-way reference.
//!
//! [`run_star_reference`] evaluates the star query one dimension at a time
//! on a single thread with no shuffles at all — hash-joining whole tables
//! in canonical order. That is the ground truth each grid cell is measured
//! against: for {2, 3} dimensions × {cascade, hypercube, auto} × thread
//! count {1, 8} × both storage formats × salting {off, on}, the run must
//! produce the **bit-identical** result batch (which subsumes the row
//! count, the [`batch_checksum`], and any sorted sample), with spill-file
//! conservation in every cell.
//!
//! Dimension 0's foreign key is deliberately skewed (`KeySkew::SingleKey`
//! on the uncorrelated fraction) so the salted cells are non-vacuous: a
//! pinned assertion checks the hot-key detector actually fires, and
//! salting therefore really re-routes rows — which the bit-identical
//! result then proves harmless.
//!
//! A separate sweep pins the determinism contract: the **full metrics
//! snapshot** — every tuple, byte, and message counter — is
//! thread-count-invariant for each planner × salt config.
//!
//! CI shards the grid via `HYBRID_THREADS` / `HYBRID_MULTIWAY_PLANNER`; a
//! plain `cargo test` runs all cells. Like the chaos soak, a failing cell
//! does not abort its sweep: the whole grid runs, the complete failing-cell
//! list is reported, and `HYBRID_CHAOS_FAIL_LOG` collects it for CI.

mod util;

use std::collections::BTreeMap;

use hybrid_core::{batch_checksum, run_star, run_star_reference, HybridSystem, MultiwayPlanner};
use hybrid_datagen::{KeySkew, Workload, WorkloadSpec};
use hybrid_storage::FileFormat;
use util::{grid_from_env, loaded_system, test_config};

fn thread_grid() -> Vec<usize> {
    grid_from_env("HYBRID_THREADS", &[1, 8])
}

/// Planner axis, CI-shardable via `HYBRID_MULTIWAY_PLANNER`. Unlike the
/// engine's [`MultiwayPlanner::from_env`] (unparseable → auto), a value
/// that parses to nothing here is a CI wiring bug and must fail loudly.
fn planner_grid() -> Vec<MultiwayPlanner> {
    match std::env::var("HYBRID_MULTIWAY_PLANNER").ok().as_deref() {
        None | Some("") => vec![
            MultiwayPlanner::Cascade,
            MultiwayPlanner::Hypercube,
            MultiwayPlanner::Auto,
        ],
        Some(v) => vec![MultiwayPlanner::parse(v)
            .unwrap_or_else(|| panic!("HYBRID_MULTIWAY_PLANNER={v} is not a planner"))],
    }
}

/// The grid workload: the tiny star with a heavy-hitter foreign key on
/// dimension 0, so salted cells exercise the salt path for real.
fn star_workload(dims: usize) -> Workload {
    let mut spec = WorkloadSpec::tiny_star(dims);
    spec.dimensions[0].skew = KeySkew::SingleKey;
    spec.generate().unwrap()
}

fn system(
    workload: &Workload,
    format: FileFormat,
    threads: usize,
    salt_buckets: Option<usize>,
) -> HybridSystem {
    let mut cfg = test_config(3, 4);
    cfg.threads = threads;
    cfg.salt_buckets = salt_buckets;
    loaded_system(cfg, workload, format)
}

fn counter(snapshot: &BTreeMap<String, u64>, name: &str) -> u64 {
    snapshot.get(name).copied().unwrap_or(0)
}

/// Append failing grid cells to `HYBRID_CHAOS_FAIL_LOG` (the shared CI
/// failure artifact — appended, because suites share one file).
fn log_failed_cells(failures: &[(String, String)]) {
    use std::io::Write;
    let Ok(path) = std::env::var("HYBRID_CHAOS_FAIL_LOG") else {
        return;
    };
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            for (cell, msg) in failures {
                let _ = writeln!(f, "{cell}\t{}", msg.replace('\n', " "));
            }
            eprintln!("failing cells appended to {path}");
        }
        Err(e) => eprintln!("could not write failing-cell log {path}: {e}"),
    }
}

/// One dimension count's full differential grid against the sequential
/// n-way reference.
fn assert_star_grid(dims: usize) {
    let workload = star_workload(dims);
    let star = workload.star_query();
    let expected = run_star_reference(&workload.l, &workload.dims, &star).unwrap();
    assert!(expected.num_rows() > 0, "star query must be non-trivial");
    let expected_checksum = batch_checksum(&expected);

    let mut failures: Vec<(String, String)> = Vec::new();
    for planner in planner_grid() {
        for threads in thread_grid() {
            for format in [FileFormat::Columnar, FileFormat::Text] {
                for salt_buckets in [None, Some(4)] {
                    let ctx = format!(
                        "dims={dims} planner={planner} threads={threads} format={format:?} \
                         salt={salt_buckets:?}"
                    );
                    // one bad cell must not hide the rest of the grid
                    let cell = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut sys = system(&workload, format, threads, salt_buckets);
                        let out = run_star(&mut sys, &star, planner).unwrap();
                        assert_eq!(
                            out.result, expected,
                            "{ctx}: result diverged from the n-way reference"
                        );
                        assert_eq!(
                            batch_checksum(&out.result),
                            expected_checksum,
                            "{ctx}: checksum diverged"
                        );
                        assert_eq!(
                            counter(&out.snapshot, "jen.spill.files_created"),
                            counter(&out.snapshot, "jen.spill.files_removed"),
                            "{ctx}: leaked spill run files"
                        );
                        // the skewed FK axis must actually trip the
                        // detector, or the salt axis of this grid is
                        // silently testing nothing
                        if salt_buckets.is_some() {
                            assert!(
                                counter(&out.snapshot, "multiway.salt.hot_keys") >= 1,
                                "{ctx}: salted cell detected no hot keys"
                            );
                        } else {
                            assert_eq!(
                                counter(&out.snapshot, "multiway.salt.hot_keys"),
                                0,
                                "{ctx}: unsalted cell ran the detector"
                            );
                        }
                        let ran = counter(&out.snapshot, "advisor.multiway.ran_hypercube");
                        match planner {
                            MultiwayPlanner::Cascade => assert_eq!(ran, 0, "{ctx}"),
                            MultiwayPlanner::Hypercube => assert_eq!(ran, 1, "{ctx}"),
                            MultiwayPlanner::Auto => assert_eq!(
                                ran,
                                counter(&out.snapshot, "advisor.multiway.chose_hypercube"),
                                "{ctx}: auto must run what the advisor chose"
                            ),
                        }
                    }));
                    if let Err(panic) = cell {
                        let msg = panic
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "non-string panic payload".into());
                        eprintln!("cell {ctx} FAILED: {msg}");
                        failures.push((ctx, msg));
                    }
                }
            }
        }
    }
    if !failures.is_empty() {
        log_failed_cells(&failures);
        let cells: Vec<&str> = failures.iter().map(|(c, _)| c.as_str()).collect();
        panic!(
            "{} multiway grid cell(s) failed: {}",
            failures.len(),
            cells.join(", ")
        );
    }
}

#[test]
fn two_dimension_star_grid_matches_the_reference() {
    assert_star_grid(2);
}

#[test]
fn three_dimension_star_grid_matches_the_reference() {
    assert_star_grid(3);
}

/// The determinism contract extends to multiway: the full metrics
/// snapshot — tuples, bytes, *and* messages — must be identical at any
/// thread count for each planner × salt config.
#[test]
fn multiway_snapshots_are_thread_count_invariant() {
    let workload = star_workload(3);
    let star = workload.star_query();
    for planner in [MultiwayPlanner::Cascade, MultiwayPlanner::Hypercube] {
        for salt_buckets in [None, Some(4)] {
            let mut base_sys = system(&workload, FileFormat::Columnar, 1, salt_buckets);
            let base = run_star(&mut base_sys, &star, planner).unwrap();
            for threads in [2, 8] {
                let mut sys = system(&workload, FileFormat::Columnar, threads, salt_buckets);
                let out = run_star(&mut sys, &star, planner).unwrap();
                assert_eq!(out.result, base.result, "{planner} threads={threads}");
                assert_eq!(
                    out.snapshot, base.snapshot,
                    "{planner} salt={salt_buckets:?}: snapshot varies with threads={threads}"
                );
            }
        }
    }
}

/// The one-dimension degenerate star is exactly a binary join; both
/// planner families must still agree with the reference (the hypercube
/// collapses to a repartition over share vector `[n]`).
#[test]
fn single_dimension_star_degenerates_cleanly() {
    let workload = star_workload(1);
    let star = workload.star_query();
    let expected = run_star_reference(&workload.l, &workload.dims, &star).unwrap();
    assert!(expected.num_rows() > 0);
    for planner in [MultiwayPlanner::Cascade, MultiwayPlanner::Hypercube] {
        let mut sys = system(&workload, FileFormat::Columnar, 1, None);
        let out = run_star(&mut sys, &star, planner).unwrap();
        assert_eq!(out.result, expected, "{planner}");
    }
}

/// Volume non-vacuity: a forced-hypercube run of the 3-dim star must
/// actually move data through the grid — fact routing plus dimension
/// replication — and report it on the `multiway.shuffle.*` meters the
/// bench comparisons are built on.
#[test]
fn hypercube_reports_shuffle_volume() {
    let workload = star_workload(3);
    let star = workload.star_query();
    let mut sys = system(&workload, FileFormat::Columnar, 1, None);
    let out = run_star(&mut sys, &star, MultiwayPlanner::Hypercube).unwrap();
    assert!(counter(&out.snapshot, "multiway.shuffle.tuples") > 0);
    assert!(counter(&out.snapshot, "multiway.shuffle.bytes") > 0);
}
