//! Global-state reuse contract: running queries back-to-back on one
//! `HybridSystem` must be observationally identical to running each on a
//! fresh system — same results, same per-query metric deltas (`run()`
//! resets the registry, so each `RunOutput::snapshot` *is* the delta).
//! Sessions carved off one root system must satisfy the same contract.

use hybrid_common::expr::Expr;
use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridQuery, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::tables::l_cols;
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_storage::FileFormat;

fn system(workload: &Workload) -> HybridSystem {
    let mut cfg = SystemConfig::paper_shape(2, 3);
    cfg.rows_per_block = 1000;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    sys
}

/// The workload query with a tighter HDFS-side predicate (distinct result).
fn variant(w: &Workload, l_cor: i64) -> HybridQuery {
    let mut q = w.query();
    q.hdfs_pred = Expr::col_le(l_cols::COR_PRED, l_cor)
        .and(Expr::col_le(l_cols::IND_PRED, w.thresholds.l_ind));
    q
}

#[test]
fn reused_system_matches_fresh_system_per_query() {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let queries = [w.query(), variant(&w, w.thresholds.l_cor - 1)];
    let mut shared = system(&w);

    for alg in JoinAlgorithm::paper_variants() {
        for query in &queries {
            let reused = run(&mut shared, query, alg).unwrap();
            let fresh = run(&mut system(&w), query, alg).unwrap();
            assert_eq!(
                reused.result, fresh.result,
                "{alg} result differs on a reused system"
            );
            assert_eq!(
                reused.snapshot, fresh.snapshot,
                "{alg} per-query metric delta differs on a reused system"
            );
            assert_eq!(
                reused.result,
                run_reference(&w.t, &w.l, query).unwrap(),
                "{alg} wrong answer"
            );
        }
    }
}

#[test]
fn identical_back_to_back_runs_are_identical() {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let query = w.query();
    let mut sys = system(&w);
    for alg in JoinAlgorithm::paper_variants() {
        let first = run(&mut sys, &query, alg).unwrap();
        let second = run(&mut sys, &query, alg).unwrap();
        assert_eq!(first.result, second.result, "{alg} result drifted");
        assert_eq!(first.snapshot, second.snapshot, "{alg} metrics drifted");
    }
}

#[test]
fn sessions_match_fresh_systems_per_query() {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let root = system(&w);
    let query = w.query();

    for (i, alg) in JoinAlgorithm::paper_variants().into_iter().enumerate() {
        let mut session = root.session(i as u64 + 1).unwrap();
        let out = run(&mut session, &query, alg).unwrap();
        session.close_session();

        let fresh = run(&mut system(&w), &query, alg).unwrap();
        assert_eq!(out.result, fresh.result, "{alg} session result differs");
        assert_eq!(
            out.snapshot, fresh.snapshot,
            "{alg} session metric delta differs"
        );
    }
}
