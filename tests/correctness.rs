//! Cross-crate correctness: every join algorithm, on every storage format,
//! over a generated workload, must produce exactly the single-node
//! reference result — the paper's implicit contract that all five
//! strategies compute the same query.

mod util;

use hybrid_core::reference::run_reference;
use hybrid_core::{run, JoinAlgorithm};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;
use util::{all_algorithms, loaded_system, test_config};

#[test]
fn every_algorithm_matches_reference_on_both_formats() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert!(expected.num_rows() > 0);

    for format in [FileFormat::Columnar, FileFormat::Text] {
        let mut sys = loaded_system(test_config(3, 5), &workload, format);
        for alg in all_algorithms() {
            let out = run(&mut sys, &query, alg).unwrap();
            assert_eq!(out.result, expected, "{alg} diverged on {format}");
        }
    }
}

#[test]
fn selectivity_extremes_still_agree() {
    // very selective predicates on both sides → near-empty intermediates
    for (sigma_t, sigma_l, st, sl) in [(0.01, 0.01, 0.05, 0.05), (1.0, 1.0, 1.0, 1.0)] {
        let spec = WorkloadSpec {
            sigma_t,
            sigma_l,
            st,
            sl,
            ..WorkloadSpec::tiny()
        };
        let workload = spec.generate().unwrap();
        let query = workload.query();
        let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
        let mut sys = loaded_system(test_config(2, 3), &workload, FileFormat::Columnar);
        for alg in all_algorithms() {
            let out = run(&mut sys, &query, alg).unwrap();
            assert_eq!(
                out.result, expected,
                "{alg} diverged at sigma=({sigma_t},{sigma_l})"
            );
        }
    }
}

#[test]
fn asymmetric_cluster_sizes_agree() {
    // more DB workers than JEN workers and vice versa
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    for (db, jen) in [(7, 2), (2, 7)] {
        let mut cfg = test_config(db, jen);
        cfg.rows_per_block = 700;
        let mut sys = loaded_system(cfg, &workload, FileFormat::Columnar);
        for alg in all_algorithms() {
            let out = run(&mut sys, &query, alg).unwrap();
            assert_eq!(out.result, expected, "{alg} diverged on {db}x{jen}");
        }
    }
}

#[test]
fn multi_aggregate_queries_agree() {
    // beyond the paper's count(*): sum/min/max over the joined date column
    use hybrid_common::ops::AggSpec;
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let mut query = workload.query();
    query.aggs = vec![
        AggSpec::Count,
        AggSpec::SumI64(1), // sum of T'.date over joined rows
        AggSpec::MinI64(3), // min of L'.date
        AggSpec::MaxI64(3),
    ];
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(expected.schema().len(), 5);
    let mut sys = loaded_system(test_config(3, 4), &workload, FileFormat::Columnar);
    for alg in all_algorithms() {
        let out = run(&mut sys, &query, alg).unwrap();
        assert_eq!(
            out.result, expected,
            "{alg} diverged on multi-aggregate query"
        );
    }
}

#[test]
fn zigzag_reaccess_strategies_agree() {
    // §3.4: materializing T' and re-accessing it via the covering index
    // must be pure plan alternatives — same answer, different access paths.
    use hybrid_core::ZigzagReaccess;
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let mut results = Vec::new();
    for strategy in [ZigzagReaccess::Materialize, ZigzagReaccess::IndexReaccess] {
        let mut cfg = test_config(3, 4);
        cfg.zigzag_reaccess = strategy;
        let mut sys = loaded_system(cfg, &workload, FileFormat::Columnar);
        let out = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
        assert_eq!(out.result, expected, "{strategy:?} diverged");
        results.push(out);
    }
    // re-access touches the database storage again (the workload's date
    // projection is not index-covered, so the second access is a base-table
    // scan); the materialized plan does not
    let touched = |s: &hybrid_core::JoinSummary| s.db_rows_scanned + s.db_index_rows;
    assert!(
        touched(&results[1].summary) > touched(&results[0].summary),
        "re-access should touch T again: {} vs {}",
        touched(&results[1].summary),
        touched(&results[0].summary)
    );
    // and network volumes are identical either way
    assert_eq!(
        results[0].summary.db_tuples_sent,
        results[1].summary.db_tuples_sent
    );
}

#[test]
fn repeated_runs_are_deterministic() {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let mut sys = loaded_system(test_config(3, 4), &workload, FileFormat::Columnar);
    let a = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
    let b = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
    assert_eq!(a.result, b.result);
    assert_eq!(
        a.summary, b.summary,
        "volume counters must be deterministic"
    );
}
