//! End-to-end tests for the framed-TCP front door: correctness over the
//! wire, tenant quotas and fairness, leak-free disconnects, and the
//! closed-loop soak driver itself — all over real loopback sockets.
//!
//! The suite pins the ISSUE's multi-tenancy contract:
//!   * binary and star results streamed over TCP bit-match the
//!     fresh-system references, across planners and algorithms;
//!   * a tenant past its quota gets the typed, *retryable*
//!     `QuotaExceeded` error frame — and retrying does succeed;
//!   * under a flooding tenant, a trickle tenant's p99 queue wait stays
//!     below the flooder's (weighted fair queuing, not FIFO starvation),
//!     with zero quota rejections for the trickle tenant;
//!   * a client that vanishes mid-stream leaks nothing: no admission
//!     slots, no memory grants, and the per-tenant accounting
//!     conservation law still balances;
//!   * `run_soak` at small scale comes back `clean()` under chaos.

use hybrid_bench::soak::{run_soak, SoakOptions};
use hybrid_bench::svc::variant;
use hybrid_core::reference::{run_reference, run_star_reference};
use hybrid_core::{HybridSystem, JoinAlgorithm, MultiwayPlanner, SystemConfig};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_server::{
    wire, ClientError, ErrorCode, JoinClient, JoinServer, QueryBody, QueryFrame, Request,
    ServerConfig, TenantCred,
};
use hybrid_service::{QueryService, ServiceConfig, TenantQuota};
use hybrid_storage::FileFormat;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tiny star workload behind a bound front door with the given service
/// config and tenant set.
fn front_door(
    service: ServiceConfig,
    tenants: &[TenantCred],
) -> (JoinServer, Arc<QueryService>, Workload) {
    let w = WorkloadSpec::tiny_star(2).generate().unwrap();
    let mut syscfg = SystemConfig::paper_shape(2, 3);
    syscfg.rows_per_block = 1000;
    let mut sys = HybridSystem::new(syscfg).unwrap();
    w.load_into(&mut sys, FileFormat::Columnar).unwrap();
    let svc = Arc::new(QueryService::new(sys, service));
    let server = JoinServer::bind(
        Arc::clone(&svc),
        "127.0.0.1:0",
        tenants,
        ServerConfig::default(),
    )
    .unwrap();
    (server, svc, w)
}

fn one_tenant() -> Vec<TenantCred> {
    vec![TenantCred::new(
        "acme",
        "tok-acme",
        TenantQuota::unlimited(),
    )]
}

/// Wait (bounded) for in-flight work to settle, then assert the service
/// holds no admissions and the governor holds no grants.
fn assert_zero_residency(svc: &QueryService) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.load() != (0, 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(svc.load(), (0, 0), "admission slots leaked");
    assert_eq!(svc.system().mem_pool.reserved(), 0, "memory grants leaked");
}

/// The accounting conservation law, globally: every submission ends in
/// exactly one terminal counter.
fn assert_conservation(svc: &QueryService) {
    let m = svc.metrics();
    let terminal = m.get("svc.completed")
        + m.get("svc.rejected")
        + m.get("svc.quota_rejected")
        + m.get("svc.timed_out")
        + m.get("svc.failed");
    assert_eq!(
        m.get("svc.submitted"),
        terminal,
        "accounting leak: a submission vanished without a terminal counter"
    );
}

#[test]
fn binary_and_star_results_bit_match_over_tcp() {
    let (server, svc, w) = front_door(ServiceConfig::default(), &one_tenant());
    let addr = server.local_addr().to_string();
    let mut client = JoinClient::connect(&addr, "acme", "tok-acme").unwrap();

    // binary: advisor-routed plus two forced algorithms
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();
    for alg in [
        None,
        Some(JoinAlgorithm::Repartition { bloom: true }),
        Some(JoinAlgorithm::Zigzag),
    ] {
        let reply = client.query(w.query(), alg, None).unwrap();
        assert_eq!(reply.rows, expected, "binary result diverged ({alg:?})");
    }

    // star: all three planner routes, same reference
    let star = w.star_query();
    let star_expected = run_star_reference(&w.l, &w.dims, &star).unwrap();
    for planner in [
        MultiwayPlanner::Auto,
        MultiwayPlanner::Cascade,
        MultiwayPlanner::Hypercube,
    ] {
        let reply = client.star(star.clone(), planner, None).unwrap();
        assert_eq!(
            reply.rows, star_expected,
            "star result diverged ({planner:?})"
        );
    }

    drop(client);
    assert_zero_residency(&svc);
    assert_conservation(&svc);
}

#[test]
fn quota_exceeded_is_typed_retryable_and_recoverable_over_the_wire() {
    // one execution slot for the tenant, zero queue depth: any submission
    // while another is running must bounce with the typed quota error
    let tenants = vec![TenantCred::new(
        "acme",
        "tok-acme",
        TenantQuota {
            weight: 1,
            max_in_flight: 1,
            max_queued: 0,
        },
    )];
    let service = ServiceConfig {
        result_cache_capacity: 0, // every query really executes
        ..ServiceConfig::default()
    };
    let (server, svc, w) = front_door(service, &tenants);
    let addr = server.local_addr().to_string();

    // background load on a raw connection: authenticate, then shove a
    // burst of query frames down the socket without reading responses —
    // the handler works through them one at a time, keeping the tenant's
    // single slot occupied
    let mut loader = TcpStream::connect(&addr).unwrap();
    let (ty, payload) = Request::Hello {
        tenant: "acme".into(),
        token: "tok-acme".into(),
    }
    .encode();
    wire::write_frame(&mut loader, ty, &payload).unwrap();
    for i in 0..40u64 {
        let (ty, payload) = Request::Query(QueryFrame {
            id: i,
            deadline_ms: 0,
            body: QueryBody::Binary {
                query: variant(&w, 2000 + i as i64),
                algorithm: Some(JoinAlgorithm::Repartition { bloom: true }),
            },
        })
        .encode();
        wire::write_frame(&mut loader, ty, &payload).unwrap();
    }

    // race distinct queries against the burst until one lands while the
    // loader holds the slot
    let mut client = JoinClient::connect(&addr, "acme", "tok-acme").unwrap();
    let mut saw_quota = false;
    for i in 0..200i64 {
        match client.query(
            variant(&w, 4000 + i),
            Some(JoinAlgorithm::Repartition { bloom: true }),
            None,
        ) {
            Ok(_) => {}
            Err(ClientError::Remote {
                code: ErrorCode::QuotaExceeded,
                retryable,
                message,
            }) => {
                assert!(retryable, "quota errors must be retryable: {message}");
                saw_quota = true;
                break;
            }
            Err(other) => panic!("unexpected error racing the quota: {other}"),
        }
    }
    assert!(
        saw_quota,
        "never observed a quota rejection while the tenant slot was held"
    );
    assert!(
        svc.metrics().get("svc.quota_rejected") > 0,
        "quota rejection must be counted"
    );

    // the error is recoverable: retrying (with the loader drained) succeeds
    drop(loader);
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();
    let reply = loop {
        match client.query(w.query(), None, None) {
            Ok(r) => break r,
            Err(e) if e.retryable() => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("retry after quota error failed hard: {e}"),
        }
    };
    assert_eq!(reply.rows, expected);

    drop(client);
    assert_zero_residency(&svc);
    assert_conservation(&svc);
}

#[test]
fn trickle_tenant_is_not_starved_by_a_flooding_tenant() {
    // single global execution slot so everything contends; fair scheduling
    // must interleave the trickle tenant ahead of the flooder's backlog
    let tenants = vec![
        TenantCred::new("flood", "tok-flood", TenantQuota::unlimited()),
        TenantCred::new("trickle", "tok-trickle", TenantQuota::unlimited()),
    ];
    let service = ServiceConfig {
        max_in_flight: 1,
        max_queued: 64,
        result_cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let (server, svc, w) = front_door(service, &tenants);
    let addr = server.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let seq = Arc::new(AtomicUsize::new(0));
    // four flooding connections running closed-loop distinct queries
    let flooders: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let seq = Arc::clone(&seq);
            let w = w.clone();
            std::thread::spawn(move || {
                let mut c = JoinClient::connect(&addr, "flood", "tok-flood").unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let i = seq.fetch_add(1, Ordering::Relaxed) as i64;
                    let _ = c.query(
                        variant(&w, 2000 + i),
                        Some(JoinAlgorithm::Repartition { bloom: true }),
                        None,
                    );
                }
            })
        })
        .collect();

    // the trickle tenant sends a handful of queries, pausing between them
    let mut trickle = JoinClient::connect(&addr, "trickle", "tok-trickle").unwrap();
    for i in 0..10i64 {
        trickle
            .query(
                variant(&w, 6000 + i),
                Some(JoinAlgorithm::Repartition { bloom: true }),
                None,
            )
            .expect("trickle tenant queries must not fail under flood");
        std::thread::sleep(Duration::from_millis(30));
    }
    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }

    let queues = svc.tenant_queue_histograms();
    let t_p99 = queues.get("trickle").map(|h| h.p99()).unwrap_or(0);
    let f_p99 = queues.get("flood").map(|h| h.p99()).unwrap_or(0);
    assert!(
        t_p99 <= f_p99,
        "fair scheduling must bound the trickle tenant's queue wait: \
         trickle p99 {t_p99}us > flood p99 {f_p99}us"
    );
    assert_eq!(
        svc.metrics().get("svc.tenant.trickle.quota_rejected"),
        0,
        "the trickle tenant must see zero quota rejections"
    );
    assert_eq!(
        svc.metrics().get("svc.tenant.trickle.completed"),
        10,
        "every trickle query must complete"
    );

    drop(trickle);
    assert_zero_residency(&svc);
    assert_conservation(&svc);
}

#[test]
fn vanished_client_releases_slot_grant_and_namespace() {
    let service = ServiceConfig {
        result_cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let (server, svc, w) = front_door(service, &one_tenant());
    let addr = server.local_addr().to_string();

    // several clients authenticate, fire an uncached query, and vanish
    // without reading a single response byte
    for i in 0..5i64 {
        let mut s = TcpStream::connect(&addr).unwrap();
        let (ty, payload) = Request::Hello {
            tenant: "acme".into(),
            token: "tok-acme".into(),
        }
        .encode();
        wire::write_frame(&mut s, ty, &payload).unwrap();
        let (ty, payload) = Request::Query(QueryFrame {
            id: i as u64,
            deadline_ms: 0,
            body: QueryBody::Binary {
                query: variant(&w, 3000 + i),
                algorithm: None,
            },
        })
        .encode();
        wire::write_frame(&mut s, ty, &payload).unwrap();
        drop(s); // gone before the stream starts
    }

    // the server must finish (or abandon) the orphans and release every
    // slot, grant, and session on its own
    assert_zero_residency(&svc);
    assert_conservation(&svc);

    // and still serve correct results afterwards
    let mut client = JoinClient::connect(&addr, "acme", "tok-acme").unwrap();
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();
    let reply = client.query(w.query(), None, None).unwrap();
    assert_eq!(reply.rows, expected);
    drop(server);
}

#[test]
fn small_soak_under_chaos_comes_back_clean() {
    let mut syscfg = SystemConfig::paper_shape(2, 3);
    syscfg.rows_per_block = 1000;
    let opts = SoakOptions {
        tenants: 2,
        clients_per_tenant: 2,
        queries: 60,
        verify_every: 2,
        star_every: 6,
        disconnect_every: 19,
        deadline_ms: 30_000, // exercises the deadline path, far above SLO
        fault_rate: 0.02,
        chaos_seed: 11,
        ..SoakOptions::default()
    };
    let report = run_soak(WorkloadSpec::tiny_star(2), syscfg, &opts).unwrap();
    assert!(report.verified > 0, "the soak must verify a sample");
    assert!(report.disconnects > 0, "the soak must exercise disconnects");
    assert_eq!(report.incorrect, 0, "soak returned incorrect results");
    assert!(
        report.leaks.is_empty(),
        "soak leak audit failed: {:?}",
        report.leaks
    );
    for t in &report.per_tenant {
        assert!(t.submitted > 0, "tenant {} never submitted", t.name);
    }
}
