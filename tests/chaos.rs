//! The chaos soak: seeded fault injection across every join algorithm and
//! both execution modes.
//!
//! Each seed derives a fault mix (drops, duplicates, delays, reorders,
//! worker kills, stragglers) through [`FaultSpec::from_seed`]; the fabric
//! and driver inject those faults deterministically — decisions are pure
//! hashes of `(seed, namespace, edge, stream, sequence, attempt)`, never
//! of wall-clock or thread schedule — so any failure replays from its
//! printed seed alone:
//!
//! ```text
//! HYBRID_CHAOS_SEED=<seed> cargo test -q --test chaos
//! ```
//!
//! The contract, for every `(seed, algorithm, thread-count)` cell:
//!
//! * the run either returns the **bit-identical** reference answer (faults
//!   recovered by retry/backoff and receiver-side dedup), or
//! * fails with a **typed** error naming the injected fault
//!   ([`HybridError::FaultInjected`] / [`HybridError::Disconnected`]) —
//!   never a generic timeout, never a secondary `Cancelled`;
//! * and it always terminates: a hard watchdog converts any hang into a
//!   failure carrying the seed.
//!
//! Seed count: `HYBRID_CHAOS_SEEDS` (defaults to 6 in debug builds, 50 in
//! release — the CI soak runs release). `HYBRID_CHAOS_SEED` pins one seed
//! for replay.

use hybrid_common::error::HybridError;
use hybrid_common::hash::splitmix64;
use hybrid_core::reference::run_reference;
use hybrid_core::{
    run, run_adaptive, run_star, run_star_reference, sample_stats, FaultSpec, FaultTarget,
    HybridQuery, HybridSystem, JoinAlgorithm, MultiwayPlanner, QueryEstimates, SystemConfig,
};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_service::{QueryRequest, QueryService, ServiceConfig};
use hybrid_storage::FileFormat;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const DB_WORKERS: usize = 3;
const JEN_WORKERS: usize = 4;

/// Any cell exceeding this is a hang, reported with its seed. Generous:
/// a healthy cell runs in well under a second.
const WATCHDOG: Duration = Duration::from_secs(60);

fn small_workload() -> Workload {
    let mut spec = WorkloadSpec::tiny();
    spec.t_rows = 400;
    spec.l_rows = 1600;
    spec.generate().unwrap()
}

/// The seven production algorithms (PERF is the paper's measured-baseline
/// extra; its positional streams are excluded from reordering by
/// construction, so the soak sticks to the paper set + semi-join).
fn all_algorithms() -> [JoinAlgorithm; 7] {
    [
        JoinAlgorithm::DbSide { bloom: false },
        JoinAlgorithm::DbSide { bloom: true },
        JoinAlgorithm::Broadcast,
        JoinAlgorithm::Repartition { bloom: false },
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::SemiJoin,
    ]
}

fn chaos_config(threads: usize, faults: FaultSpec) -> SystemConfig {
    let mut cfg = SystemConfig::paper_shape(DB_WORKERS, JEN_WORKERS);
    cfg.rows_per_block = 100;
    cfg.threads = threads;
    cfg.recv_timeout = Duration::from_secs(10);
    cfg.fault_spec = Some(faults);
    cfg
}

fn soak_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("HYBRID_CHAOS_SEED") {
        return vec![s.parse().expect("HYBRID_CHAOS_SEED must be a u64")];
    }
    let default = if cfg!(debug_assertions) { 6 } else { 50 };
    let n: u64 = std::env::var("HYBRID_CHAOS_SEEDS")
        .ok()
        .map(|v| v.parse().expect("HYBRID_CHAOS_SEEDS must be a u64"))
        .unwrap_or(default);
    (0..n).collect()
}

fn thread_counts() -> Vec<usize> {
    match std::env::var("HYBRID_THREADS") {
        Ok(v) => vec![v.parse().expect("HYBRID_THREADS must be a usize")],
        Err(_) => vec![1, 8],
    }
}

/// Derive one seed's fault mix: the rate-based classes come from
/// [`FaultSpec::from_seed`]; on top, every fourth seed kills a worker at a
/// seed-chosen step and a disjoint quarter slows one JEN worker into a
/// straggler. Kill steps past a worker's last step simply never fire —
/// those cells double as plain fault-mix runs.
fn mix_for(seed: u64) -> FaultSpec {
    let mut spec = FaultSpec::from_seed(seed, 0.08);
    let h = splitmix64(seed ^ 0xFA17_FA17);
    match h % 4 {
        0 => {
            let target = if h & 16 == 0 {
                FaultTarget::Jen
            } else {
                FaultTarget::Db
            };
            let workers = match target {
                FaultTarget::Jen => JEN_WORKERS,
                FaultTarget::Db => DB_WORKERS,
            };
            let worker = (splitmix64(h) % workers as u64) as usize;
            let step = (splitmix64(h ^ 1) % 6) as usize;
            spec = spec.with_kill(target, worker, step);
        }
        1 => {
            let worker = (splitmix64(h ^ 2) % JEN_WORKERS as u64) as usize;
            spec = spec.with_straggler(FaultTarget::Jen, worker, Duration::from_micros(300));
        }
        _ => {}
    }
    spec
}

/// Run every algorithm on one `(seed, threads)` system under a watchdog.
/// The executing thread owns the system; the test thread only waits with
/// a timeout, so a hung cell becomes a failed assertion naming its seed
/// instead of a stuck test binary.
fn run_all_with_watchdog(
    workload: Arc<Workload>,
    threads: usize,
    faults: FaultSpec,
    seed: u64,
) -> Vec<(
    JoinAlgorithm,
    Result<hybrid_common::batch::Batch, HybridError>,
)> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut sys = HybridSystem::new(chaos_config(threads, faults)).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let query = workload.query();
        for alg in all_algorithms() {
            let outcome = run(&mut sys, &query, alg).map(|o| o.result);
            if tx.send((alg, outcome)).is_err() {
                return; // watchdog already fired; stop wasting the CPU
            }
        }
    });
    let total = all_algorithms().len();
    let mut out = Vec::with_capacity(total);
    for done in 0..total {
        match rx.recv_timeout(WATCHDOG) {
            Ok(pair) => out.push(pair),
            Err(_) => panic!(
                "seed {seed}: algorithm {done}/{total} at {threads} threads hung past \
                 {WATCHDOG:?} (or its runner died) — replay with HYBRID_CHAOS_SEED={seed}"
            ),
        }
    }
    out
}

fn assert_typed(e: &HybridError, seed: u64, alg: JoinAlgorithm, threads: usize) {
    assert!(
        matches!(
            e,
            HybridError::FaultInjected { .. } | HybridError::Disconnected { .. }
        ),
        "seed {seed}: {alg} at {threads} threads surfaced an untyped error: {e} — \
         replay with HYBRID_CHAOS_SEED={seed}"
    );
}

/// The headline soak: N seeds × 7 algorithms × threads {1, 8}, each cell
/// under its seed's fault mix. Bit-match or typed error, never a hang.
///
/// A failing seed does **not** abort the sweep: every seed runs, failures
/// are collected, and the test reports the complete list of failing
/// `HYBRID_CHAOS_SEED` values at the end — so one bad seed can no longer
/// hide the others. When `HYBRID_CHAOS_FAIL_LOG` names a file, the failing
/// seeds (one per line) are also written there for CI to upload.
#[test]
fn chaos_soak_any_schedule_correctness() {
    let workload = Arc::new(small_workload());
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert!(expected.num_rows() > 0, "soak query must be non-trivial");

    let mut failures: Vec<(u64, String)> = Vec::new();
    for seed in soak_seeds() {
        let faults = mix_for(seed);
        let seed_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for threads in thread_counts() {
                let outcomes =
                    run_all_with_watchdog(Arc::clone(&workload), threads, faults.clone(), seed);
                for (alg, res) in outcomes {
                    match res {
                        Ok(result) => assert_eq!(
                            result, expected,
                            "seed {seed}: {alg} at {threads} threads returned a wrong answer — \
                             replay with HYBRID_CHAOS_SEED={seed}"
                        ),
                        Err(e) => assert_typed(&e, seed, alg, threads),
                    }
                }
            }
        }));
        if let Err(panic) = seed_outcome {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("seed {seed} FAILED: {msg}");
            failures.push((seed, msg));
        }
    }

    if failures.is_empty() {
        return;
    }
    let seeds: Vec<String> = failures.iter().map(|(s, _)| s.to_string()).collect();
    if let Ok(path) = std::env::var("HYBRID_CHAOS_FAIL_LOG") {
        let mut log = String::new();
        for (seed, msg) in &failures {
            log.push_str(&format!("{seed}\t{}\n", msg.replace('\n', " ")));
        }
        if let Err(e) = std::fs::write(&path, log) {
            eprintln!("could not write failing-seed log {path}: {e}");
        } else {
            eprintln!("failing seeds written to {path}");
        }
    }
    panic!(
        "{} of {} seed(s) failed: {} — replay each with \
         HYBRID_CHAOS_SEED=<seed> cargo test -q --release --test chaos",
        failures.len(),
        soak_seeds().len(),
        seeds.join(", ")
    );
}

/// Replay determinism: the whole point of seeding. Two fresh systems under
/// the same seed must produce identical outcomes — same result batch, same
/// metric totals (chaos counters included), or the same typed error.
/// Sequential mode, where even the metric totals are schedule-free.
#[test]
fn same_seed_replays_identically() {
    let workload = small_workload();
    let query = workload.query();
    let faults = FaultSpec::quiet(0xD5)
        .with_drops(0.25)
        .with_dups(0.2)
        .with_reorders(0.3)
        .with_delays(0.1, Duration::from_micros(200));

    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut sys = HybridSystem::new(chaos_config(1, faults.clone())).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let per_alg: Vec<_> = all_algorithms()
            .into_iter()
            .map(|alg| {
                (
                    alg,
                    run(&mut sys, &query, alg).map(|o| (o.result, o.snapshot)),
                )
            })
            .collect();
        runs.push(per_alg);
    }
    let second = runs.pop().unwrap();
    let first = runs.pop().unwrap();
    for ((alg, a), (_, b)) in first.into_iter().zip(second) {
        match (a, b) {
            (Ok((res_a, snap_a)), Ok((res_b, snap_b))) => {
                assert_eq!(res_a, res_b, "{alg}: results diverged across replays");
                assert_eq!(
                    snap_a, snap_b,
                    "{alg}: metric totals diverged across replays"
                );
            }
            (Err(ea), Err(eb)) => {
                assert_eq!(ea, eb, "{alg}: errors diverged across replays")
            }
            (a, b) => panic!("{alg}: outcome class diverged across replays: {a:?} vs {b:?}"),
        }
    }
}

/// An injected worker kill must surface as the typed disconnection naming
/// the dead worker — in both execution modes — and leave the system
/// reusable: the next run on the same system (kill re-fires) fails the
/// same way rather than hanging or corrupting state.
#[test]
fn injected_kill_is_typed_in_both_execution_modes() {
    let workload = small_workload();
    let query = workload.query();
    for threads in [1, 8] {
        let faults = FaultSpec::quiet(1).with_kill(FaultTarget::Jen, 1, 1);
        let mut sys = HybridSystem::new(chaos_config(threads, faults)).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        for round in 0..2 {
            let err = run(
                &mut sys,
                &query,
                JoinAlgorithm::Repartition { bloom: false },
            )
            .unwrap_err();
            assert_eq!(
                err,
                HybridError::Disconnected {
                    endpoint: "jen-worker-1".into(),
                    stream: None,
                },
                "threads={threads} round={round}"
            );
        }
    }
}

/// Kill a JEN worker between the grace join's spill-write (build step) and
/// spill-read (probe step): the failure must be typed AND every spill
/// partition file written must be removed when the run unwinds — the
/// `files_created == files_removed` pair is the no-orphans invariant.
#[test]
fn kill_at_spill_boundary_leaves_no_orphaned_partitions() {
    let workload = small_workload();
    let query = workload.query();
    // Repartition JEN step ordinals: 0 = scan+shuffle, 1 = recv+build
    // (spill-write happens here), 2 = probe (spill-read) — the kill lands
    // exactly on the boundary.
    let faults = FaultSpec::quiet(2).with_kill(FaultTarget::Jen, 0, 2);
    let mut cfg = chaos_config(1, faults);
    cfg.jen_memory_limit_rows = Some(64);
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();

    let err = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap_err();
    assert_eq!(
        err,
        HybridError::Disconnected {
            endpoint: "jen-worker-0".into(),
            stream: None,
        }
    );
    let created = sys.metrics.get("jen.spill.files_created");
    let removed = sys.metrics.get("jen.spill.files_removed");
    assert!(created > 0, "the kill must land after real spill activity");
    assert_eq!(
        created,
        removed,
        "killed run orphaned {} spill partition file(s)",
        created - removed
    );
}

/// Chaos over the batched fabric: the recovery guarantees are
/// framing-independent. Under a drop/dup/reorder mix, every batch framing
/// — one-row replay, an odd non-divisor size, and the default — must
/// bit-match the reference or fail with the typed injected fault, and a
/// duplicated *batch* message must be deduped by the receiver exactly like
/// a duplicated tuple message (the `(sender, stream, seq)` key never
/// inspects the payload).
#[test]
fn chaos_on_batched_fabric_is_framing_independent() {
    let workload = small_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    let faults = FaultSpec::quiet(0xBA7C)
        .with_drops(0.2)
        .with_dups(0.25)
        .with_reorders(0.3);

    for batch_rows in [1usize, 7, 4096] {
        for threads in [1usize, 8] {
            let mut cfg = chaos_config(threads, faults.clone());
            cfg.batch_rows = batch_rows;
            let mut sys = HybridSystem::new(cfg).unwrap();
            workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
            for alg in [
                JoinAlgorithm::Repartition { bloom: false },
                JoinAlgorithm::Zigzag,
            ] {
                match run(&mut sys, &query, alg) {
                    Ok(out) => assert_eq!(
                        out.result, expected,
                        "{alg} diverged at batch_rows={batch_rows}, {threads} threads"
                    ),
                    Err(e) => assert!(
                        matches!(
                            e,
                            HybridError::FaultInjected { .. } | HybridError::Disconnected { .. }
                        ),
                        "untyped error at batch_rows={batch_rows}, {threads} threads: {e}"
                    ),
                }
            }
            let duplicated = sys.metrics.get("net.chaos.duplicated");
            let deduped = sys.metrics.get("net.chaos.deduped");
            assert!(
                duplicated > 0,
                "the 25% dup rate must inject at batch_rows={batch_rows}"
            );
            assert!(
                deduped > 0 && deduped <= duplicated,
                "duplicated batches must be receiver-deduped like duplicated \
                 tuples at batch_rows={batch_rows}: {deduped}/{duplicated}"
            );
        }
    }
}

/// The spill no-orphans invariant at a non-default batch framing: killing
/// the worker between spill-write and spill-read with 7-row batches on the
/// wire must still remove every partition file it created.
#[test]
fn batched_kill_at_spill_boundary_leaves_no_orphans() {
    let workload = small_workload();
    let query = workload.query();
    let faults = FaultSpec::quiet(2).with_kill(FaultTarget::Jen, 0, 2);
    let mut cfg = chaos_config(1, faults);
    cfg.batch_rows = 7;
    cfg.jen_memory_limit_rows = Some(64);
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();

    let err = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap_err();
    assert_eq!(
        err,
        HybridError::Disconnected {
            endpoint: "jen-worker-0".into(),
            stream: None,
        }
    );
    let created = sys.metrics.get("jen.spill.files_created");
    let removed = sys.metrics.get("jen.spill.files_removed");
    assert!(created > 0, "the kill must land after real spill activity");
    assert_eq!(
        created,
        removed,
        "batched killed run orphaned {} spill partition file(s)",
        created - removed
    );
}

/// The no-orphans invariant on the governor's *dynamic* eviction path: a
/// byte budget (not a row limit) makes the hybrid join evict partitions
/// under pressure mid-build, and the kill lands on the evict/re-read
/// boundary. The unwind must remove every spill run file AND hand back
/// every byte of the residency ledger and pool reservation.
#[test]
fn kill_at_eviction_boundary_drains_ledger_and_files() {
    let workload = small_workload();
    let query = workload.query();
    let faults = FaultSpec::quiet(2).with_kill(FaultTarget::Jen, 0, 2);
    let mut cfg = chaos_config(1, faults);
    // ~26 KB of L' against an 8 KB pool: every worker must evict
    cfg.mem_budget_bytes = Some(8 << 10);
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();

    let err = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap_err();
    assert_eq!(
        err,
        HybridError::Disconnected {
            endpoint: "jen-worker-0".into(),
            stream: None,
        }
    );
    assert!(
        sys.metrics.get("mem.evictions") > 0,
        "the kill must land after dynamic evictions, or this cell tests \
         the same boundary as the row-limit variants"
    );
    let created = sys.metrics.get("jen.spill.files_created");
    let removed = sys.metrics.get("jen.spill.files_removed");
    assert!(created > 0, "evictions must have written spill runs");
    assert_eq!(
        created,
        removed,
        "killed budgeted run orphaned {} spill file(s)",
        created - removed
    );
    assert_eq!(
        sys.mem_pool.used(),
        0,
        "killed run left resident bytes in the pool ledger"
    );
}

/// Coordinator-level recovery: the service re-admits a failed query in a
/// fresh session namespace, where the seeded plan rolls fresh per-delivery
/// decisions. Under a drop-heavy mix, submissions either recover to the
/// exact reference answer or exhaust their retries with the typed injected
/// fault — and the `svc.retries` counter proves recovery actually ran.
#[test]
fn service_retries_recover_injected_drops() {
    let workload = small_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let faults = FaultSpec::quiet(3).with_drops(0.35);
    let mut sys = HybridSystem::new(chaos_config(1, faults)).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    let service = QueryService::new(
        sys,
        ServiceConfig {
            result_cache_capacity: 0, // every submission must execute
            query_retries: 3,
            ..ServiceConfig::default()
        },
    );

    let submissions = 8;
    let mut completed = 0u64;
    for _ in 0..submissions {
        match service.submit(&QueryRequest::new(query.clone())) {
            Ok(resp) => {
                assert_eq!(
                    *resp.result, expected,
                    "a recovered query must still return the exact answer"
                );
                completed += 1;
            }
            Err(hybrid_service::ServiceError::Exec(e)) => {
                assert!(
                    matches!(
                        e,
                        HybridError::FaultInjected { .. } | HybridError::Disconnected { .. }
                    ),
                    "exhausted retries must surface the typed fault, got {e}"
                );
            }
            Err(other) => panic!("unexpected service error: {other}"),
        }
    }
    let m = service.metrics();
    assert_eq!(
        m.get("svc.completed") + m.get("svc.failed"),
        submissions,
        "every submission must resolve"
    );
    assert!(completed > 0, "at least one submission must recover");
    assert!(
        m.get("svc.retries") > 0,
        "a 35% drop rate must force at least one coordinator retry"
    );
}

/// The conservation law under retransmission and reordering: for every
/// fabric-carried counter — including the injected duplicates themselves —
/// the root registry's total must equal the exact sum over the per-session
/// snapshots. Any gap is silent data loss or double-metering.
#[test]
fn conservation_law_holds_under_duplication_and_reordering() {
    let workload = small_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let faults = FaultSpec::quiet(11).with_dups(0.5).with_reorders(0.5);
    let mut sys = HybridSystem::new(chaos_config(1, faults)).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    let service = QueryService::new(
        sys,
        ServiceConfig {
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );

    let mut snapshots = Vec::new();
    for _ in 0..4 {
        let resp = service.submit(&QueryRequest::new(query.clone())).unwrap();
        assert_eq!(*resp.result, expected);
        snapshots.push(resp.snapshot.expect("executions carry a snapshot"));
    }
    let root = service.metrics();
    for name in [
        "net.cross.bytes",
        "net.cross.msgs",
        "net.chaos.duplicated",
        "net.chaos.reordered",
        "net.chaos.deduped",
    ] {
        let session_sum: u64 = snapshots
            .iter()
            .map(|s| s.get(name).copied().unwrap_or(0))
            .sum();
        assert_eq!(
            root.get(name),
            session_sum,
            "conservation law violated for {name}"
        );
    }
    assert!(
        root.get("net.chaos.duplicated") > 0 && root.get("net.chaos.reordered") > 0,
        "the 50% mix must actually inject faults"
    );
    // A duplicate is deduped only if its receiver reads past it; dups that
    // land after a stream was fully taken are simply purged with the
    // session, so dedups can trail the injected count — never exceed it.
    assert!(
        root.get("net.chaos.deduped") > 0,
        "receivers must observe and dedup retransmissions"
    );
    assert!(
        root.get("net.chaos.deduped") <= root.get("net.chaos.duplicated"),
        "more dedups than injected duplicates"
    );
}

/// The mis-estimable workload for the replan chaos cells: join-key
/// selectivity 0.05 makes a Bloom-consuming restart decisively cheaper,
/// so corrupted estimates (`SL' = ST' = 1`) reliably trigger a replan at
/// the observation point.
fn replan_workload() -> Workload {
    let mut spec = WorkloadSpec::tiny();
    spec.t_rows = 400;
    spec.l_rows = 1600;
    spec.sl = 0.05;
    spec.generate().unwrap()
}

/// Honest sampled estimates with the join-key selectivities corrupted to
/// 1.0 — the same deliberate mis-estimate the adaptive differential suite
/// and `bench_baseline` pin, guaranteeing the observation point fires.
fn corrupted_estimates(sys: &HybridSystem, query: &HybridQuery) -> QueryEstimates {
    let mut est = sample_stats(sys, query, 8).unwrap().to_estimates(
        query,
        sys.config.jen_workers,
        sys.mem_budget_per_worker(),
    );
    est.st = 1.0;
    est.sl = 1.0;
    est
}

/// Kills landing exactly on the replan machinery's seams: at the
/// observation point's input steps (prescan scan on either cluster) and
/// inside the restarted plan after the replan decision. Every cell must
/// surface the typed kill or the bit-identical answer — and either way
/// leave no orphaned spill files and no leaked memory grant.
#[test]
fn kill_at_observation_point_and_mid_replan_restart_is_leak_free() {
    let workload = replan_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    let alg = JoinAlgorithm::Repartition { bloom: false };

    // Step ordinals count per task-set *per run_pair*: the prescan is one
    // pair (jen ordinal 0 = the observed scan), the restarted plan is a
    // second pair whose ordinals restart at 0 — so ordinal 0 kills land in
    // the prescan and ordinals ≥ 1 can only fire mid-restart.
    let cells: [(&str, FaultTarget, usize, usize); 6] = [
        ("jen killed at the observation scan", FaultTarget::Jen, 0, 0),
        ("db killed at the prescan scan", FaultTarget::Db, 0, 0),
        (
            "jen killed mid-restart (BF_H merge)",
            FaultTarget::Jen,
            1,
            1,
        ),
        (
            "jen killed mid-restart (recv/build)",
            FaultTarget::Jen,
            0,
            2,
        ),
        ("db killed mid-restart", FaultTarget::Db, 1, 1),
        // Ordinal 3 is the restarted plan's probe: every worker has
        // already built (and under the tiny budget, spilled) — the kill
        // unwinds workers still holding spill runs on disk.
        (
            "jen killed at the spill-probe boundary",
            FaultTarget::Jen,
            2,
            3,
        ),
    ];
    let mut spilled_any = false;
    for (label, target, worker, step) in cells {
        let faults = FaultSpec::quiet(3).with_kill(target, worker, step);
        let mut cfg = chaos_config(1, faults);
        cfg.replan_threshold = Some(1.5);
        // A tiny build budget makes the restarted plan spill, so the
        // no-orphans invariant is exercised on the abandoned-and-restarted
        // path, not vacuously true.
        cfg.jen_memory_limit_rows = Some(8);
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let est = corrupted_estimates(&sys, &query);

        match run_adaptive(&mut sys, &query, alg, &est) {
            Ok(out) => assert_eq!(out.result, expected, "{label}: survived run diverged"),
            Err(e) => {
                let endpoint = format!("{}-worker-{worker}", target.label());
                assert_eq!(
                    e,
                    HybridError::Disconnected {
                        endpoint,
                        stream: None,
                    },
                    "{label}: kill surfaced untyped"
                );
            }
        }
        if step == 0 {
            assert_eq!(
                sys.metrics.get("advisor.replans"),
                0,
                "{label}: a kill before the observation point cannot have replanned"
            );
        } else {
            assert_eq!(
                sys.metrics.get("advisor.replans"),
                1,
                "{label}: the kill must land after the replan decision"
            );
        }
        let created = sys.metrics.get("jen.spill.files_created");
        let removed = sys.metrics.get("jen.spill.files_removed");
        assert_eq!(
            created,
            removed,
            "{label}: orphaned {} spill partition file(s)",
            created - removed
        );
        spilled_any |= created > 0;
        assert_eq!(
            sys.mem_pool.used(),
            0,
            "{label}: abandoned plan leaked a memory grant"
        );
    }
    assert!(
        spilled_any,
        "at least one cell must exercise real spill activity"
    );
}

/// Message drops landing on the observation point's own traffic: a
/// Bloom-using plan's prescan multicasts `BF_DB` across the fabric, so a
/// drop plan stresses exactly the streams the controller's observation
/// depends on. Typed-or-bit-match, and the replan counters must stay
/// coherent (a drop can never fake a replan).
#[test]
fn dropped_observation_traffic_is_typed_or_recovered() {
    let workload = replan_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    for seed in [5u64, 23, 71] {
        let faults = FaultSpec::quiet(seed).with_drops(0.3);
        let mut cfg = chaos_config(1, faults);
        cfg.replan_threshold = Some(1.5);
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let est = corrupted_estimates(&sys, &query);

        match run_adaptive(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: true },
            &est,
        ) {
            Ok(out) => assert_eq!(out.result, expected, "seed {seed}: recovered run diverged"),
            Err(e) => assert_typed(&e, seed, JoinAlgorithm::Repartition { bloom: true }, 1),
        }
        assert!(
            sys.metrics.get("advisor.replans") <= 1,
            "seed {seed}: replans must stay structurally ≤ 1"
        );
        assert_eq!(
            sys.metrics.get("jen.spill.files_created"),
            sys.metrics.get("jen.spill.files_removed"),
            "seed {seed}: dropped-traffic run orphaned spill files"
        );
    }
}

/// The fabric conservation law survives mid-query replans: a restarted
/// plan runs in a *sub*-namespace of its session, and every byte/message
/// it moves must still be double-entered into both the session snapshot
/// and the root totals — root = Σ sessions, replans included. Each
/// session here provably replans (corrupted estimates) under a 50%
/// duplication + reordering mix.
#[test]
fn conservation_law_survives_mid_query_replans() {
    let workload = replan_workload();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let faults = FaultSpec::quiet(17).with_dups(0.5).with_reorders(0.5);
    let mut cfg = chaos_config(1, faults);
    cfg.replan_threshold = Some(1.5);
    let mut root = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut root, FileFormat::Columnar).unwrap();
    let est = corrupted_estimates(&root, &query);

    let mut snapshots = Vec::new();
    for i in 0..4u64 {
        let mut session = root.session(i + 1).unwrap();
        let out = run_adaptive(
            &mut session,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
            &est,
        )
        .unwrap();
        assert_eq!(out.result, expected, "session {i}: replanned run diverged");
        assert_eq!(
            session.metrics.get("advisor.replans"),
            1,
            "session {i}: the mis-estimate must force a replan"
        );
        session.close_session();
        snapshots.push(out.snapshot);
    }

    let root_metrics = &root.metrics;
    for name in [
        "net.cross.bytes",
        "net.cross.msgs",
        "net.chaos.duplicated",
        "net.chaos.reordered",
        "net.chaos.deduped",
    ] {
        let session_sum: u64 = snapshots
            .iter()
            .map(|s| s.get(name).copied().unwrap_or(0))
            .sum();
        assert_eq!(
            root_metrics.get(name),
            session_sum,
            "conservation law violated for {name} across replanned sessions"
        );
    }
    assert!(
        root_metrics.get("net.chaos.duplicated") > 0,
        "the 50% mix must actually inject faults into the replanned runs"
    );
}

// ---------------------------------------------------------------------------
// multiway chaos: kills and conservation across the star-join planners
// ---------------------------------------------------------------------------

/// A small 3-dimension star for the multiway chaos cells.
fn star_chaos_workload() -> Workload {
    let mut spec = WorkloadSpec::tiny_star(3);
    spec.l_rows = 1600;
    spec.generate().unwrap()
}

/// Kills landing on the multiway executors' seams. Per-set step ordinals
/// (the driver fires a kill *before* the victim's k-th step):
///
/// * cascade JEN: 0 = fact scan, then per join step `i` the pair
///   `1+2i` = `cur` re-shuffle (a no-op slot on broadcast steps — ordinals
///   are mode-independent by construction) and `2+2i` = recv/build/probe,
///   then finalize and the aggregation epilogue;
/// * cascade DB: ordinal `i` = dimension `i`'s send;
/// * hypercube JEN: 0 = scan + grid routing, 1 = recv/build/probe/finalize;
/// * hypercube DB: 0 = all axis replication sends.
///
/// Every cell must surface the typed kill — on the first run AND on a
/// retry of the same query on the same system — and leave no orphaned
/// spill file and no resident pool bytes behind.
#[test]
fn multiway_kills_are_typed_and_leak_free() {
    let workload = star_chaos_workload();
    let star = workload.star_query();

    let cells: [(&str, MultiwayPlanner, FaultTarget, usize, usize); 5] = [
        (
            "jen killed at the mid-cascade step boundary",
            MultiwayPlanner::Cascade,
            FaultTarget::Jen,
            0,
            3,
        ),
        (
            "db killed between cascade dimension sends",
            MultiwayPlanner::Cascade,
            FaultTarget::Db,
            1,
            1,
        ),
        (
            "jen killed at the hypercube routing boundary",
            MultiwayPlanner::Hypercube,
            FaultTarget::Jen,
            2,
            1,
        ),
        (
            "db killed at hypercube axis replication",
            MultiwayPlanner::Hypercube,
            FaultTarget::Db,
            0,
            0,
        ),
        (
            "jen killed after the hypercube probe",
            MultiwayPlanner::Hypercube,
            FaultTarget::Jen,
            1,
            2,
        ),
    ];
    let mut spilled_any = false;
    for (label, planner, target, worker, step) in cells {
        let faults = FaultSpec::quiet(5).with_kill(target, worker, step);
        let mut cfg = chaos_config(1, faults);
        // a row limit forces the star builds through the spilling grace
        // path and a small pool puts real bytes in the residency ledger,
        // so the no-orphans and no-leak checks are non-vacuous
        cfg.jen_memory_limit_rows = Some(64);
        cfg.mem_budget_bytes = Some(8 << 10);
        let mut sys = HybridSystem::new(cfg).unwrap();
        workload.load_into(&mut sys, FileFormat::Columnar).unwrap();

        // the retry round reruns the killed query on the same system: it
        // must fail typed again from a cleanly unwound first attempt
        for round in 0..2 {
            let err = run_star(&mut sys, &star, planner).unwrap_err();
            assert_eq!(
                err,
                HybridError::Disconnected {
                    endpoint: format!("{}-worker-{worker}", target.label()),
                    stream: None,
                },
                "{label}: round {round} kill surfaced untyped"
            );
        }
        let created = sys.metrics.get("jen.spill.files_created");
        let removed = sys.metrics.get("jen.spill.files_removed");
        assert_eq!(
            created,
            removed,
            "{label}: orphaned {} spill run file(s)",
            created - removed
        );
        spilled_any |= created > 0;
        assert_eq!(
            sys.mem_pool.used(),
            0,
            "{label}: killed run left resident bytes in the pool ledger"
        );
    }
    assert!(
        spilled_any,
        "at least one multiway kill cell must land after real spill activity"
    );
}

/// The fabric conservation law covers multiway sessions: under a 50%
/// duplication + reordering mix, both planner families must return the
/// bit-identical n-way reference answer, and for every fabric-carried
/// counter the root registry must equal the exact sum over the per-session
/// snapshots — root = Σ sessions, star joins included.
#[test]
fn conservation_law_holds_across_multiway_sessions() {
    let workload = star_chaos_workload();
    let star = workload.star_query();
    let expected = run_star_reference(&workload.l, &workload.dims, &star).unwrap();
    assert!(expected.num_rows() > 0);

    let faults = FaultSpec::quiet(23).with_dups(0.5).with_reorders(0.5);
    let mut root = HybridSystem::new(chaos_config(1, faults)).unwrap();
    workload.load_into(&mut root, FileFormat::Columnar).unwrap();
    let mut snapshots = Vec::new();
    for (i, planner) in [
        MultiwayPlanner::Cascade,
        MultiwayPlanner::Hypercube,
        MultiwayPlanner::Cascade,
        MultiwayPlanner::Hypercube,
    ]
    .into_iter()
    .enumerate()
    {
        let mut session = root.session(i as u64 + 1).unwrap();
        let out = run_star(&mut session, &star, planner).unwrap();
        assert_eq!(out.result, expected, "session {i} ({planner}) diverged");
        session.close_session();
        snapshots.push(out.snapshot);
    }

    for name in [
        "net.cross.bytes",
        "net.cross.msgs",
        "net.chaos.duplicated",
        "net.chaos.reordered",
        "net.chaos.deduped",
    ] {
        let session_sum: u64 = snapshots
            .iter()
            .map(|s| s.get(name).copied().unwrap_or(0))
            .sum();
        assert_eq!(
            root.metrics.get(name),
            session_sum,
            "conservation law violated for {name} across multiway sessions"
        );
    }
    assert!(
        root.metrics.get("net.chaos.duplicated") > 0,
        "the 50% mix must actually inject faults into the star joins"
    );
}
