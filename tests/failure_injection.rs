//! Failure injection across the stack: dead JEN workers, unreachable
//! endpoints, lost HDFS replicas. The paper's engines assume fail-stop
//! workers; the contract we verify is *clean error surfacing* (or recovery
//! where the coordinator can replan), never a hang or a wrong answer.

use hybrid_common::error::HybridError;
use hybrid_common::ids::{DataNodeId, JenWorkerId};
use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_net::Endpoint;
use hybrid_storage::FileFormat;
use std::time::Duration;

fn system() -> (HybridSystem, hybrid_datagen::Workload) {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(3, 5);
    cfg.rows_per_block = 500;
    cfg.recv_timeout = Duration::from_secs(5);
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    (sys, workload)
}

#[test]
fn disconnected_jen_worker_fails_cleanly() {
    let (mut sys, workload) = system();
    let query = workload.query();
    sys.fabric.disconnect(Endpoint::Jen(JenWorkerId(2)));
    for alg in [
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Broadcast,
    ] {
        let err = run(&mut sys, &query, alg).unwrap_err();
        // a typed error naming the dead endpoint, not a generic timeout
        assert!(
            matches!(&err, HybridError::Disconnected { endpoint, .. }
                if endpoint == "jen-worker-2"),
            "{alg}: {err}"
        );
    }
    // recovery: reconnect and everything works again
    sys.fabric.reconnect(Endpoint::Jen(JenWorkerId(2)));
    let out = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(out.result, expected);
}

#[test]
fn coordinator_replans_around_dead_worker_for_db_side_join() {
    // The DB-side join only involves the JEN workers the coordinator
    // assigns; marking a worker dead removes it from groups and block
    // plans, so the query must still succeed — with the right answer.
    let (mut sys, workload) = system();
    let query = workload.query();
    sys.coordinator.mark_dead(JenWorkerId(4));
    let out = run(&mut sys, &query, JoinAlgorithm::DbSide { bloom: true }).unwrap();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(out.result, expected);
}

#[test]
fn all_replicas_lost_surfaces_storage_error() {
    let (mut sys, workload) = system();
    let query = workload.query();
    {
        let mut hdfs = sys.hdfs.write();
        // kill every DataNode except one that holds no full replica set
        for i in 0..5 {
            hdfs.kill_datanode(DataNodeId(i));
        }
    }
    let err = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap_err();
    assert!(matches!(err, HybridError::Storage(_)), "{err}");
    // revive and re-run
    {
        let mut hdfs = sys.hdfs.write();
        for i in 0..5 {
            hdfs.revive_datanode(DataNodeId(i));
        }
    }
    let out = run(
        &mut sys,
        &query,
        JoinAlgorithm::Repartition { bloom: false },
    )
    .unwrap();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(out.result, expected);
}

#[test]
fn single_dead_datanode_is_tolerated_via_replication() {
    // replication factor 2: one dead DataNode must not lose any block
    let (mut sys, workload) = system();
    let query = workload.query();
    sys.hdfs.write().kill_datanode(DataNodeId(3));
    let out = run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();
    assert_eq!(out.result, expected);
    // the reads that would have been local on node 3 became remote
    assert!(sys.metrics.get("hdfs.read.remote_bytes") > 0);
}
