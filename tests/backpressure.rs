//! Back-pressure over the bounded fabric: a slow consumer must throttle its
//! producer (bounded in-flight count), never deadlock it — and full joins
//! must complete even with the pathological capacity of one message per
//! channel.

use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::metrics::Metrics;
use hybrid_core::reference::run_reference;
use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_net::{Endpoint, Fabric, Message, StreamTag};
use hybrid_storage::FileFormat;
use std::time::Duration;

#[test]
fn capacity_one_channel_throttles_a_fast_producer() {
    let fabric: Fabric<Message> = Fabric::with_capacity(1, 1, Metrics::new(), Some(1));
    let src = Endpoint::Db(DbWorkerId(0));
    let dst = Endpoint::Jen(JenWorkerId(0));
    const N: usize = 100;

    std::thread::scope(|scope| {
        let producer = scope.spawn(|| {
            // blocking sends: each waits until the slow consumer makes room
            for _ in 0..N {
                fabric
                    .send(
                        src,
                        dst,
                        Message::Eos {
                            stream: StreamTag::DbData,
                        },
                    )
                    .unwrap();
            }
        });

        let rx = fabric.receiver(dst).unwrap();
        let mut peak = 0usize;
        for i in 0..N {
            peak = peak.max(rx.len());
            std::thread::sleep(Duration::from_micros(200));
            let d = fabric.recv_timeout(dst, Duration::from_secs(10)).unwrap();
            assert_eq!(d.from, src, "message {i} from the wrong endpoint");
        }
        // the bound held: never more than `capacity` messages in flight
        assert!(peak <= 1, "peak in-flight {peak} exceeded capacity 1");
        producer.join().unwrap();
    });
}

#[test]
fn joins_complete_on_capacity_one_channels() {
    // Every worker thread both produces into and consumes from full peers
    // during the all-to-all shuffle; the mailboxes' send pump (drain your
    // own inbox while your destination is full) is what prevents the cyclic
    // wait. A deadlock here would surface as a timeout error, not a hang.
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let query = workload.query();
    let expected = run_reference(&workload.t, &workload.l, &query).unwrap();

    let mut cfg = SystemConfig::paper_shape(3, 5);
    cfg.rows_per_block = 500;
    cfg.threads = 8;
    cfg.channel_capacity = Some(1);
    cfg.recv_timeout = Duration::from_secs(30);
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();

    for alg in [
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
        JoinAlgorithm::Broadcast,
        JoinAlgorithm::PerfJoin,
    ] {
        let out = run(&mut sys, &query, alg).unwrap();
        assert_eq!(out.result, expected, "{alg} wrong under capacity-1");
    }
}
