//! Applying a Bloom filter to a batch of tuples.
//!
//! Both engines do exactly this in their scan loops: probe the join-key
//! column of every row against a filter from the *other* system and keep
//! only possible joiners (paper §3: "prune out the non-joinable records").

use crate::ApproxMembership;
use hybrid_common::batch::{Batch, SelectionVector};
use hybrid_common::error::Result;

/// Selection vector over `keys` of the entries that may be in `filter`,
/// built without a per-row branch: the row index is written unconditionally
/// and the cursor advances by the membership bit.
pub fn member_sel<F: ApproxMembership + ?Sized>(keys: &[i64], filter: &F) -> SelectionVector {
    let mut sel = vec![0u32; keys.len()];
    let mut k = 0usize;
    for (row, &key) in keys.iter().enumerate() {
        sel[k] = row as u32;
        k += usize::from(filter.may_contain(key));
    }
    sel.truncate(k);
    SelectionVector::from_indexes(sel)
}

/// Keep only the rows of `batch` whose key in `key_col` may be in `filter`.
///
/// Vectorized: the key column is widened once, membership is evaluated over
/// the whole batch into a selection vector, and the survivors move with one
/// column-at-a-time gather.
pub fn filter_batch<F: ApproxMembership + ?Sized>(
    batch: &Batch,
    key_col: usize,
    filter: &F,
) -> Result<(Batch, FilStats)> {
    let keys = batch.column(key_col)?.keys_i64()?;
    let sel = member_sel(&keys, filter);
    let kept = sel.len();
    let out = batch.take_sel(&sel);
    Ok((
        out,
        FilStats {
            kept,
            dropped: batch.num_rows() - kept,
        },
    ))
}

/// Rows kept/dropped by one filter application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilStats {
    pub kept: usize,
    pub dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BloomFilter, BloomParams};
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;

    fn batch(keys: &[i32]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)]),
            vec![
                Column::I32(keys.to_vec()),
                Column::I64(keys.iter().map(|&k| i64::from(k) * 2).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn keeps_members_drops_rest() {
        let mut f = BloomFilter::new(BloomParams::new(1 << 14, 2).unwrap());
        f.insert(3);
        f.insert(5);
        let (out, stats) = filter_batch(&batch(&[1, 3, 5, 7, 3]), 0, &f).unwrap();
        // all true members kept; nonmembers *may* survive as false positives
        let kept_keys = out.column(0).unwrap().as_i32().unwrap();
        assert!(kept_keys.contains(&3) && kept_keys.contains(&5));
        assert_eq!(stats.kept, out.num_rows());
        assert_eq!(stats.kept + stats.dropped, 5);
        assert!(stats.kept >= 3);
    }

    #[test]
    fn empty_filter_drops_everything_probably() {
        let f = BloomFilter::new(BloomParams::new(1 << 14, 2).unwrap());
        let (out, stats) = filter_batch(&batch(&[1, 2, 3]), 0, &f).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn value_columns_travel_with_keys() {
        let mut f = BloomFilter::new(BloomParams::new(1 << 14, 2).unwrap());
        f.insert(9);
        let (out, _) = filter_batch(&batch(&[8, 9]), 0, &f).unwrap();
        assert_eq!(out.column(1).unwrap().as_i64().unwrap(), &[18]);
    }
}
