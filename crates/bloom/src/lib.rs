//! Bloom filters for hybrid-warehouse joins.
//!
//! The paper's key mechanism for minimizing data movement (§3) is a Bloom
//! filter built on the join keys of one side and applied while scanning the
//! other. This crate provides:
//!
//! * [`BloomFilter`] — the standard `m`-bit / `k`-hash filter with the
//!   bitwise-OR [`BloomFilter::merge`] that DB workers use to aggregate their
//!   local filters into the global `BF_DB` (the paper's `combine_filter`
//!   UDF), plus Kirsch–Mitzenmacher double hashing so any `k` costs two
//!   64-bit hashes per key;
//! * [`params::BloomParams`] — false-positive-rate math and optimal sizing.
//!   The paper uses 128 M bits / 2 hashes for 16 M keys (~5% FPR, §5); the
//!   same `bits_per_key = 8, k = 2` shape is this crate's
//!   [`params::BloomParams::paper_default`];
//! * [`blocked::BlockedBloomFilter`] — a register-blocked variant where all
//!   `k` probes land in one 64-byte block (one cache miss per op), included
//!   as an ablation subject for the benchmark suite.
//!
//! Both filter types share [`ApproxMembership`] so join operators are generic
//! over the choice.

pub mod apply;
pub mod blocked;
pub mod filter;
pub mod params;

pub use apply::{filter_batch, member_sel, FilStats};
pub use blocked::BlockedBloomFilter;
pub use filter::BloomFilter;
pub use params::BloomParams;

/// Anything that can answer approximate membership queries over join keys.
///
/// Implementations must be *one-sided*: `false` is always correct ("key
/// definitely absent"), `true` may be a false positive. The join algorithms
/// rely on exactly this contract — a false positive only wastes network
/// bytes, never drops a result row.
pub trait ApproxMembership {
    /// Test whether `key` may have been inserted.
    fn may_contain(&self, key: i64) -> bool;

    /// Number of bytes this filter occupies when shipped between clusters.
    fn wire_bytes(&self) -> usize;
}

/// An exact key set is the degenerate "approximate" filter with a zero
/// false-positive rate — the semi-join baseline ships one and filters scans
/// through the same vectorized [`filter_batch`] path the Bloom variants use.
impl ApproxMembership for std::collections::HashSet<i64> {
    fn may_contain(&self, key: i64) -> bool {
        self.contains(&key)
    }

    fn wire_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<i64>()
    }
}
