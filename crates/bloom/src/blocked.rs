//! Register-blocked Bloom filter (ablation subject).
//!
//! The classic filter touches `k` random cache lines per operation. The
//! blocked variant picks one 512-bit (cache-line) block per key and sets all
//! `k` bits inside it, so insert/probe cost one memory access. The price is
//! a slightly worse FPR at equal size (keys are unevenly spread over
//! blocks). The paper uses plain Bloom filters; we include this variant to
//! quantify the engineering trade-off in `benches/bloom.rs`.

use crate::params::BloomParams;
use crate::ApproxMembership;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::bloom_base_hashes;

const BLOCK_WORDS: usize = 8; // 8 * 64 = 512 bits = one cache line
const BLOCK_BITS: u64 = (BLOCK_WORDS * 64) as u64;

/// A cache-line-blocked Bloom filter over `i64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedBloomFilter {
    /// Flat storage: `blocks * BLOCK_WORDS` words.
    words: Vec<u64>,
    num_blocks: usize,
    hashes: u32,
    insertions: u64,
}

impl BlockedBloomFilter {
    /// Build with geometry taken from `params` (bits rounded up to whole
    /// blocks).
    pub fn new(params: BloomParams) -> BlockedBloomFilter {
        let num_blocks = params.bits.div_ceil(BLOCK_WORDS * 64).max(1);
        BlockedBloomFilter {
            words: vec![0; num_blocks * BLOCK_WORDS],
            num_blocks,
            hashes: params.hashes,
            insertions: 0,
        }
    }

    pub fn num_bits(&self) -> usize {
        self.words.len() * 64
    }

    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    #[inline]
    fn block_of(&self, h1: u64) -> usize {
        (h1 % self.num_blocks as u64) as usize * BLOCK_WORDS
    }

    /// Insert a key: one block, `k` bits within it.
    #[inline]
    pub fn insert(&mut self, key: i64) {
        let (h1, h2) = bloom_base_hashes(key);
        let base = self.block_of(h1);
        let mut h = h1.rotate_left(32);
        for _ in 0..self.hashes {
            let bit = h % BLOCK_BITS;
            self.words[base + (bit / 64) as usize] |= 1u64 << (bit % 64);
            h = h.wrapping_add(h2);
        }
        self.insertions += 1;
    }

    pub fn insert_all(&mut self, keys: &[i64]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Bitwise-OR merge (same geometry required).
    pub fn merge(&mut self, other: &BlockedBloomFilter) -> Result<()> {
        if self.num_blocks != other.num_blocks || self.hashes != other.hashes {
            return Err(HybridError::config(
                "cannot merge blocked bloom filters with different geometry".to_string(),
            ));
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.insertions += other.insertions;
        Ok(())
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        set as f64 / self.num_bits() as f64
    }
}

impl ApproxMembership for BlockedBloomFilter {
    #[inline]
    fn may_contain(&self, key: i64) -> bool {
        let (h1, h2) = bloom_base_hashes(key);
        let base = self.block_of(h1);
        let mut h = h1.rotate_left(32);
        for _ in 0..self.hashes {
            let bit = h % BLOCK_BITS;
            if self.words[base + (bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    fn wire_bytes(&self) -> usize {
        8 + self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<i64> = (0..5000).map(|i| i * 101 - 3).collect();
        let mut f = BlockedBloomFilter::new(BloomParams::new(1 << 16, 4).unwrap());
        f.insert_all(&keys);
        assert!(keys.iter().all(|&k| f.may_contain(k)));
    }

    #[test]
    fn fpr_reasonable_at_8_bits_per_key() {
        let n = 20_000usize;
        let mut f = BlockedBloomFilter::new(BloomParams::new(8 * n, 4).unwrap());
        for i in 0..n as i64 {
            f.insert(i);
        }
        let trials = 50_000;
        let fp = (n as i64..n as i64 + trials)
            .filter(|&k| f.may_contain(k))
            .count();
        let observed = fp as f64 / trials as f64;
        // Blocked pays a modest FPR penalty vs the ~2.5% of an ideal k=4
        // filter; anything under 8% shows the block structure works.
        assert!(observed < 0.08, "observed fpr {observed}");
    }

    #[test]
    fn merge_union_and_geometry_check() {
        let params = BloomParams::new(1 << 14, 3).unwrap();
        let mut a = BlockedBloomFilter::new(params);
        a.insert_all(&[1, 2, 3]);
        let mut b = BlockedBloomFilter::new(params);
        b.insert_all(&[100, 200]);
        a.merge(&b).unwrap();
        for k in [1, 2, 3, 100, 200] {
            assert!(a.may_contain(k));
        }
        let c = BlockedBloomFilter::new(BloomParams::new(1 << 15, 3).unwrap());
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn rounds_up_to_whole_blocks() {
        let f = BlockedBloomFilter::new(BloomParams::new(1, 1).unwrap());
        assert_eq!(f.num_bits(), 512);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn never_false_negative(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            k in 1u32..8,
        ) {
            let mut f = BlockedBloomFilter::new(BloomParams::new(1 << 13, k).unwrap());
            f.insert_all(&keys);
            for &key in &keys {
                prop_assert!(f.may_contain(key));
            }
        }
    }
}
