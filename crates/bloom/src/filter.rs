//! The standard Bloom filter.

use crate::params::BloomParams;
use crate::ApproxMembership;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::bloom_base_hashes;

/// An `m`-bit, `k`-hash Bloom filter over `i64` join keys.
///
/// ```
/// use hybrid_bloom::{ApproxMembership, BloomFilter, BloomParams};
///
/// // per-worker local filters, merged like the paper's combine_filter UDF
/// let params = BloomParams::new(1 << 12, 2).unwrap();
/// let mut worker_a = BloomFilter::new(params);
/// worker_a.insert_all(&[1, 2, 3]);
/// let mut worker_b = BloomFilter::new(params);
/// worker_b.insert_all(&[40, 50]);
///
/// let mut global = BloomFilter::new(params);
/// global.merge(&worker_a).unwrap();
/// global.merge(&worker_b).unwrap();
/// assert!(global.may_contain(2) && global.may_contain(50));
///
/// // ship it across the cluster and back
/// let wire = global.to_bytes();
/// let received = BloomFilter::from_bytes(&wire).unwrap();
/// assert!(received.may_contain(3));
/// ```
///
/// This is the structure built by the paper's `cal_filter`/`get_filter` UDFs
/// on each DB worker and merged into the global `BF_DB` by `combine_filter`
/// (§4.1.1), and symmetrically by JEN workers to form `BF_H` in the zigzag
/// join (§3.4). Merging is plain bitwise OR, which requires both sides to
/// use identical parameters — enforced by [`BloomFilter::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    params: BloomParams,
    bits: Vec<u64>,
    /// Number of `insert` calls (not distinct keys); used for FPR estimation
    /// and diagnostics only.
    insertions: u64,
}

impl BloomFilter {
    pub fn new(params: BloomParams) -> BloomFilter {
        let words = params.bits.div_ceil(64);
        // Normalize to the allocated geometry so a wire roundtrip
        // (`to_bytes`/`from_bytes`) reports identical params and merges
        // with the original filter.
        let params = BloomParams {
            bits: words * 64,
            ..params
        };
        BloomFilter {
            params,
            bits: vec![0; words],
            insertions: 0,
        }
    }

    /// Convenience: a filter sized like the paper's for `expected_keys`.
    pub fn paper_sized(expected_keys: usize) -> BloomFilter {
        BloomFilter::new(BloomParams::paper_default(expected_keys))
    }

    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Total bits `m` (rounded up to the allocated word count).
    pub fn num_bits(&self) -> usize {
        self.bits.len() * 64
    }

    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Insert a join key.
    #[inline]
    pub fn insert(&mut self, key: i64) {
        let (h1, h2) = bloom_base_hashes(key);
        let m = self.num_bits() as u64;
        let mut h = h1;
        for _ in 0..self.params.hashes {
            let bit = h % m;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
            h = h.wrapping_add(h2);
        }
        self.insertions += 1;
    }

    /// Insert every key of a slice (scan loop helper).
    pub fn insert_all(&mut self, keys: &[i64]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Merge `other` into `self` by bitwise OR — the `combine_filter` UDF.
    ///
    /// Errors if the parameters differ: OR-ing filters of different geometry
    /// silently corrupts membership answers, so it is a hard error.
    pub fn merge(&mut self, other: &BloomFilter) -> Result<()> {
        if self.params != other.params {
            return Err(HybridError::config(format!(
                "cannot merge bloom filters with different params: {:?} vs {:?}",
                self.params, other.params
            )));
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.insertions += other.insertions;
        Ok(())
    }

    /// Fraction of set bits (diagnostic; ~`1 - e^{-kn/m}` for random keys).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| u64::from(w.count_ones())).sum();
        set as f64 / self.num_bits() as f64
    }

    /// Observed-fill-based FPR estimate: `fill^k`.
    pub fn estimated_fpr(&self) -> f64 {
        self.fill_ratio().powf(f64::from(self.params.hashes))
    }

    /// Serialize to bytes (wire format: k, then the words little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bits.len() * 8);
        out.extend_from_slice(&u64::from(self.params.hashes).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`BloomFilter::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<BloomFilter> {
        if bytes.len() < 16 || (bytes.len() - 8) % 8 != 0 {
            return Err(HybridError::Storage(format!(
                "bloom wire payload of {} bytes is malformed",
                bytes.len()
            )));
        }
        let hashes = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let words = (bytes.len() - 8) / 8;
        let mut bits = Vec::with_capacity(words);
        for i in 0..words {
            let s = 8 + i * 8;
            bits.push(u64::from_le_bytes(bytes[s..s + 8].try_into().unwrap()));
        }
        let params = BloomParams::new(
            words * 64,
            hashes
                .try_into()
                .map_err(|_| HybridError::Storage("bloom wire hash count overflow".into()))?,
        )?;
        Ok(BloomFilter {
            params,
            bits,
            insertions: 0,
        })
    }
}

impl ApproxMembership for BloomFilter {
    #[inline]
    fn may_contain(&self, key: i64) -> bool {
        let (h1, h2) = bloom_base_hashes(key);
        let m = self.num_bits() as u64;
        let mut h = h1;
        for _ in 0..self.params.hashes {
            let bit = h % m;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    fn wire_bytes(&self) -> usize {
        8 + self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(keys: &[i64], bits: usize, k: u32) -> BloomFilter {
        let mut f = BloomFilter::new(BloomParams::new(bits, k).unwrap());
        f.insert_all(keys);
        f
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<i64> = (0..5000).map(|i| i * 37 - 1000).collect();
        let f = filter_with(&keys, 64 * 1024, 3);
        for &k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fpr_close_to_prediction() {
        let n = 10_000usize;
        let params = BloomParams::new(8 * n, 2).unwrap();
        let mut f = BloomFilter::new(params);
        for i in 0..n as i64 {
            f.insert(i);
        }
        let predicted = params.expected_fpr(n);
        let trials = 100_000;
        let fp = (n as i64..n as i64 + trials)
            .filter(|&k| f.may_contain(k))
            .count();
        let observed = fp as f64 / trials as f64;
        assert!(
            (observed - predicted).abs() < 0.02,
            "observed {observed}, predicted {predicted}"
        );
    }

    #[test]
    fn merge_is_union() {
        let a_keys: Vec<i64> = (0..1000).collect();
        let b_keys: Vec<i64> = (500..1500).collect();
        let mut a = filter_with(&a_keys, 1 << 15, 2);
        let b = filter_with(&b_keys, 1 << 15, 2);
        a.merge(&b).unwrap();
        for k in 0..1500 {
            assert!(a.may_contain(k));
        }
        assert_eq!(a.insertions(), 2000);
    }

    #[test]
    fn merge_rejects_mismatched_params() {
        let mut a = BloomFilter::new(BloomParams::new(128, 2).unwrap());
        let b = BloomFilter::new(BloomParams::new(256, 2).unwrap());
        assert!(a.merge(&b).is_err());
        let c = BloomFilter::new(BloomParams::new(128, 3).unwrap());
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn serialization_roundtrip_preserves_membership() {
        let keys: Vec<i64> = (0..2000).map(|i| i * 13).collect();
        let f = filter_with(&keys, 1 << 14, 2);
        let g = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f.params(), g.params());
        for &k in &keys {
            assert!(g.may_contain(k));
        }
        assert_eq!(f.fill_ratio(), g.fill_ratio());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BloomFilter::from_bytes(&[]).is_err());
        assert!(BloomFilter::from_bytes(&[0u8; 9]).is_err());
        assert!(BloomFilter::from_bytes(&[0u8; 15]).is_err());
    }

    #[test]
    fn fill_ratio_and_estimated_fpr() {
        let f = BloomFilter::new(BloomParams::new(1024, 2).unwrap());
        assert_eq!(f.fill_ratio(), 0.0);
        assert_eq!(f.estimated_fpr(), 0.0);
        let mut f = f;
        for i in 0..200 {
            f.insert(i);
        }
        assert!(f.fill_ratio() > 0.0 && f.fill_ratio() < 1.0);
        assert!(f.estimated_fpr() <= f.fill_ratio());
    }

    #[test]
    fn empty_filter_contains_nothing_probable() {
        let f = BloomFilter::new(BloomParams::new(1 << 12, 2).unwrap());
        assert!((0..1000i64).all(|k| !f.may_contain(k)));
    }

    #[test]
    fn wire_bytes_matches_serialized_len() {
        let f = BloomFilter::new(BloomParams::new(1000, 2).unwrap());
        assert_eq!(f.wire_bytes(), f.to_bytes().len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The one-sided-error contract: an inserted key is *always* found,
        /// for every geometry.
        #[test]
        fn never_false_negative(
            keys in proptest::collection::vec(any::<i64>(), 1..200),
            bits_pow in 7usize..16,
            k in 1u32..8,
        ) {
            let mut f = BloomFilter::new(BloomParams::new(1 << bits_pow, k).unwrap());
            f.insert_all(&keys);
            for &key in &keys {
                prop_assert!(f.may_contain(key));
            }
        }

        /// Merging never loses membership: anything in either input is in
        /// the union.
        #[test]
        fn merge_superset(
            a in proptest::collection::vec(any::<i64>(), 0..100),
            b in proptest::collection::vec(any::<i64>(), 0..100),
        ) {
            let params = BloomParams::new(1 << 12, 3).unwrap();
            let mut fa = BloomFilter::new(params);
            fa.insert_all(&a);
            let mut fb = BloomFilter::new(params);
            fb.insert_all(&b);
            fa.merge(&fb).unwrap();
            for &k in a.iter().chain(&b) {
                prop_assert!(fa.may_contain(k));
            }
        }

        /// `merge` is *exactly* the filter of the union of the inserts —
        /// bit-identical, not merely a membership superset — across random
        /// geometries. This is what makes the paper's per-worker
        /// build-then-combine plan equivalent to a single global build.
        #[test]
        fn merge_equals_filter_of_union(
            a in proptest::collection::vec(any::<i64>(), 0..150),
            b in proptest::collection::vec(any::<i64>(), 0..150),
            bits_pow in 7usize..14,
            k in 1u32..6,
        ) {
            let params = BloomParams::new(1 << bits_pow, k).unwrap();
            let mut merged = BloomFilter::new(params);
            merged.insert_all(&a);
            let mut fb = BloomFilter::new(params);
            fb.insert_all(&b);
            merged.merge(&fb).unwrap();
            let mut union = BloomFilter::new(params);
            union.insert_all(&a);
            union.insert_all(&b);
            prop_assert_eq!(&merged, &union);
        }

        /// The observed false-positive rate stays within 2× of the
        /// analytic [`BloomParams::expected_fpr`] across random
        /// `(m, k, n)`. Ranges keep the expected rate above ~1% so 8192
        /// probes measure it; the band gets a small binomial-noise slack.
        #[test]
        fn observed_fpr_within_2x_of_expected(
            bits_pow in 8usize..13,
            bits_per_key in 2usize..9,
            k in 1u32..5,
            seed in any::<i64>(),
        ) {
            let params = BloomParams::new(1 << bits_pow, k).unwrap();
            let mut f = BloomFilter::new(params);
            let n = (f.num_bits() / bits_per_key).max(8);
            let inserted: std::collections::HashSet<i64> = (0..n)
                .map(|i| {
                    seed.wrapping_add(
                        (i as i64).wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as i64),
                    )
                })
                .collect();
            for &key in &inserted {
                f.insert(key);
            }
            let expected = f.params().expected_fpr(inserted.len());

            const PROBES: usize = 8192;
            let mut fp = 0usize;
            let mut probes = 0usize;
            let mut p: i64 = seed ^ 0x0005_DEEC_E66D;
            while probes < PROBES {
                p = p
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                if inserted.contains(&p) {
                    continue; // only true negatives measure the FPR
                }
                probes += 1;
                if f.may_contain(p) {
                    fp += 1;
                }
            }
            let observed = fp as f64 / probes as f64;
            let noise = 4.0 * (expected / probes as f64).sqrt();
            prop_assert!(
                observed <= 2.0 * expected + noise,
                "observed {observed:.4} > 2x expected {expected:.4} (m={}, k={k}, n={n})",
                1usize << bits_pow,
            );
            prop_assert!(
                observed >= 0.5 * expected - noise,
                "observed {observed:.4} < 0.5x expected {expected:.4} (m={}, k={k}, n={n})",
                1usize << bits_pow,
            );
        }

        /// Batched evaluation over a whole key vector (`member_sel`, the
        /// scan loop's selection-vector path) selects exactly the rows
        /// where per-row `may_contain` answers true — for arbitrary key
        /// sets, probes, and geometries.
        #[test]
        fn batched_membership_equals_per_row(
            keys in proptest::collection::vec(any::<i64>(), 0..150),
            probes in proptest::collection::vec(any::<i64>(), 0..200),
            bits_pow in 7usize..14,
            k in 1u32..6,
        ) {
            let mut f = BloomFilter::new(BloomParams::new(1 << bits_pow, k).unwrap());
            f.insert_all(&keys);
            let sel = crate::apply::member_sel(&probes, &f);
            let expected: Vec<u32> = probes
                .iter()
                .enumerate()
                .filter(|(_, &p)| f.may_contain(p))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(sel.as_slice(), expected.as_slice());
        }

        /// Wire roundtrip answers identically on arbitrary probes.
        #[test]
        fn roundtrip_equivalent(
            keys in proptest::collection::vec(any::<i64>(), 0..100),
            probes in proptest::collection::vec(any::<i64>(), 0..100),
        ) {
            let mut f = BloomFilter::new(BloomParams::new(1 << 10, 2).unwrap());
            f.insert_all(&keys);
            let g = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
            for &p in &probes {
                prop_assert_eq!(f.may_contain(p), g.may_contain(p));
            }
        }
    }
}
