//! Bloom filter sizing and false-positive-rate math.

use hybrid_common::error::{HybridError, Result};

/// Size parameters of a Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomParams {
    /// Number of bits `m` (rounded up to a multiple of 64 on allocation).
    pub bits: usize,
    /// Number of hash functions `k`.
    pub hashes: u32,
}

impl BloomParams {
    /// Validated constructor.
    pub fn new(bits: usize, hashes: u32) -> Result<BloomParams> {
        if bits == 0 {
            return Err(HybridError::config("bloom filter needs at least 1 bit"));
        }
        if hashes == 0 || hashes > 32 {
            return Err(HybridError::config(format!(
                "bloom filter hash count {hashes} outside 1..=32"
            )));
        }
        Ok(BloomParams { bits, hashes })
    }

    /// The paper's configuration shape (§5): 128 M bits and 2 hashes for
    /// 16 M unique join keys, i.e. 8 bits per expected key — ~5% FPR.
    /// `expected_keys` scales the same shape to any experiment size.
    pub fn paper_default(expected_keys: usize) -> BloomParams {
        BloomParams {
            bits: (expected_keys.max(1)) * 8,
            hashes: 2,
        }
    }

    /// The textbook optimal parameters for `n` keys at target FPR `p`:
    /// `m = -n ln p / (ln 2)^2`, `k = (m/n) ln 2`.
    pub fn optimal(n: usize, p: f64) -> Result<BloomParams> {
        if !(p > 0.0 && p < 1.0) {
            return Err(HybridError::config(format!("target FPR {p} outside (0,1)")));
        }
        let n = n.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * p.ln() / (ln2 * ln2)).ceil().max(64.0) as usize;
        let k = ((m as f64 / n) * ln2).round().clamp(1.0, 32.0) as u32;
        BloomParams::new(m, k)
    }

    /// Expected false-positive rate after inserting `n` distinct keys:
    /// `(1 - e^{-kn/m})^k`.
    pub fn expected_fpr(&self, n: usize) -> f64 {
        let k = f64::from(self.hashes);
        let exponent = -k * (n as f64) / (self.bits as f64);
        (1.0 - exponent.exp()).powf(k)
    }

    /// Bytes of the bit array on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.bits.div_ceil(64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(BloomParams::new(0, 2).is_err());
        assert!(BloomParams::new(64, 0).is_err());
        assert!(BloomParams::new(64, 33).is_err());
        assert!(BloomParams::new(64, 2).is_ok());
    }

    #[test]
    fn paper_default_matches_published_fpr() {
        // 16M keys -> 128M bits, k=2: the paper reports "roughly 5%".
        let p = BloomParams::paper_default(16_000_000);
        assert_eq!(p.bits, 128_000_000);
        assert_eq!(p.hashes, 2);
        let fpr = p.expected_fpr(16_000_000);
        assert!((0.035..0.06).contains(&fpr), "fpr={fpr}");
    }

    #[test]
    fn optimal_hits_target() {
        for &target in &[0.01, 0.05, 0.1] {
            let p = BloomParams::optimal(100_000, target).unwrap();
            let achieved = p.expected_fpr(100_000);
            assert!(
                achieved <= target * 1.15,
                "target {target}, achieved {achieved} with {p:?}"
            );
        }
    }

    #[test]
    fn optimal_rejects_silly_fpr() {
        assert!(BloomParams::optimal(10, 0.0).is_err());
        assert!(BloomParams::optimal(10, 1.0).is_err());
        assert!(BloomParams::optimal(10, -0.5).is_err());
    }

    #[test]
    fn fpr_monotone_in_n() {
        let p = BloomParams::new(1 << 16, 3).unwrap();
        let mut last = 0.0;
        for n in [100, 1_000, 10_000, 100_000] {
            let f = p.expected_fpr(n);
            assert!(f >= last);
            last = f;
        }
        assert!(last <= 1.0);
    }

    #[test]
    fn wire_bytes_rounds_to_words() {
        assert_eq!(BloomParams::new(1, 1).unwrap().wire_bytes(), 8);
        assert_eq!(BloomParams::new(64, 1).unwrap().wire_bytes(), 8);
        assert_eq!(BloomParams::new(65, 1).unwrap().wire_bytes(), 16);
    }
}
