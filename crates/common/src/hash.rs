//! Hashing utilities.
//!
//! Three distinct hash roles appear in the paper, and they must be kept
//! separate so that correlated hashes do not bias one another:
//!
//! 1. the **agreed shuffle hash** shared by the database and JEN to route
//!    tuples to the JEN worker that owns a join-key partition (§3.3, §4.3);
//! 2. the **database partitioning hash** used by the EDW to distribute table
//!    rows across DB workers (the paper notes the DB's internal function is
//!    *not* exposed to the HDFS side — we keep it a different function);
//! 3. the **Bloom filter hash family**, which derives `k` independent hashes
//!    from two base hashes (Kirsch–Mitzenmacher double hashing).
//!
//! All functions are deterministic across runs and platforms so that the
//! experiment harness is reproducible.

/// 64-bit finalizer from SplitMix64 — excellent avalanche, cheap, stable.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a join key with a seed (used to derive independent families).
#[inline]
pub fn hash_key_seeded(key: i64, seed: u64) -> u64 {
    splitmix64((key as u64) ^ seed.rotate_left(17))
}

/// The *agreed hash function* (role 1).
///
/// Both the EDW workers and the JEN workers call exactly this function when
/// deciding which JEN worker receives a tuple for the repartition-based and
/// zigzag joins; the tests in `hybrid-core` rely on DB-shipped and
/// HDFS-shuffled partitions landing on the same worker.
#[inline]
pub fn agreed_shuffle_partition(key: i64, num_workers: usize) -> usize {
    debug_assert!(num_workers > 0);
    (hash_key_seeded(key, 0xA9A9_EED0_0C0F_FEE5) % num_workers as u64) as usize
}

/// The database's internal partitioning hash (role 2) — deliberately a
/// different function from [`agreed_shuffle_partition`], since the paper's
/// DB2 hash is opaque to JEN.
#[inline]
pub fn db_partition(key: i64, num_workers: usize) -> usize {
    debug_assert!(num_workers > 0);
    (hash_key_seeded(key, 0xD82C_07CD_0000_DB2D) % num_workers as u64) as usize
}

/// Base hash pair for Bloom filters (role 3).
///
/// Returns `(h1, h2)`; the i-th Bloom hash is `h1 + i*h2` (Kirsch &
/// Mitzenmacher), giving `k` well-distributed probes from two evaluations.
#[inline]
pub fn bloom_base_hashes(key: i64) -> (u64, u64) {
    let h1 = hash_key_seeded(key, 0xB10F_0000_0000_0001);
    // Derive h2 from h1 so a single splitmix chain feeds both.
    let h2 = splitmix64(h1 ^ 0xB10F_0000_0000_0002) | 1; // odd => full period
    (h1, h2)
}

/// Hash arbitrary bytes (group-by over strings).
#[inline]
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    // FNV-1a core with a splitmix finalizer: short strings dominate here.
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ splitmix64(seed);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_stable() {
        // Pinned values: the whole harness depends on cross-run determinism.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn partitions_in_range_and_spread() {
        let n = 30;
        let mut counts = vec![0usize; n];
        for k in 0..30_000i64 {
            let p = agreed_shuffle_partition(k, n);
            assert!(p < n);
            counts[p] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // uniform-ish: each bucket within 20% of the mean of 1000
        assert!(*min > 800 && *max < 1200, "min={min} max={max}");
    }

    #[test]
    fn agreed_and_db_hashes_differ() {
        // If these collided for most keys, the DB-side join's "may need to be
        // shuffled again" property (paper §3.1) would silently disappear.
        let n = 16;
        let same = (0..10_000i64)
            .filter(|&k| agreed_shuffle_partition(k, n) == db_partition(k, n))
            .count();
        // Expect ~1/16 agreement by chance; assert well below half.
        assert!(same < 1500, "agreed/db hashes too correlated: {same}");
    }

    #[test]
    fn bloom_base_hashes_h2_is_odd() {
        for k in [-5i64, 0, 1, 99999] {
            let (_, h2) = bloom_base_hashes(k);
            assert_eq!(h2 & 1, 1);
        }
    }

    #[test]
    fn bloom_base_hashes_distinct_across_keys() {
        let mut seen = HashSet::new();
        for k in 0..10_000i64 {
            assert!(seen.insert(bloom_base_hashes(k)));
        }
    }

    #[test]
    fn hash_bytes_varies_with_seed_and_content() {
        assert_ne!(hash_bytes(b"abc", 0), hash_bytes(b"abd", 0));
        assert_ne!(hash_bytes(b"abc", 0), hash_bytes(b"abc", 1));
        assert_eq!(hash_bytes(b"", 7), hash_bytes(b"", 7));
    }
}
