//! Identifier newtypes for the simulated clusters.
//!
//! Keeping worker / node / block identifiers as distinct types prevents the
//! classic "passed a DB worker index to a JEN routing table" bug at compile
//! time — the two clusters have different sizes (§5: 30 DB2 workers on 5
//! servers vs 30 JEN workers on 30 DataNodes) and must never be conflated.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub usize);

        impl $name {
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A worker of the shared-nothing parallel database (DB2 DPF agent).
    DbWorkerId,
    "db-worker-"
);

id_newtype!(
    /// A JEN worker, one per HDFS DataNode.
    JenWorkerId,
    "jen-worker-"
);

id_newtype!(
    /// A physical DataNode in the simulated HDFS cluster.
    DataNodeId,
    "datanode-"
);

id_newtype!(
    /// An HDFS block.
    BlockId,
    "block-"
);

id_newtype!(
    /// A disk within a DataNode (the paper uses 4 data disks per node).
    DiskId,
    "disk-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(DbWorkerId(3).to_string(), "db-worker-3");
        assert_eq!(JenWorkerId(0).to_string(), "jen-worker-0");
        assert_eq!(BlockId(12).to_string(), "block-12");
    }

    #[test]
    fn ordering_and_conversion() {
        assert!(DataNodeId(1) < DataNodeId(2));
        assert_eq!(DiskId::from(5).index(), 5);
    }
}
