//! A small expression AST with a vectorized evaluator.
//!
//! Covers the shapes of the paper's workload query (§5, *Dataset*):
//!
//! ```sql
//! select extract_group(L.groupByExtractCol), count(*)
//! from T, L
//! where T.corPred <= a and T.indPred <= b
//!   and L.corPred <= c and L.indPred <= d
//!   and T.joinKey = L.joinKey
//!   and days(T.predAfterJoin) - days(L.predAfterJoin) >= 0
//!   and days(T.predAfterJoin) - days(L.predAfterJoin) <= 1
//! group by extract_group(L.groupByExtractCol)
//! ```
//!
//! Local predicates, the post-join date-difference predicate, and the
//! `extract_group` scalar UDF are all expressible. Evaluation widens every
//! integer type (including dates, which are day numbers) to `i64`, which
//! keeps the evaluator small without losing anything the workload needs.

use crate::batch::{Batch, Column};
use crate::datum::Datum;
use crate::error::{HybridError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    #[inline]
    fn apply_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Expression AST.
///
/// ```
/// use hybrid_common::batch::{Batch, Column};
/// use hybrid_common::datum::DataType;
/// use hybrid_common::expr::Expr;
/// use hybrid_common::schema::Schema;
///
/// let batch = Batch::new(
///     Schema::from_pairs(&[("corPred", DataType::I32), ("indPred", DataType::I32)]),
///     vec![Column::I32(vec![5, 20, 7]), Column::I32(vec![1, 1, 9])],
/// ).unwrap();
/// // corPred <= 10 AND indPred <= 5 — the paper's local-predicate shape
/// let pred = Expr::col_le(0, 10).and(Expr::col_le(1, 5));
/// assert_eq!(pred.eval_predicate(&batch).unwrap(), vec![true, false, false]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column of the input batch by index.
    Col(usize),
    /// Literal scalar.
    Lit(Datum),
    /// Binary comparison producing booleans.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical connectives over boolean expressions.
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// Integer arithmetic (dates are day numbers, so `Sub` is `days(a)-days(b)`).
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    /// The paper's `extract_group` scalar UDF: pull the numeric group id out
    /// of a `groupByExtractCol` value shaped like `"url_123/..."`. Values
    /// that do not match hash to a stable group instead of erroring, which
    /// mirrors a tolerant UDF over messy log data.
    ExtractGroup(Box<Expr>),
}

impl Expr {
    // ---- convenience builders used throughout the workspace ----
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }
    pub fn lit_i32(v: i32) -> Expr {
        Expr::Lit(Datum::I32(v))
    }
    pub fn lit_i64(v: i64) -> Expr {
        Expr::Lit(Datum::I64(v))
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)] // DSL builder, intentionally named like SQL's `-`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `col_idx <= v` — the shape of every local predicate in the workload.
    pub fn col_le(col_idx: usize, v: i64) -> Expr {
        Expr::col(col_idx).le(Expr::lit_i64(v))
    }

    /// Evaluate as a boolean predicate over `batch`.
    pub fn eval_predicate(&self, batch: &Batch) -> Result<Vec<bool>> {
        match self.eval(batch)? {
            EvalCol::Bool(b) => Ok(b),
            EvalCol::ConstBool(b) => Ok(vec![b; batch.num_rows()]),
            other => Err(HybridError::TypeMismatch {
                expected: "boolean predicate",
                found: other.type_name(),
            }),
        }
    }

    /// Evaluate as an `i64` column (group-by key extraction).
    pub fn eval_i64(&self, batch: &Batch) -> Result<Vec<i64>> {
        match self.eval(batch)? {
            EvalCol::I64(v) => Ok(v),
            EvalCol::ConstI64(v) => Ok(vec![v; batch.num_rows()]),
            other => Err(HybridError::TypeMismatch {
                expected: "integer expression",
                found: other.type_name(),
            }),
        }
    }

    /// All `col <= literal` conjuncts reachable through top-level `AND`s,
    /// as `(column, bound)` pairs.
    ///
    /// Both engines prune with these: the EDW picks a covering index whose
    /// leading column carries such a bound (prefix range access), and JEN
    /// skips columnar chunks whose min exceeds the bound.
    pub fn le_conjuncts(&self) -> Vec<(usize, i64)> {
        let mut out = Vec::new();
        self.collect_le_conjuncts(&mut out);
        out
    }

    fn collect_le_conjuncts(&self, out: &mut Vec<(usize, i64)>) {
        match self {
            Expr::And(l, r) => {
                l.collect_le_conjuncts(out);
                r.collect_le_conjuncts(out);
            }
            Expr::Cmp(CmpOp::Le, l, r) => {
                if let (Expr::Col(c), Expr::Lit(d)) = (l.as_ref(), r.as_ref()) {
                    if let Some(b) = d.as_i64() {
                        out.push((*c, b));
                    }
                }
            }
            _ => {}
        }
    }

    /// All column indexes this expression references.
    pub fn referenced_columns(&self) -> std::collections::BTreeSet<usize> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            Expr::Col(i) => {
                out.insert(*i);
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, l, r)
            | Expr::And(l, r)
            | Expr::Or(l, r)
            | Expr::Add(l, r)
            | Expr::Sub(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e) | Expr::ExtractGroup(e) => e.collect_columns(out),
        }
    }

    /// Rewrite every column reference through `f`; returns `None` if any
    /// referenced column has no mapping. Used to re-target a base-table
    /// predicate onto a covering index's (narrower) schema.
    pub fn remap_columns(&self, f: &impl Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(f(*i)?),
            Expr::Lit(d) => Expr::Lit(d.clone()),
            Expr::Cmp(op, l, r) => Expr::Cmp(
                *op,
                Box::new(l.remap_columns(f)?),
                Box::new(r.remap_columns(f)?),
            ),
            Expr::And(l, r) => {
                Expr::And(Box::new(l.remap_columns(f)?), Box::new(r.remap_columns(f)?))
            }
            Expr::Or(l, r) => {
                Expr::Or(Box::new(l.remap_columns(f)?), Box::new(r.remap_columns(f)?))
            }
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(f)?)),
            Expr::Add(l, r) => {
                Expr::Add(Box::new(l.remap_columns(f)?), Box::new(r.remap_columns(f)?))
            }
            Expr::Sub(l, r) => {
                Expr::Sub(Box::new(l.remap_columns(f)?), Box::new(r.remap_columns(f)?))
            }
            Expr::ExtractGroup(e) => Expr::ExtractGroup(Box::new(e.remap_columns(f)?)),
        })
    }

    /// Shift every column reference by `offset` (for predicates written
    /// against the right side of a join, evaluated over `left ++ right`).
    pub fn shift_columns(&self, offset: usize) -> Expr {
        self.remap_columns(&|i| Some(i + offset))
            .expect("shift mapping is total")
    }

    fn eval(&self, batch: &Batch) -> Result<EvalCol> {
        match self {
            Expr::Col(i) => {
                let col = batch.column(*i)?;
                Ok(match col {
                    Column::I32(v) | Column::Date(v) => {
                        EvalCol::I64(v.iter().map(|&x| i64::from(x)).collect())
                    }
                    Column::I64(v) => EvalCol::I64(v.clone()),
                    Column::Utf8(v) => EvalCol::Str(v.clone()),
                })
            }
            Expr::Lit(d) => Ok(match d {
                Datum::I32(v) => EvalCol::ConstI64(i64::from(*v)),
                Datum::Date(v) => EvalCol::ConstI64(i64::from(*v)),
                Datum::I64(v) => EvalCol::ConstI64(*v),
                Datum::Utf8(s) => EvalCol::ConstStr(s.clone()),
            }),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(batch)?;
                let rv = r.eval(batch)?;
                cmp_eval(*op, lv, rv, batch.num_rows())
            }
            Expr::And(l, r) => {
                let mut lv = l.eval_predicate(batch)?;
                let rv = r.eval_predicate(batch)?;
                for (a, b) in lv.iter_mut().zip(&rv) {
                    *a = *a && *b;
                }
                Ok(EvalCol::Bool(lv))
            }
            Expr::Or(l, r) => {
                let mut lv = l.eval_predicate(batch)?;
                let rv = r.eval_predicate(batch)?;
                for (a, b) in lv.iter_mut().zip(&rv) {
                    *a = *a || *b;
                }
                Ok(EvalCol::Bool(lv))
            }
            Expr::Not(e) => {
                let mut v = e.eval_predicate(batch)?;
                for b in &mut v {
                    *b = !*b;
                }
                Ok(EvalCol::Bool(v))
            }
            Expr::Add(l, r) => arith_eval(l, r, batch, |a, b| a.wrapping_add(b)),
            Expr::Sub(l, r) => arith_eval(l, r, batch, |a, b| a.wrapping_sub(b)),
            Expr::ExtractGroup(e) => {
                let v = e.eval(batch)?;
                match v {
                    EvalCol::Str(strs) => Ok(EvalCol::I64(
                        strs.iter().map(|s| extract_group(s)).collect(),
                    )),
                    EvalCol::ConstStr(s) => Ok(EvalCol::ConstI64(extract_group(&s))),
                    other => Err(HybridError::TypeMismatch {
                        expected: "utf8",
                        found: other.type_name(),
                    }),
                }
            }
        }
    }
}

/// The paper's `extract_group` UDF: `"url_123/anything"` → `123`.
/// Non-conforming values map to a stable hash-derived group id so a tolerant
/// scan never aborts on malformed log lines.
pub fn extract_group(s: &str) -> i64 {
    if let Some(rest) = s.strip_prefix("url_") {
        let digits: &str = {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            &rest[..end]
        };
        if let Ok(v) = digits.parse::<i64>() {
            return v;
        }
    }
    // Stable fallback bucket; negative range so it never collides with
    // well-formed ids.
    -((crate::hash::hash_bytes(s.as_bytes(), 0xEC_0DE) % 1024) as i64) - 1
}

/// Intermediate evaluation value: vector or broadcast scalar.
#[derive(Debug, Clone)]
enum EvalCol {
    I64(Vec<i64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
    ConstI64(i64),
    ConstStr(String),
    ConstBool(bool),
}

impl EvalCol {
    fn type_name(&self) -> &'static str {
        match self {
            EvalCol::I64(_) | EvalCol::ConstI64(_) => "i64",
            EvalCol::Str(_) | EvalCol::ConstStr(_) => "utf8",
            EvalCol::Bool(_) | EvalCol::ConstBool(_) => "bool",
        }
    }
}

fn cmp_eval(op: CmpOp, l: EvalCol, r: EvalCol, rows: usize) -> Result<EvalCol> {
    use EvalCol::*;
    Ok(match (l, r) {
        (I64(a), I64(b)) => Bool((0..rows).map(|i| op.apply_ord(a[i].cmp(&b[i]))).collect()),
        (I64(a), ConstI64(b)) => Bool(a.iter().map(|&x| op.apply_ord(x.cmp(&b))).collect()),
        (ConstI64(a), I64(b)) => Bool(b.iter().map(|&x| op.apply_ord(a.cmp(&x))).collect()),
        (ConstI64(a), ConstI64(b)) => ConstBool(op.apply_ord(a.cmp(&b))),
        (Str(a), Str(b)) => Bool((0..rows).map(|i| op.apply_ord(a[i].cmp(&b[i]))).collect()),
        (Str(a), ConstStr(b)) => Bool(
            a.iter()
                .map(|x| op.apply_ord(x.as_str().cmp(b.as_str())))
                .collect(),
        ),
        (ConstStr(a), Str(b)) => Bool(
            b.iter()
                .map(|x| op.apply_ord(a.as_str().cmp(x.as_str())))
                .collect(),
        ),
        (ConstStr(a), ConstStr(b)) => ConstBool(op.apply_ord(a.cmp(&b))),
        (l, r) => {
            return Err(HybridError::TypeMismatch {
                expected: l.type_name(),
                found: r.type_name(),
            })
        }
    })
}

fn arith_eval(l: &Expr, r: &Expr, batch: &Batch, f: impl Fn(i64, i64) -> i64) -> Result<EvalCol> {
    use EvalCol::*;
    let lv = l.eval(batch)?;
    let rv = r.eval(batch)?;
    Ok(match (lv, rv) {
        (I64(a), I64(b)) => I64(a.iter().zip(&b).map(|(&x, &y)| f(x, y)).collect()),
        (I64(a), ConstI64(b)) => I64(a.iter().map(|&x| f(x, b)).collect()),
        (ConstI64(a), I64(b)) => I64(b.iter().map(|&y| f(a, y)).collect()),
        (ConstI64(a), ConstI64(b)) => ConstI64(f(a, b)),
        (l, r) => {
            return Err(HybridError::TypeMismatch {
                expected: l.type_name(),
                found: r.type_name(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::DataType;
    use crate::schema::Schema;

    fn batch() -> Batch {
        let schema = Schema::from_pairs(&[
            ("k", DataType::I32),
            ("d", DataType::Date),
            ("s", DataType::Utf8),
        ]);
        Batch::new(
            schema,
            vec![
                Column::I32(vec![5, 10, 15, 20]),
                Column::Date(vec![100, 101, 102, 103]),
                Column::Utf8(vec![
                    "url_7/a".into(),
                    "url_42".into(),
                    "junk".into(),
                    "url_7/zz".into(),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn col_le_predicate() {
        let p = Expr::col_le(0, 10).eval_predicate(&batch()).unwrap();
        assert_eq!(p, vec![true, true, false, false]);
    }

    #[test]
    fn and_or_not() {
        let b = batch();
        let a = Expr::col_le(0, 10);
        let c = Expr::col(1).ge(Expr::lit_i64(101));
        assert_eq!(
            a.clone().and(c.clone()).eval_predicate(&b).unwrap(),
            vec![false, true, false, false]
        );
        assert_eq!(
            a.clone().or(c).eval_predicate(&b).unwrap(),
            vec![true, true, true, true]
        );
        assert_eq!(
            Expr::Not(Box::new(a)).eval_predicate(&b).unwrap(),
            vec![false, false, true, true]
        );
    }

    #[test]
    fn date_difference_window() {
        // days(d) - 100 between 0 and 1 → first two rows
        let b = batch();
        let diff = Expr::col(1).sub(Expr::lit_i64(100));
        let p = diff
            .clone()
            .ge(Expr::lit_i64(0))
            .and(diff.le(Expr::lit_i64(1)))
            .eval_predicate(&b)
            .unwrap();
        assert_eq!(p, vec![true, true, false, false]);
    }

    #[test]
    fn extract_group_parses_and_falls_back() {
        assert_eq!(extract_group("url_123/path?q"), 123);
        assert_eq!(extract_group("url_0"), 0);
        let fb = extract_group("garbage");
        assert!(fb < 0);
        assert_eq!(fb, extract_group("garbage"));
        assert!(extract_group("url_/nope") < 0);
    }

    #[test]
    fn extract_group_expr_over_column() {
        let g = Expr::ExtractGroup(Box::new(Expr::col(2)))
            .eval_i64(&batch())
            .unwrap();
        assert_eq!(g[0], 7);
        assert_eq!(g[1], 42);
        assert!(g[2] < 0);
        assert_eq!(g[3], 7);
    }

    #[test]
    fn string_equality() {
        let p = Expr::col(2)
            .eq(Expr::Lit(Datum::Utf8("junk".into())))
            .eval_predicate(&batch())
            .unwrap();
        assert_eq!(p, vec![false, false, true, false]);
    }

    #[test]
    fn type_errors_surface() {
        // comparing string col to int literal
        let e = Expr::col(2).le(Expr::lit_i64(3)).eval_predicate(&batch());
        assert!(e.is_err());
        // arithmetic over strings
        let e = Expr::col(2).sub(Expr::lit_i64(1)).eval_i64(&batch());
        assert!(e.is_err());
        // int expr used as predicate
        let e = Expr::col(0).eval_predicate(&batch());
        assert!(e.is_err());
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::col_le(2, 5).and(Expr::col(0).sub(Expr::col(7)).ge(Expr::lit_i64(0)));
        let cols: Vec<usize> = e.referenced_columns().into_iter().collect();
        assert_eq!(cols, vec![0, 2, 7]);
        assert!(Expr::lit_i64(1).referenced_columns().is_empty());
    }

    #[test]
    fn remap_columns_total_and_partial() {
        let e = Expr::col_le(2, 5).and(Expr::col(4).ge(Expr::lit_i64(1)));
        // total mapping
        let mapped = e.remap_columns(&|i| Some(i * 10)).unwrap();
        let cols: Vec<usize> = mapped.referenced_columns().into_iter().collect();
        assert_eq!(cols, vec![20, 40]);
        // partial mapping fails as a whole
        assert!(e.remap_columns(&|i| (i == 2).then_some(0)).is_none());
    }

    #[test]
    fn shift_columns_moves_references() {
        let b = batch();
        // predicate over col 0 of a hypothetical right side that sits at
        // offset 1 in `b`
        let e = Expr::col(0).ge(Expr::lit_i64(101)).shift_columns(1);
        assert_eq!(e.eval_predicate(&b).unwrap(), vec![false, true, true, true]);
    }

    #[test]
    fn const_folding_paths() {
        let b = batch();
        let p = Expr::lit_i64(1)
            .le(Expr::lit_i64(2))
            .eval_predicate(&b)
            .unwrap();
        assert_eq!(p, vec![true; 4]);
        let v = Expr::lit_i64(3).sub(Expr::lit_i64(1)).eval_i64(&b).unwrap();
        assert_eq!(v, vec![2; 4]);
    }
}
