//! Error type shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, HybridError>;

/// Errors surfaced by the simulated warehouse components.
///
/// The variants are coarse on purpose: each subsystem attaches a
/// human-readable message, and the integration tests assert on the variant,
/// not the text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HybridError {
    /// A schema/arity mismatch between producer and consumer.
    SchemaMismatch(String),
    /// A value had a different [`crate::DataType`] than the operation needed.
    TypeMismatch {
        expected: &'static str,
        found: &'static str,
    },
    /// Column index out of bounds for the schema at hand.
    ColumnOutOfBounds { index: usize, width: usize },
    /// Underlying storage failure (simulated HDFS / format decode).
    Storage(String),
    /// Simulated network failure (peer gone, channel closed).
    Net(String),
    /// A fabric endpoint was disconnected (failure injection) while traffic
    /// for it was in flight. `stream` is the logical stream tag label of the
    /// affected transfer when known (e.g. `"hdfs_shuffle"`), `None` for a
    /// bare endpoint receive.
    Disconnected {
        endpoint: String,
        stream: Option<String>,
    },
    /// A worker task was cancelled because a peer in the same parallel run
    /// failed first — the peer's error is the root cause, this one is not.
    Cancelled { worker: String },
    /// A chaos-injected fault that recovery (bounded retry, duplicate
    /// dedup) could not absorb. `fault` names the injected fault kind
    /// (e.g. `"drop"`); `endpoint`/`stream` locate the affected transfer.
    /// Chaos-suite assertions match this variant, never message text.
    FaultInjected {
        fault: String,
        endpoint: String,
        stream: Option<String>,
    },
    /// Query execution failure (e.g. hash table memory limit exceeded).
    Exec(String),
    /// A worker died or was killed by failure injection.
    WorkerFailed { worker: usize, reason: String },
    /// Invalid configuration (cluster sizes, selectivities, BF parameters).
    InvalidConfig(String),
    /// A memory reservation against a [`BufferPool`](crate::mempool::BufferPool)
    /// could not be granted: admitting it would over-commit the pool's fixed
    /// total. `scope` names the would-be holder (a query or pool scope).
    /// Deliberately **not retryable** at the service layer — retrying the
    /// same reservation against the same budget would spin.
    MemoryExceeded {
        scope: String,
        requested: u64,
        budget: u64,
    },
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            HybridError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            HybridError::ColumnOutOfBounds { index, width } => {
                write!(
                    f,
                    "column index {index} out of bounds for schema of width {width}"
                )
            }
            HybridError::Storage(m) => write!(f, "storage error: {m}"),
            HybridError::Net(m) => write!(f, "network error: {m}"),
            HybridError::Disconnected { endpoint, stream } => match stream {
                Some(s) => write!(f, "endpoint {endpoint} disconnected (stream {s})"),
                None => write!(f, "endpoint {endpoint} disconnected"),
            },
            HybridError::Cancelled { worker } => {
                write!(f, "worker {worker} cancelled after a peer failure")
            }
            HybridError::FaultInjected {
                fault,
                endpoint,
                stream,
            } => match stream {
                Some(s) => write!(
                    f,
                    "injected {fault} fault on {endpoint} (stream {s}) exhausted recovery"
                ),
                None => write!(f, "injected {fault} fault on {endpoint} exhausted recovery"),
            },
            HybridError::Exec(m) => write!(f, "execution error: {m}"),
            HybridError::WorkerFailed { worker, reason } => {
                write!(f, "worker {worker} failed: {reason}")
            }
            HybridError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            HybridError::MemoryExceeded {
                scope,
                requested,
                budget,
            } => write!(
                f,
                "memory budget exceeded for {scope}: requested {requested} bytes, budget {budget}"
            ),
        }
    }
}

impl std::error::Error for HybridError {}

impl HybridError {
    /// Short helper used by executors.
    pub fn exec(msg: impl Into<String>) -> Self {
        HybridError::Exec(msg.into())
    }

    /// Short helper used by config validation.
    pub fn config(msg: impl Into<String>) -> Self {
        HybridError::InvalidConfig(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = HybridError::ColumnOutOfBounds { index: 9, width: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(HybridError::exec("x"), HybridError::Exec(_)));
        assert!(matches!(
            HybridError::config("x"),
            HybridError::InvalidConfig(_)
        ));
    }

    #[test]
    fn memory_exceeded_display_names_scope_and_amounts() {
        let e = HybridError::MemoryExceeded {
            scope: "query-7".into(),
            requested: 4096,
            budget: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("query-7") && s.contains("4096") && s.contains("1024"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&HybridError::Net("down".into()));
    }
}
