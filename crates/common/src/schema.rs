//! Table schemas.

use crate::datum::DataType;
use crate::error::{HybridError, Result};

/// A named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields.
///
/// Projection in the engines is expressed as a list of column indexes into a
/// schema; [`Schema::project`] derives the output schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, index: usize) -> Result<&Field> {
        self.fields
            .get(index)
            .ok_or(HybridError::ColumnOutOfBounds {
                index,
                width: self.fields.len(),
            })
    }

    /// Resolve a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| HybridError::SchemaMismatch(format!("no column named {name:?}")))
    }

    /// Derive the schema produced by projecting `indexes`.
    pub fn project(&self, indexes: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indexes.len());
        for &i in indexes {
            fields.push(self.field(i)?.clone());
        }
        Ok(Schema::new(fields))
    }

    /// Schema of `self` concatenated with `other` (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Fixed per-row wire width: the sum of fixed widths of all fields.
    /// String payload bytes are variable and accounted per-batch.
    pub fn fixed_row_width(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.data_type.fixed_wire_width())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("joinKey", DataType::I32),
            ("uniqKey", DataType::I64),
            ("url", DataType::Utf8),
            ("d", DataType::Date),
        ])
    }

    #[test]
    fn index_of_and_field() {
        let s = sample();
        assert_eq!(s.index_of("url").unwrap(), 2);
        assert!(s.index_of("nope").is_err());
        assert_eq!(s.field(0).unwrap().name, "joinKey");
        assert!(matches!(
            s.field(9),
            Err(HybridError::ColumnOutOfBounds { index: 9, width: 4 })
        ));
    }

    #[test]
    fn projection_derives_sub_schema() {
        let s = sample();
        let p = s.project(&[3, 0]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).unwrap().name, "d");
        assert_eq!(p.field(1).unwrap().name, "joinKey");
        assert!(s.project(&[17]).is_err());
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let j = s.join(&Schema::from_pairs(&[("x", DataType::I32)]));
        assert_eq!(j.len(), 5);
        assert_eq!(j.field(4).unwrap().name, "x");
    }

    #[test]
    fn fixed_row_width_sums_fields() {
        // 4 + 8 + 4(len prefix) + 4
        assert_eq!(sample().fixed_row_width(), 20);
    }
}
