//! Hash-based group-by aggregation.
//!
//! Both engines end the paper's query with `group by extract_group(...)`
//! plus `count(*)`. JEN computes **partial** aggregates on every worker and
//! merges them on a designated worker (§3.2–§3.4 step "compute final
//! aggregation"); the EDW does the same across DB workers. The merge works
//! because all supported aggregates are commutative monoids over `i64`.

use crate::batch::{Batch, Column};
use crate::datum::DataType;
use crate::error::{HybridError, Result};
use crate::schema::Schema;
use std::collections::HashMap;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// `count(*)`
    Count,
    /// `sum(col)` over an integer column of the input batch.
    SumI64(usize),
    /// `min(col)` / `max(col)` over an integer column.
    MinI64(usize),
    MaxI64(usize),
}

impl AggSpec {
    fn init(self) -> i64 {
        match self {
            AggSpec::Count => 0,
            AggSpec::SumI64(_) => 0,
            AggSpec::MinI64(_) => i64::MAX,
            AggSpec::MaxI64(_) => i64::MIN,
        }
    }

    fn update(self, acc: i64, batch: &Batch, row: usize) -> Result<i64> {
        Ok(match self {
            AggSpec::Count => acc + 1,
            AggSpec::SumI64(c) => acc + batch.column(c)?.key_at(row)?,
            AggSpec::MinI64(c) => acc.min(batch.column(c)?.key_at(row)?),
            AggSpec::MaxI64(c) => acc.max(batch.column(c)?.key_at(row)?),
        })
    }

    /// Merge two partial accumulator values.
    fn merge(self, a: i64, b: i64) -> i64 {
        match self {
            AggSpec::Count | AggSpec::SumI64(_) => a + b,
            AggSpec::MinI64(_) => a.min(b),
            AggSpec::MaxI64(_) => a.max(b),
        }
    }
}

/// A streaming hash aggregator: feed `(group_keys, batch)` pairs, read out a
/// `(group, value…)` batch, or merge partial outputs from other workers.
#[derive(Debug)]
pub struct HashAggregator {
    aggs: Vec<AggSpec>,
    groups: HashMap<i64, Vec<i64>>,
}

impl HashAggregator {
    pub fn new(aggs: Vec<AggSpec>) -> HashAggregator {
        HashAggregator {
            aggs,
            groups: HashMap::new(),
        }
    }

    /// Consume a batch. `group_keys[i]` is the (already computed) group of
    /// row `i` — typically `Expr::ExtractGroup(...).eval_i64(batch)`.
    pub fn update(&mut self, group_keys: &[i64], batch: &Batch) -> Result<()> {
        if group_keys.len() != batch.num_rows() {
            return Err(HybridError::SchemaMismatch(format!(
                "{} group keys for a batch of {} rows",
                group_keys.len(),
                batch.num_rows()
            )));
        }
        for (row, &g) in group_keys.iter().enumerate() {
            let accs = self
                .groups
                .entry(g)
                .or_insert_with(|| self.aggs.iter().map(|a| a.init()).collect());
            for (acc, agg) in accs.iter_mut().zip(&self.aggs) {
                *acc = agg.update(*acc, batch, row)?;
            }
        }
        Ok(())
    }

    /// Merge another worker's partial output (a batch produced by
    /// [`HashAggregator::finish`] with the same agg list).
    pub fn merge_partial(&mut self, partial: &Batch) -> Result<()> {
        if partial.schema().len() != 1 + self.aggs.len() {
            return Err(HybridError::SchemaMismatch(format!(
                "partial aggregate of width {} does not match {} aggregates",
                partial.schema().len(),
                self.aggs.len()
            )));
        }
        let keys = partial.column(0)?;
        for row in 0..partial.num_rows() {
            let g = keys.key_at(row)?;
            let accs = self
                .groups
                .entry(g)
                .or_insert_with(|| self.aggs.iter().map(|a| a.init()).collect());
            for (i, agg) in self.aggs.iter().enumerate() {
                let v = partial.column(i + 1)?.key_at(row)?;
                accs[i] = agg.merge(accs[i], v);
            }
        }
        Ok(())
    }

    /// Number of groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Emit the result batch `(group, agg1, agg2, …)` sorted by group key —
    /// sorted so results compare deterministically across all algorithms.
    pub fn finish(self) -> Batch {
        let mut entries: Vec<(i64, Vec<i64>)> = self.groups.into_iter().collect();
        entries.sort_unstable_by_key(|(g, _)| *g);
        let mut fields = vec![("group", DataType::I64)];
        for (i, _) in self.aggs.iter().enumerate() {
            fields.push((["agg0", "agg1", "agg2", "agg3"][i.min(3)], DataType::I64));
        }
        let schema = Schema::from_pairs(&fields);
        let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(entries.len()); 1 + self.aggs.len()];
        for (g, accs) in entries {
            cols[0].push(g);
            for (i, v) in accs.into_iter().enumerate() {
                cols[i + 1].push(v);
            }
        }
        Batch::new(schema, cols.into_iter().map(Column::I64).collect())
            .expect("aggregator output is well-formed by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[i64]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("v", DataType::I64)]),
            vec![Column::I64(vals.to_vec())],
        )
        .unwrap()
    }

    #[test]
    fn count_groups() {
        let mut agg = HashAggregator::new(vec![AggSpec::Count]);
        agg.update(&[1, 2, 1, 1], &batch(&[0, 0, 0, 0])).unwrap();
        let out = agg.finish();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).unwrap().as_i64().unwrap(), &[1, 2]);
        assert_eq!(out.column(1).unwrap().as_i64().unwrap(), &[3, 1]);
    }

    #[test]
    fn sum_min_max() {
        let mut agg = HashAggregator::new(vec![
            AggSpec::SumI64(0),
            AggSpec::MinI64(0),
            AggSpec::MaxI64(0),
        ]);
        agg.update(&[7, 7, 8], &batch(&[5, -2, 100])).unwrap();
        let out = agg.finish();
        assert_eq!(out.column(0).unwrap().as_i64().unwrap(), &[7, 8]);
        assert_eq!(out.column(1).unwrap().as_i64().unwrap(), &[3, 100]); // sums
        assert_eq!(out.column(2).unwrap().as_i64().unwrap(), &[-2, 100]); // mins
        assert_eq!(out.column(3).unwrap().as_i64().unwrap(), &[5, 100]); // maxs
    }

    #[test]
    fn partial_merge_equals_global() {
        // two workers aggregate halves; merging partials == aggregating all
        let groups = [1i64, 2, 3, 1, 2, 1];
        let values = [10i64, 20, 30, 40, 50, 60];

        let mut global = HashAggregator::new(vec![AggSpec::Count, AggSpec::SumI64(0)]);
        global.update(&groups, &batch(&values)).unwrap();
        let expected = global.finish();

        let mut w1 = HashAggregator::new(vec![AggSpec::Count, AggSpec::SumI64(0)]);
        w1.update(&groups[..3], &batch(&values[..3])).unwrap();
        let mut w2 = HashAggregator::new(vec![AggSpec::Count, AggSpec::SumI64(0)]);
        w2.update(&groups[3..], &batch(&values[3..])).unwrap();

        let mut merged = HashAggregator::new(vec![AggSpec::Count, AggSpec::SumI64(0)]);
        merged.merge_partial(&w1.finish()).unwrap();
        merged.merge_partial(&w2.finish()).unwrap();
        assert_eq!(merged.finish(), expected);
    }

    #[test]
    fn empty_aggregation() {
        let agg = HashAggregator::new(vec![AggSpec::Count]);
        let out = agg.finish();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().len(), 2);
    }

    #[test]
    fn mismatched_group_keys_error() {
        let mut agg = HashAggregator::new(vec![AggSpec::Count]);
        assert!(agg.update(&[1, 2], &batch(&[0])).is_err());
    }

    #[test]
    fn merge_width_checked() {
        let mut agg = HashAggregator::new(vec![AggSpec::Count, AggSpec::SumI64(0)]);
        let narrow = HashAggregator::new(vec![AggSpec::Count]).finish();
        assert!(agg.merge_partial(&narrow).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merging arbitrary partitions of the input equals one-shot
        /// aggregation (the partial-aggregation correctness property that
        /// every HDFS-side join relies on).
        #[test]
        fn partial_aggregation_is_partition_invariant(
            rows in proptest::collection::vec((0i64..10, -100i64..100), 0..80),
            split in 0usize..80,
        ) {
            let split = split.min(rows.len());
            let groups: Vec<i64> = rows.iter().map(|(g, _)| *g).collect();
            let values: Vec<i64> = rows.iter().map(|(_, v)| *v).collect();

            let aggs = || vec![AggSpec::Count, AggSpec::SumI64(0), AggSpec::MinI64(0), AggSpec::MaxI64(0)];

            let mut global = HashAggregator::new(aggs());
            global.update(&groups, &batch(&values)).unwrap();
            let expected = global.finish();

            let mut a = HashAggregator::new(aggs());
            a.update(&groups[..split], &batch(&values[..split])).unwrap();
            let mut b = HashAggregator::new(aggs());
            b.update(&groups[split..], &batch(&values[split..])).unwrap();
            let mut merged = HashAggregator::new(aggs());
            merged.merge_partial(&a.finish()).unwrap();
            merged.merge_partial(&b.finish()).unwrap();
            prop_assert_eq!(merged.finish(), expected);
        }
    }

    fn batch(vals: &[i64]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("v", DataType::I64)]),
            vec![Column::I64(vals.to_vec())],
        )
        .unwrap()
    }
}
