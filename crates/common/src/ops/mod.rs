//! Vectorized relational operators shared by both engines.
//!
//! The EDW executor and JEN run the *same* physical operators — hash join,
//! hash group-by aggregation, and hash partitioning — differing only in
//! where the data comes from and which network the exchanges cross. Keeping
//! the operators here guarantees the two engines compute identical results,
//! which the integration tests exploit: every join algorithm of the paper
//! must produce the same answer.

pub mod aggregate;
pub mod hash_join;
pub mod partition;

pub use aggregate::{AggSpec, HashAggregator};
pub use hash_join::HashJoiner;
pub use partition::{partition_by_key, partition_sel};
