//! Hash partitioning of batches — the shuffle's local half.
//!
//! Given a batch and a partitioning function over the join key, scatter the
//! rows into one output batch per destination. The repartition and zigzag
//! joins use [`crate::hash::agreed_shuffle_partition`] here (the hash
//! function JEN exposes to the database, §4.3); the EDW's internal shuffles
//! use [`crate::hash::db_partition`].
//!
//! Both entry points are vectorized: the key column is widened once per
//! batch, destinations are computed in one pass, and rows move with
//! column-at-a-time gathers instead of per-row pushes.

use crate::batch::{Batch, SelectionVector};
use crate::error::Result;

/// Per-destination selection vectors for `batch`: row `r` appears in
/// `sel[part_fn(key[r], n)]`. The shuffle's routing step, separated from
/// the row movement so callers can gather into per-destination buffers.
pub fn partition_sel(
    batch: &Batch,
    key_col: usize,
    n: usize,
    part_fn: impl Fn(i64, usize) -> usize,
) -> Result<Vec<SelectionVector>> {
    assert!(n > 0, "cannot partition into zero parts");
    let keys = batch.column(key_col)?.keys_i64()?;
    let mut sel: Vec<Vec<u32>> = (0..n).map(|_| Vec::new()).collect();
    for (row, &key) in keys.iter().enumerate() {
        let dest = part_fn(key, n);
        debug_assert!(dest < n, "partition function out of range");
        sel[dest].push(row as u32);
    }
    Ok(sel.into_iter().map(SelectionVector::from_indexes).collect())
}

/// Split `batch` into `n` batches by applying `part_fn(key, n)` to the join
/// key in column `key_col` of every row.
pub fn partition_by_key(
    batch: &Batch,
    key_col: usize,
    n: usize,
    part_fn: impl Fn(i64, usize) -> usize,
) -> Result<Vec<Batch>> {
    let sel = partition_sel(batch, key_col, n, part_fn)?;
    Ok(sel.iter().map(|s| batch.take_sel(s)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::datum::DataType;
    use crate::hash::agreed_shuffle_partition;
    use crate::schema::Schema;

    fn batch(keys: &[i32]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)]),
            vec![
                Column::I32(keys.to_vec()),
                Column::I64(keys.iter().map(|&k| i64::from(k) * 10).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partitions_cover_input_exactly() {
        let b = batch(&(0..100).collect::<Vec<_>>());
        let parts = partition_by_key(&b, 0, 7, agreed_shuffle_partition).unwrap();
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn same_key_always_same_partition() {
        let b = batch(&[5, 5, 5, 9, 9]);
        let parts = partition_by_key(&b, 0, 4, agreed_shuffle_partition).unwrap();
        let p5 = agreed_shuffle_partition(5, 4);
        let p9 = agreed_shuffle_partition(9, 4);
        // all copies of a key land together
        let k5 = parts[p5].column(0).unwrap().as_i32().unwrap();
        assert_eq!(k5.iter().filter(|&&k| k == 5).count(), 3);
        let k9 = parts[p9].column(0).unwrap().as_i32().unwrap();
        assert_eq!(k9.iter().filter(|&&k| k == 9).count(), 2);
        for (i, p) in parts.iter().enumerate() {
            if i != p5 && i != p9 {
                assert_eq!(p.num_rows(), 0);
            }
        }
    }

    #[test]
    fn rows_keep_all_columns() {
        let b = batch(&[3]);
        let parts = partition_by_key(&b, 0, 2, |_, _| 1).unwrap();
        assert_eq!(parts[0].num_rows(), 0);
        assert_eq!(parts[1].num_rows(), 1);
        assert_eq!(parts[1].column(1).unwrap().as_i64().unwrap(), &[30]);
    }

    #[test]
    fn single_partition_is_identity() {
        let b = batch(&[1, 2, 3]);
        let parts = partition_by_key(&b, 0, 1, agreed_shuffle_partition).unwrap();
        assert_eq!(parts[0], b);
    }

    #[test]
    fn selection_route_agrees_with_materialized_partitions() {
        let b = batch(&(0..50).collect::<Vec<_>>());
        let parts = partition_by_key(&b, 0, 3, agreed_shuffle_partition).unwrap();
        let sel = partition_sel(&b, 0, 3, agreed_shuffle_partition).unwrap();
        for (p, s) in parts.iter().zip(&sel) {
            assert_eq!(p, &b.take_sel(s));
        }
    }
}
