//! In-memory equi-hash-join.
//!
//! Build over one input, probe with the other, exactly as JEN does in the
//! zigzag join (§4.4): the build side is chosen by the caller (JEN builds on
//! the filtered HDFS data because it arrives first; the DB optimizer builds
//! on whichever side is smaller).

use crate::batch::{Batch, BatchBuilder};
use crate::error::{HybridError, Result};
use crate::schema::Schema;
use std::collections::HashMap;

/// A hash join: `build` batches are indexed by key; `probe` batches stream
/// through and emit `build_row ++ probe_row` outputs.
///
/// ```
/// use hybrid_common::batch::{Batch, Column};
/// use hybrid_common::datum::DataType;
/// use hybrid_common::ops::HashJoiner;
/// use hybrid_common::schema::Schema;
///
/// let schema = Schema::from_pairs(&[("k", DataType::I32)]);
/// let mut joiner = HashJoiner::new(schema.clone(), 0);
/// joiner.build(Batch::new(schema.clone(), vec![Column::I32(vec![1, 2, 2])]).unwrap()).unwrap();
/// let probe = Batch::new(schema, vec![Column::I32(vec![2, 3])]).unwrap();
/// let out = joiner.probe(&probe, 0).unwrap();
/// assert_eq!(out.num_rows(), 2); // key 2 matches twice, key 3 never
/// ```
#[derive(Debug)]
pub struct HashJoiner {
    build_schema: Schema,
    key_col: usize,
    /// key -> (batch index, row index) list
    table: HashMap<i64, Vec<(u32, u32)>>,
    batches: Vec<Batch>,
    rows: usize,
    /// Optional cap on buffered build rows (the paper's JEN "requires that
    /// all data fit in memory"; exceeding the cap is a clean error unless
    /// the caller handles spilling).
    memory_limit_rows: Option<usize>,
}

impl HashJoiner {
    /// Create a joiner that builds on batches of `build_schema`, keyed by
    /// column `key_col` of the build side.
    pub fn new(build_schema: Schema, key_col: usize) -> HashJoiner {
        HashJoiner {
            build_schema,
            key_col,
            table: HashMap::new(),
            batches: Vec::new(),
            rows: 0,
            memory_limit_rows: None,
        }
    }

    /// Enforce a build-side row cap (used by failure/spill tests).
    pub fn with_memory_limit(mut self, rows: usize) -> HashJoiner {
        self.memory_limit_rows = Some(rows);
        self
    }

    /// Number of build rows indexed so far.
    pub fn build_rows(&self) -> usize {
        self.rows
    }

    /// Add a build-side batch (may be called many times as shuffled data
    /// arrives).
    pub fn build(&mut self, batch: Batch) -> Result<()> {
        if batch.schema() != &self.build_schema {
            return Err(HybridError::SchemaMismatch(
                "build batch schema differs from joiner's".into(),
            ));
        }
        if let Some(limit) = self.memory_limit_rows {
            if self.rows + batch.num_rows() > limit {
                return Err(HybridError::exec(format!(
                    "hash join build side exceeds memory limit of {limit} rows"
                )));
            }
        }
        let key_col = batch.column(self.key_col)?;
        let batch_idx = self.batches.len() as u32;
        for row in 0..batch.num_rows() {
            let key = key_col.key_at(row)?;
            self.table
                .entry(key)
                .or_default()
                .push((batch_idx, row as u32));
        }
        self.rows += batch.num_rows();
        self.batches.push(batch);
        Ok(())
    }

    /// Probe with a batch; returns `build_row ++ probe_row` matches.
    ///
    /// `probe_key_col` indexes into the probe batch.
    pub fn probe(&self, probe: &Batch, probe_key_col: usize) -> Result<Batch> {
        let out_schema = self.build_schema.join(probe.schema());
        let mut out = BatchBuilder::new(out_schema);
        let keys = probe.column(probe_key_col)?;
        for prow in 0..probe.num_rows() {
            let key = keys.key_at(prow)?;
            if let Some(matches) = self.table.get(&key) {
                for &(bi, brow) in matches {
                    out.push_joined(&self.batches[bi as usize], brow as usize, probe, prow)?;
                }
            }
        }
        Ok(out.finish())
    }

    /// Distinct build keys (used for semi-join shipping in the baseline).
    pub fn distinct_keys(&self) -> Vec<i64> {
        let mut keys: Vec<i64> = self.table.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::datum::{DataType, Datum};

    fn build_batch(keys: &[i32], vals: &[i64]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("bk", DataType::I32), ("bv", DataType::I64)]),
            vec![Column::I32(keys.to_vec()), Column::I64(vals.to_vec())],
        )
        .unwrap()
    }

    fn probe_batch(keys: &[i32], tags: &[&str]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("pk", DataType::I32), ("pt", DataType::Utf8)]),
            vec![
                Column::I32(keys.to_vec()),
                Column::Utf8(tags.iter().map(|s| s.to_string()).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let mut j = HashJoiner::new(build_batch(&[], &[]).schema().clone(), 0);
        j.build(build_batch(&[1, 2, 2], &[10, 20, 21])).unwrap();
        let out = j
            .probe(&probe_batch(&[2, 3, 1], &["a", "b", "c"]), 0)
            .unwrap();
        // key 2 matches two build rows, key 3 none, key 1 one.
        assert_eq!(out.num_rows(), 3);
        let mut rows: Vec<(i64, String)> = (0..3)
            .map(|r| {
                let row = out.row(r);
                (
                    row[1].as_i64().unwrap(),
                    row[3].as_str().unwrap().to_string(),
                )
            })
            .collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![(10, "c".into()), (20, "a".into()), (21, "a".into())]
        );
    }

    #[test]
    fn multiple_build_batches() {
        let schema = build_batch(&[], &[]).schema().clone();
        let mut j = HashJoiner::new(schema, 0);
        j.build(build_batch(&[1], &[10])).unwrap();
        j.build(build_batch(&[2], &[20])).unwrap();
        assert_eq!(j.build_rows(), 2);
        let out = j.probe(&probe_batch(&[1, 2], &["x", "y"]), 0).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn empty_sides() {
        let schema = build_batch(&[], &[]).schema().clone();
        let j = HashJoiner::new(schema.clone(), 0);
        let out = j.probe(&probe_batch(&[1, 2], &["x", "y"]), 0).unwrap();
        assert_eq!(out.num_rows(), 0);
        // joined schema still correct
        assert_eq!(out.schema().len(), 4);

        let mut j = HashJoiner::new(schema, 0);
        j.build(build_batch(&[1], &[10])).unwrap();
        let out = j.probe(&probe_batch(&[], &[]), 0).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn schema_mismatch_on_build() {
        let mut j = HashJoiner::new(build_batch(&[], &[]).schema().clone(), 0);
        assert!(j.build(probe_batch(&[1], &["x"])).is_err());
    }

    #[test]
    fn memory_limit_is_enforced() {
        let schema = build_batch(&[], &[]).schema().clone();
        let mut j = HashJoiner::new(schema, 0).with_memory_limit(2);
        j.build(build_batch(&[1, 2], &[10, 20])).unwrap();
        let err = j.build(build_batch(&[3], &[30])).unwrap_err();
        assert!(matches!(err, HybridError::Exec(_)));
    }

    #[test]
    fn distinct_keys_sorted() {
        let mut j = HashJoiner::new(build_batch(&[], &[]).schema().clone(), 0);
        j.build(build_batch(&[5, 1, 5, 3], &[0, 0, 0, 0])).unwrap();
        assert_eq!(j.distinct_keys(), vec![1, 3, 5]);
    }

    #[test]
    fn join_preserves_all_columns() {
        let mut j = HashJoiner::new(build_batch(&[], &[]).schema().clone(), 0);
        j.build(build_batch(&[7], &[70])).unwrap();
        let out = j.probe(&probe_batch(&[7], &["t"]), 0).unwrap();
        assert_eq!(
            out.row(0),
            vec![
                Datum::I32(7),
                Datum::I64(70),
                Datum::I32(7),
                Datum::Utf8("t".into())
            ]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::batch::Column;
    use crate::datum::DataType;
    use proptest::prelude::*;
    use std::collections::HashMap as Map;

    proptest! {
        /// Join output multiplicity equals the product of per-key
        /// multiplicities — the defining property of an inner join.
        #[test]
        fn multiplicities_match_nested_loop(
            build_keys in proptest::collection::vec(0i32..20, 0..60),
            probe_keys in proptest::collection::vec(0i32..20, 0..60),
        ) {
            let bschema = Schema::from_pairs(&[("k", DataType::I32)]);
            let mut j = HashJoiner::new(bschema.clone(), 0);
            j.build(Batch::new(bschema, vec![Column::I32(build_keys.clone())]).unwrap()).unwrap();
            let pschema = Schema::from_pairs(&[("k", DataType::I32)]);
            let probe = Batch::new(pschema, vec![Column::I32(probe_keys.clone())]).unwrap();
            let out = j.probe(&probe, 0).unwrap();

            let mut bcount: Map<i32, usize> = Map::new();
            for k in &build_keys { *bcount.entry(*k).or_default() += 1; }
            let expected: usize = probe_keys.iter()
                .map(|k| bcount.get(k).copied().unwrap_or(0))
                .sum();
            prop_assert_eq!(out.num_rows(), expected);
            // and every output row has equal keys on both sides
            for r in 0..out.num_rows() {
                let row = out.row(r);
                prop_assert_eq!(row[0].as_i64(), row[1].as_i64());
            }
        }
    }
}
