//! Span-based phase recording for the join pipelines.
//!
//! The paper's Fig. 7 argues its case with a *timeline*: on each JEN worker
//! the scan, Bloom-filter application, shuffle and join phases overlap, and
//! the total elapsed time is governed by the slowest phase rather than the
//! sum. The metrics registry can't show that — counters have no time axis.
//! This module adds one:
//!
//! * a [`Span`] is one contiguous stretch of work — a worker, a
//!   [`Stage`], start/end timestamps, and the bytes/tuples it processed;
//! * a [`Tracer`] is the cloneable recorder handed to workers alongside
//!   [`crate::metrics::Metrics`]; workers open an [`ActiveSpan`] around
//!   each phase;
//! * a [`Timeline`] is the collected, time-sorted span set for one run. It
//!   serializes to JSON (for the bench harness and `timeline_report`) and
//!   answers the overlap questions the cost model cares about: how much of
//!   stage A's busy time coincided with stage B's.
//!
//! Timestamps are microseconds relative to the tracer's epoch (set at
//! construction and on [`Tracer::reset`]), so timelines from different runs
//! all start near zero.
//!
//! Span recording is deliberately coarse — one span per phase per worker
//! (or per batch group), not per tuple — so a mutex-protected vector is
//! plenty; the high-frequency path stays in the sharded metrics registry.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A pipeline stage, as drawn in the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Reading table blocks (HDFS scan or DB partition scan).
    Scan,
    /// Building a Bloom filter from join keys.
    BloomBuild,
    /// Filtering scanned rows through a received Bloom filter.
    BloomApply,
    /// Partitioning + sending tuples to their join site.
    ShuffleSend,
    /// Draining shuffled tuples from the fabric.
    ShuffleRecv,
    /// Inserting build-side tuples into the join hash table.
    HashBuild,
    /// Probing the hash table with the other side.
    Probe,
    /// Partial/final aggregation of join output.
    Aggregate,
    /// Mid-query re-optimization: the adaptive controller abandoning the
    /// running plan and restarting under a new strategy. The span links the
    /// abandoned timeline (everything before it) to the restarted one
    /// (everything it covers).
    Replan,
}

impl Stage {
    /// Stable lowercase name used in JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Scan => "scan",
            Stage::BloomBuild => "bloom_build",
            Stage::BloomApply => "bloom_apply",
            Stage::ShuffleSend => "shuffle_send",
            Stage::ShuffleRecv => "shuffle_recv",
            Stage::HashBuild => "hash_build",
            Stage::Probe => "probe",
            Stage::Aggregate => "aggregate",
            Stage::Replan => "replan",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Some(match name {
            "scan" => Stage::Scan,
            "bloom_build" => Stage::BloomBuild,
            "bloom_apply" => Stage::BloomApply,
            "shuffle_send" => Stage::ShuffleSend,
            "shuffle_recv" => Stage::ShuffleRecv,
            "hash_build" => Stage::HashBuild,
            "probe" => Stage::Probe,
            "aggregate" => Stage::Aggregate,
            "replan" => Stage::Replan,
            _ => return None,
        })
    }

    pub const ALL: [Stage; 9] = [
        Stage::Scan,
        Stage::BloomBuild,
        Stage::BloomApply,
        Stage::ShuffleSend,
        Stage::ShuffleRecv,
        Stage::HashBuild,
        Stage::Probe,
        Stage::Aggregate,
        Stage::Replan,
    ];
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One contiguous stretch of work on one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Worker label, e.g. `jen-2` or `db-0`.
    pub worker: String,
    pub stage: Stage,
    /// Microseconds since the tracer's epoch.
    pub t_start: u64,
    pub t_end: u64,
    /// Payload volume the span covered (0 when not meaningful).
    pub bytes: u64,
    pub tuples: u64,
}

impl Span {
    pub fn duration_us(&self) -> u64 {
        self.t_end.saturating_sub(self.t_start)
    }
}

struct TracerInner {
    epoch: Mutex<Instant>,
    spans: Mutex<Vec<Span>>,
}

/// Cloneable span recorder; clones share the same timeline.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        f.debug_struct("Tracer").field("spans", &n).finish()
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Mutex::new(Instant::now()),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Microseconds since the epoch.
    pub fn now_us(&self) -> u64 {
        self.inner
            .epoch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .elapsed()
            .as_micros() as u64
    }

    /// Open a span; close it with [`ActiveSpan::done`].
    pub fn start(&self, worker: impl Into<String>, stage: Stage) -> ActiveSpan {
        ActiveSpan {
            tracer: self.clone(),
            worker: worker.into(),
            stage,
            t_start: self.now_us(),
        }
    }

    /// Record a fully-formed span (for callers that track their own
    /// timestamps, e.g. per-batch loops that merge adjacent work).
    pub fn record(&self, span: Span) {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(span);
    }

    /// Clear all spans and restart the clock (between runs).
    pub fn reset(&self) {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        *self.inner.epoch.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    }

    /// Snapshot the spans recorded so far, sorted by start time.
    pub fn timeline(&self) -> Timeline {
        let mut spans = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        spans.sort_by_key(|s| (s.t_start, s.t_end, s.worker.clone()));
        Timeline {
            spans,
            totals: Default::default(),
        }
    }
}

/// A span that has been started but not yet finished.
#[must_use = "call done() to record the span"]
pub struct ActiveSpan {
    tracer: Tracer,
    worker: String,
    stage: Stage,
    t_start: u64,
}

impl ActiveSpan {
    /// Close the span now and record it with its payload volume.
    pub fn done(self, bytes: u64, tuples: u64) {
        let t_end = self.tracer.now_us();
        self.tracer.record(Span {
            worker: self.worker,
            stage: self.stage,
            t_start: self.t_start,
            t_end,
            bytes,
            tuples,
        });
    }
}

/// The collected spans of one run, sorted by start time, plus whole-run
/// counter totals that belong next to the timeline in reports (the bench
/// harness stores the per-link-class `net.*` byte/tuple counters here so
/// `timeline_report` reads one artifact).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    pub spans: Vec<Span>,
    /// Named whole-run totals, e.g. `net.cross.bytes`.
    pub totals: std::collections::BTreeMap<String, u64>,
}

impl Timeline {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Distinct worker labels, sorted.
    pub fn workers(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.spans.iter().map(|s| s.worker.as_str()).collect();
        set.into_iter().map(String::from).collect()
    }

    /// Distinct stage names present, sorted.
    pub fn stage_names(&self) -> BTreeSet<&'static str> {
        self.spans.iter().map(|s| s.stage.name()).collect()
    }

    /// End of the last span (µs since epoch); 0 for an empty timeline.
    pub fn makespan_us(&self) -> u64 {
        self.spans.iter().map(|s| s.t_end).max().unwrap_or(0)
    }

    /// Merged busy intervals of `stage` across all workers.
    fn intervals(&self, stage: Stage) -> Vec<(u64, u64)> {
        let mut iv: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.stage == stage && s.t_end > s.t_start)
            .map(|s| (s.t_start, s.t_end))
            .collect();
        iv.sort_unstable();
        merge_intervals(iv)
    }

    /// Total busy time of `stage` (union across workers, µs).
    pub fn stage_busy_us(&self, stage: Stage) -> u64 {
        self.intervals(stage).iter().map(|(s, e)| e - s).sum()
    }

    /// Wall-clock time during which `a` and `b` were both running (µs).
    pub fn overlap_us(&self, a: Stage, b: Stage) -> u64 {
        intersect_length(&self.intervals(a), &self.intervals(b))
    }

    /// Measured overlap fraction of stages `a` and `b`:
    /// `overlap / min(busy_a, busy_b)`, in `[0, 1]`.
    ///
    /// 1.0 means the shorter stage ran entirely in the shadow of the other
    /// (perfect pipelining, the cost model's `max()` assumption); 0.0 means
    /// they ran strictly back-to-back (the model should add them). Returns
    /// `None` if either stage has no recorded spans.
    pub fn overlap_fraction(&self, a: Stage, b: Stage) -> Option<f64> {
        let ba = self.stage_busy_us(a);
        let bb = self.stage_busy_us(b);
        if ba == 0 || bb == 0 {
            return None;
        }
        Some(self.overlap_us(a, b) as f64 / ba.min(bb) as f64)
    }

    /// Serialize to JSON (pretty-printed, stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"worker\": {}, \"stage\": \"{}\", \"t_start\": {}, \
                 \"t_end\": {}, \"bytes\": {}, \"tuples\": {}}}{}\n",
                json_string(&s.worker),
                s.stage.name(),
                s.t_start,
                s.t_end,
                s.bytes,
                s.tuples,
                if i + 1 < self.spans.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"totals\": {\n");
        for (i, (k, v)) in self.totals.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {}{}\n",
                json_string(k),
                v,
                if i + 1 < self.totals.len() { "," } else { "" },
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a timeline produced by [`Timeline::to_json`].
    pub fn from_json(text: &str) -> Result<Timeline, String> {
        let mut p = JsonParser::new(text);
        let v = p.parse_value()?;
        p.skip_ws();
        if !p.at_end() {
            return Err("trailing characters after JSON value".into());
        }
        let obj = v.as_object().ok_or("top level is not an object")?;
        let spans_v = obj
            .iter()
            .find(|(k, _)| k == "spans")
            .map(|(_, v)| v)
            .ok_or("missing \"spans\" key")?;
        let arr = spans_v.as_array().ok_or("\"spans\" is not an array")?;
        let mut spans = Vec::with_capacity(arr.len());
        for item in arr {
            let o = item.as_object().ok_or("span is not an object")?;
            let field = |name: &str| -> Result<&JsonValue, String> {
                o.iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("span missing \"{name}\""))
            };
            let stage_name = field("stage")?.as_str().ok_or("stage is not a string")?;
            let stage = Stage::from_name(stage_name)
                .ok_or_else(|| format!("unknown stage {stage_name:?}"))?;
            spans.push(Span {
                worker: field("worker")?
                    .as_str()
                    .ok_or("worker is not a string")?
                    .to_string(),
                stage,
                t_start: field("t_start")?.as_u64().ok_or("t_start not a number")?,
                t_end: field("t_end")?.as_u64().ok_or("t_end not a number")?,
                bytes: field("bytes")?.as_u64().ok_or("bytes not a number")?,
                tuples: field("tuples")?.as_u64().ok_or("tuples not a number")?,
            });
        }
        spans.sort_by_key(|s| (s.t_start, s.t_end, s.worker.clone()));
        let mut totals = std::collections::BTreeMap::new();
        if let Some((_, totals_v)) = obj.iter().find(|(k, _)| k == "totals") {
            let o = totals_v.as_object().ok_or("\"totals\" is not an object")?;
            for (k, v) in o {
                totals.insert(
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("total {k:?} not a number"))?,
                );
            }
        }
        Ok(Timeline { spans, totals })
    }
}

/// Merge sorted intervals into a disjoint union.
fn merge_intervals(sorted: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (s, e) in sorted {
        match out.last_mut() {
            Some((_, last_e)) if s <= *last_e => *last_e = (*last_e).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval sets.
fn intersect_length(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for [`Timeline::from_json`]. Objects keep insertion
/// order as (key, value) pairs; numbers are kept as f64 (timeline fields
/// are all non-negative integers well below 2^53).
enum JsonValue {
    Null,
    /// Parsed for tolerance; timeline fields never carry booleans, so the
    /// value itself is discarded.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Hand-rolled recursive-descent JSON parser — enough for timeline files
/// (the workspace carries no serde; see `shims/` for the policy).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our own output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(worker: &str, stage: Stage, t: (u64, u64)) -> Span {
        Span {
            worker: worker.into(),
            stage,
            t_start: t.0,
            t_end: t.1,
            bytes: 0,
            tuples: 0,
        }
    }

    #[test]
    fn record_and_collect() {
        let tr = Tracer::new();
        let s = tr.start("jen-0", Stage::Scan);
        s.done(1024, 10);
        tr.record(span("jen-1", Stage::Probe, (5, 9)));
        let tl = tr.timeline();
        assert_eq!(tl.spans.len(), 2);
        assert_eq!(tl.workers(), vec!["jen-0".to_string(), "jen-1".to_string()]);
        assert!(tl.stage_names().contains("scan"));
        tr.reset();
        assert!(tr.timeline().is_empty());
    }

    #[test]
    fn clones_share_spans() {
        let tr = Tracer::new();
        let tr2 = tr.clone();
        tr2.record(span("w", Stage::Scan, (0, 1)));
        assert_eq!(tr.timeline().spans.len(), 1);
    }

    #[test]
    fn busy_time_merges_overlapping_spans() {
        let tl = Timeline {
            spans: vec![
                span("a", Stage::Scan, (0, 10)),
                span("b", Stage::Scan, (5, 15)),
                span("a", Stage::Scan, (20, 25)),
            ],
            ..Default::default()
        };
        // union of [0,15) and [20,25)
        assert_eq!(tl.stage_busy_us(Stage::Scan), 20);
        assert_eq!(tl.stage_busy_us(Stage::Probe), 0);
        assert_eq!(tl.makespan_us(), 25);
    }

    #[test]
    fn overlap_fraction_full_and_none() {
        let tl = Timeline {
            spans: vec![
                span("a", Stage::Scan, (0, 100)),
                span("a", Stage::ShuffleSend, (20, 60)), // entirely inside scan
                span("a", Stage::Probe, (100, 150)),     // after scan ends
            ],
            ..Default::default()
        };
        assert_eq!(
            tl.overlap_fraction(Stage::Scan, Stage::ShuffleSend),
            Some(1.0)
        );
        assert_eq!(tl.overlap_fraction(Stage::Scan, Stage::Probe), Some(0.0));
        assert_eq!(tl.overlap_fraction(Stage::Scan, Stage::Aggregate), None);
    }

    #[test]
    fn overlap_fraction_partial() {
        let tl = Timeline {
            spans: vec![
                span("a", Stage::Scan, (0, 100)),
                span("b", Stage::HashBuild, (75, 125)),
            ],
            ..Default::default()
        };
        // 25µs of the 50µs build coincide with the scan
        assert_eq!(
            tl.overlap_fraction(Stage::Scan, Stage::HashBuild),
            Some(0.5)
        );
    }

    #[test]
    fn json_roundtrip() {
        let mut totals = std::collections::BTreeMap::new();
        totals.insert("net.cross.bytes".to_string(), 12345u64);
        totals.insert("net.intra_hdfs.bytes".to_string(), 67u64);
        let tl = Timeline {
            totals,
            spans: vec![
                Span {
                    worker: "jen-0".into(),
                    stage: Stage::Scan,
                    t_start: 3,
                    t_end: 17,
                    bytes: 4096,
                    tuples: 128,
                },
                Span {
                    worker: "db \"0\"\n".into(), // exercises escaping
                    stage: Stage::Aggregate,
                    t_start: 20,
                    t_end: 21,
                    bytes: 0,
                    tuples: 1,
                },
            ],
        };
        let json = tl.to_json();
        let back = Timeline::from_json(&json).unwrap();
        assert_eq!(back, tl);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Timeline::from_json("").is_err());
        assert!(Timeline::from_json("[]").is_err());
        assert!(Timeline::from_json("{\"spans\": [{}]}").is_err());
        assert!(Timeline::from_json("{\"spans\": [").is_err());
        assert!(Timeline::from_json(
            "{\"spans\": [{\"worker\": \"w\", \"stage\": \"warp\", \
                 \"t_start\": 0, \"t_end\": 1, \"bytes\": 0, \"tuples\": 0}]}"
        )
        .is_err());
    }

    #[test]
    fn stage_names_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }
}
