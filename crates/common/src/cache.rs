//! A keyed, capacity-bounded LRU cache with metered hit/miss/eviction
//! counters.
//!
//! This is the shared primitive behind the query service's cross-query
//! caches (Bloom filters and full query results). It is deliberately
//! simple: one mutex around the map — cache operations happen once per
//! query, never inside a scan or shuffle hot path — with every outcome
//! counted in a [`Metrics`] registry under a caller-chosen prefix
//! (`{prefix}.hits`, `.misses`, `.insertions`, `.evictions`,
//! `.invalidations`), so workload drivers can report hit rates without
//! touching the cache's internals.

use crate::metrics::{CounterId, Metrics};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// Per-table load generations: a monotone counter bumped every time a
/// table is (re)loaded. Clones share state.
///
/// Caches keyed by table contents snapshot the generation *before* reading
/// the table and hand it back at insert time
/// ([`LruCache::insert_if`] evaluates the comparison under the cache's own
/// lock). That closes the TOCTOU race between invalidation and a slow
/// producer: a query that read pre-rewrite data (sessions share table
/// state via `Arc`, so an in-flight execution keeps seeing the old
/// partitions) finishes *after* the rewrite's `invalidate_if` ran, and
/// without the check its insert would resurrect stale bytes that no later
/// rewrite will ever evict.
#[derive(Debug, Clone, Default)]
pub struct TableGenerations {
    inner: Arc<Mutex<HashMap<String, u64>>>,
}

impl TableGenerations {
    pub fn new() -> TableGenerations {
        TableGenerations::default()
    }

    /// Current generation of `table` (0 if it was never loaded).
    pub fn get(&self, table: &str) -> u64 {
        *self
            .inner
            .lock()
            .expect("generations mutex poisoned")
            .get(table)
            .unwrap_or(&0)
    }

    /// Record a (re)load of `table`; returns the new generation. Call this
    /// *after* the new data is visible and *before* invalidating caches,
    /// so an insert that still sees the old generation is provably stale.
    pub fn bump(&self, table: &str) -> u64 {
        let mut g = self.inner.lock().expect("generations mutex poisoned");
        let gen = g.entry(table.to_string()).or_insert(0);
        *gen += 1;
        *gen
    }
}

struct LruInner<K, V> {
    /// key -> (value, recency stamp)
    map: HashMap<K, (V, u64)>,
    /// recency stamp -> key; the smallest stamp is the LRU victim.
    /// Stamps are unique (monotone counter), so this is a total order.
    order: BTreeMap<u64, K>,
    next_stamp: u64,
}

/// A thread-safe LRU cache. Clones share state.
///
/// `capacity` is the maximum number of entries; inserting beyond it evicts
/// the least-recently-*used* entry (both hits and inserts refresh recency).
/// A capacity of 0 disables the cache entirely: every `get` misses and
/// every `insert` is dropped, which lets callers turn caching off through
/// configuration without branching at each call site.
pub struct LruCache<K, V> {
    inner: Arc<Mutex<LruInner<K, V>>>,
    capacity: usize,
    metrics: Metrics,
    ctr_hits: CounterId,
    ctr_misses: CounterId,
    ctr_insertions: CounterId,
    ctr_evictions: CounterId,
    ctr_invalidations: CounterId,
    ctr_stale_inserts: CounterId,
}

impl<K, V> Clone for LruCache<K, V> {
    fn clone(&self) -> Self {
        LruCache {
            inner: Arc::clone(&self.inner),
            capacity: self.capacity,
            metrics: self.metrics.clone(),
            ctr_hits: self.ctr_hits,
            ctr_misses: self.ctr_misses,
            ctr_insertions: self.ctr_insertions,
            ctr_evictions: self.ctr_evictions,
            ctr_invalidations: self.ctr_invalidations,
            ctr_stale_inserts: self.ctr_stale_inserts,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache metering into `metrics` under `prefix` (e.g.
    /// `"svc.cache.bloom"`).
    pub fn new(prefix: &str, capacity: usize, metrics: Metrics) -> LruCache<K, V> {
        LruCache {
            inner: Arc::new(Mutex::new(LruInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
            })),
            capacity,
            ctr_hits: metrics.register(&format!("{prefix}.hits")),
            ctr_misses: metrics.register(&format!("{prefix}.misses")),
            ctr_insertions: metrics.register(&format!("{prefix}.insertions")),
            ctr_evictions: metrics.register(&format!("{prefix}.evictions")),
            ctr_invalidations: metrics.register(&format!("{prefix}.invalidations")),
            ctr_stale_inserts: metrics.register(&format!("{prefix}.stale_inserts")),
            metrics,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("lru mutex poisoned").map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut g = self.inner.lock().expect("lru mutex poisoned");
        let g = &mut *g;
        match g.map.get_mut(key) {
            Some((value, stamp)) => {
                g.order.remove(stamp);
                *stamp = g.next_stamp;
                g.order.insert(g.next_stamp, key.clone());
                g.next_stamp += 1;
                let v = value.clone();
                self.metrics.incr_id(self.ctr_hits);
                Some(v)
            }
            None => {
                self.metrics.incr_id(self.ctr_misses);
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the LRU entry when over
    /// capacity. Dropped silently when the cache is disabled (capacity 0).
    pub fn insert(&self, key: K, value: V) {
        self.insert_if(key, value, || true);
    }

    /// [`LruCache::insert`], but only when `still_valid` — evaluated while
    /// holding the cache's internal lock — returns true. Because
    /// `invalidate_if` serializes through the same lock, a check comparing
    /// a generation snapshot taken before the value was produced against
    /// the current [`TableGenerations`] cannot race an invalidation:
    /// either the insert lands first (and the invalidation removes it) or
    /// it observes the bumped generation (and is dropped, counted under
    /// `{prefix}.stale_inserts`). Returns whether the entry landed.
    pub fn insert_if<F: FnOnce() -> bool>(&self, key: K, value: V, still_valid: F) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut g = self.inner.lock().expect("lru mutex poisoned");
        let g = &mut *g;
        if !still_valid() {
            self.metrics.incr_id(self.ctr_stale_inserts);
            return false;
        }
        if let Some((_, old_stamp)) = g.map.remove(&key) {
            g.order.remove(&old_stamp);
        }
        let stamp = g.next_stamp;
        g.next_stamp += 1;
        g.map.insert(key.clone(), (value, stamp));
        g.order.insert(stamp, key);
        self.metrics.incr_id(self.ctr_insertions);
        while g.map.len() > self.capacity {
            let (&victim_stamp, _) = g.order.iter().next().expect("order/map in sync");
            let victim = g.order.remove(&victim_stamp).expect("present");
            g.map.remove(&victim);
            self.metrics.incr_id(self.ctr_evictions);
        }
        true
    }

    /// Drop every entry for which `dead` returns true (explicit
    /// invalidation, e.g. "table X was rewritten"). Returns how many
    /// entries were removed.
    pub fn invalidate_if<F: Fn(&K) -> bool>(&self, dead: F) -> usize {
        let mut g = self.inner.lock().expect("lru mutex poisoned");
        let g = &mut *g;
        let victims: Vec<K> = g.map.keys().filter(|k| dead(k)).cloned().collect();
        for k in &victims {
            if let Some((_, stamp)) = g.map.remove(k) {
                g.order.remove(&stamp);
            }
        }
        self.metrics
            .add_id(self.ctr_invalidations, victims.len() as u64);
        victims.len()
    }

    /// Drop everything.
    pub fn clear(&self) {
        let n = {
            let mut g = self.inner.lock().expect("lru mutex poisoned");
            let n = g.map.len();
            g.map.clear();
            g.order.clear();
            n
        };
        self.metrics.add_id(self.ctr_invalidations, n as u64);
    }

    /// Keys currently cached, in LRU → MRU order (tests and debugging).
    pub fn keys_lru_order(&self) -> Vec<K> {
        let g = self.inner.lock().expect("lru mutex poisoned");
        g.order.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> (LruCache<String, u32>, Metrics) {
        let m = Metrics::new();
        (LruCache::new("test.cache", cap, m.clone()), m)
    }

    #[test]
    fn hit_miss_and_counters() {
        let (c, m) = cache(4);
        assert_eq!(c.get(&"a".into()), None);
        c.insert("a".into(), 1);
        assert_eq!(c.get(&"a".into()), Some(1));
        assert_eq!(m.get("test.cache.hits"), 1);
        assert_eq!(m.get("test.cache.misses"), 1);
        assert_eq!(m.get("test.cache.insertions"), 1);
    }

    #[test]
    fn eviction_is_lru_and_hits_refresh_recency() {
        let (c, m) = cache(3);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        c.insert("c".into(), 3);
        // touch "a": "b" becomes the LRU victim
        assert!(c.get(&"a".into()).is_some());
        c.insert("d".into(), 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&"b".into()), None, "LRU entry must be evicted");
        assert!(c.get(&"a".into()).is_some());
        assert!(c.get(&"c".into()).is_some());
        assert!(c.get(&"d".into()).is_some());
        assert_eq!(m.get("test.cache.evictions"), 1);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let (c, m) = cache(2);
        c.insert("a".into(), 1);
        c.insert("a".into(), 9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a".into()), Some(9));
        assert_eq!(m.get("test.cache.evictions"), 0);
    }

    #[test]
    fn invalidate_if_removes_matching_keys() {
        let (c, m) = cache(8);
        c.insert("T:1".into(), 1);
        c.insert("T:2".into(), 2);
        c.insert("L:1".into(), 3);
        assert_eq!(c.invalidate_if(|k| k.starts_with("T:")), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"L:1".into()), Some(3));
        assert_eq!(m.get("test.cache.invalidations"), 2);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let (c, _) = cache(0);
        c.insert("a".into(), 1);
        assert_eq!(c.get(&"a".into()), None);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_if_drops_stale_and_counts() {
        let (c, m) = cache(4);
        assert!(c.insert_if("a".into(), 1, || true));
        assert!(!c.insert_if("b".into(), 2, || false));
        assert_eq!(c.get(&"a".into()), Some(1));
        assert_eq!(c.get(&"b".into()), None);
        assert_eq!(m.get("test.cache.stale_inserts"), 1);
        assert_eq!(m.get("test.cache.insertions"), 1);
    }

    #[test]
    fn insert_if_on_disabled_cache_is_not_stale() {
        let (c, m) = cache(0);
        assert!(!c.insert_if("a".into(), 1, || true));
        assert_eq!(m.get("test.cache.stale_inserts"), 0);
    }

    #[test]
    fn generations_start_at_zero_and_bump_per_table() {
        let g = TableGenerations::new();
        assert_eq!(g.get("T"), 0);
        assert_eq!(g.bump("T"), 1);
        assert_eq!(g.bump("T"), 2);
        assert_eq!(g.get("T"), 2);
        assert_eq!(g.get("L"), 0, "tables are independent");
        let shared = g.clone();
        shared.bump("L");
        assert_eq!(g.get("L"), 1, "clones share state");
    }

    #[test]
    fn generation_snapshot_guards_insert() {
        let (c, m) = cache(4);
        let g = TableGenerations::new();
        let snap = g.get("T");
        g.bump("T"); // table rewritten while the value was being produced
        assert!(!c.insert_if("k".into(), 1, || g.get("T") == snap));
        assert!(c.is_empty());
        assert_eq!(m.get("test.cache.stale_inserts"), 1);
    }

    #[test]
    fn lru_order_exposed() {
        let (c, _) = cache(4);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        c.get(&"a".into());
        assert_eq!(c.keys_lru_order(), vec!["b".to_string(), "a".to_string()]);
    }
}
