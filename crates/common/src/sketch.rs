//! Space-saving heavy-hitter sketch (Metwally et al., ICDT '05).
//!
//! Tracks approximate frequencies of the `capacity` most frequent items in
//! a stream using bounded memory. The classic guarantees hold:
//!
//! * every item with true count > `total / capacity` is in the sketch;
//! * a monitored item's stored count overestimates its true count by at
//!   most its stored `error`, so `count - error` is a lower bound.
//!
//! The shuffle path samples join keys through this sketch to find the
//! heavy hitters worth salting; `capacity` is small (tens), so the
//! O(capacity) min-scan on eviction is cheaper than a heap.

use std::collections::HashMap;

/// One monitored item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    count: u64,
    /// Overestimation bound inherited from the evicted predecessor.
    error: u64,
}

/// Bounded-memory frequency sketch over `i64` keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    slots: HashMap<i64, Slot>,
    total: u64,
}

impl SpaceSaving {
    /// `capacity` is the number of monitored keys; must be ≥ 1.
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity >= 1, "sketch capacity must be positive");
        SpaceSaving {
            capacity,
            slots: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Observe one occurrence of `key`.
    pub fn offer(&mut self, key: i64) {
        self.total += 1;
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.count += 1;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.insert(key, Slot { count: 1, error: 0 });
            return;
        }
        // Evict the minimum-count key (ties broken by smallest key so the
        // sketch state is independent of hash-map iteration order) and
        // inherit its count as the newcomer's error bound.
        let (&victim, &slot) = self
            .slots
            .iter()
            .min_by_key(|(k, s)| (s.count, **k))
            .expect("capacity >= 1 so slots are non-empty");
        self.slots.remove(&victim);
        self.slots.insert(
            key,
            Slot {
                count: slot.count + 1,
                error: slot.count,
            },
        );
    }

    /// Total number of offered items.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Keys whose *guaranteed* count (`count - error`) reaches `threshold`,
    /// sorted by estimated count descending (key ascending on ties) so the
    /// output is deterministic.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(i64, u64)> {
        let mut out: Vec<(i64, u64)> = self
            .slots
            .iter()
            .filter(|(_, s)| s.count - s.error >= threshold.max(1))
            .map(|(&k, s)| (k, s.count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.offer(1);
        }
        for _ in 0..3 {
            s.offer(2);
        }
        assert_eq!(s.total(), 8);
        assert_eq!(s.heavy_hitters(3), vec![(1, 5), (2, 3)]);
        assert_eq!(s.heavy_hitters(4), vec![(1, 5)]);
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        // One hot key at 50%, noise keys cycling through a large domain:
        // the hot key must be reported, and its guaranteed count must
        // clear a fair-share threshold.
        let mut s = SpaceSaving::new(16);
        for i in 0..10_000u64 {
            if i % 2 == 0 {
                s.offer(42);
            } else {
                s.offer(1_000 + (i as i64 % 500));
            }
        }
        let hh = s.heavy_hitters(s.total() / 8);
        assert_eq!(hh.len(), 1, "{hh:?}");
        assert_eq!(hh[0].0, 42);
        // overestimate, never underestimate
        assert!(hh[0].1 >= 5_000);
    }

    #[test]
    fn no_false_heavy_hitters_on_uniform_stream() {
        let mut s = SpaceSaving::new(16);
        for i in 0..10_000i64 {
            s.offer(i % 200);
        }
        // fair share of 4 "workers" = 2500; nothing comes close
        assert!(s.heavy_hitters(2_500).is_empty());
    }

    #[test]
    fn eviction_is_deterministic() {
        let run = || {
            let mut s = SpaceSaving::new(4);
            for i in 0..1_000i64 {
                s.offer(i % 13);
                if i % 3 == 0 {
                    s.offer(7);
                }
            }
            s.heavy_hitters(1)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SpaceSaving::new(0);
    }
}
