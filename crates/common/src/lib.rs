//! Shared building blocks for the hybrid-warehouse join reproduction.
//!
//! This crate holds everything the substrate crates (`hybrid-edw`,
//! `hybrid-jen`, `hybrid-hdfs`, …) and the core join algorithms share:
//!
//! * a small typed columnar data model ([`batch::Batch`], [`batch::Column`],
//!   [`schema::Schema`], [`datum::Datum`]),
//! * an expression AST and vectorized evaluator ([`expr`]) covering the
//!   paper's example query (local predicates, date-difference post-join
//!   predicate, the `extract_group` / `region` UDFs),
//! * hashing utilities ([`hash`]) including the *agreed shuffle hash
//!   function* that the database and JEN share (paper §3.3/§3.4),
//! * identifier newtypes ([`ids`]), error types ([`error`]) and a metrics
//!   registry ([`metrics`]).
//!
//! The data model is deliberately minimal — four scalar types are enough for
//! the paper's schemas — but it is a real engine substrate: every operator in
//! the EDW and JEN executes against these batches.

pub mod batch;
pub mod cache;
pub mod datum;
pub mod error;
pub mod expr;
pub mod hash;
pub mod ids;
pub mod mempool;
pub mod metrics;
pub mod ops;
pub mod schema;
pub mod sketch;
pub mod trace;

pub use batch::{Batch, Column, SelectionVector};
pub use datum::{DataType, Datum};
pub use error::{HybridError, Result};
pub use mempool::{BufferPool, QueryBudget, WorkerBudget};
pub use schema::{Field, Schema};
