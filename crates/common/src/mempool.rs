//! A shared buffer pool with per-query reservations and per-worker
//! residency accounting.
//!
//! The memory governor has three layers, matching how memory flows through
//! the system:
//!
//! * [`BufferPool`] — one per [`HybridSystem`] root, holding the fixed
//!   total byte budget (`None` = unbounded, the historical behaviour).
//!   Admission **reserves** a slice per query before execution starts;
//!   a reservation that would over-commit the total fails with a typed
//!   [`HybridError::MemoryExceeded`] instead of silently thrashing.
//! * [`QueryBudget`] — a cloneable handle to one query's reservation.
//!   Dropped (all clones) ⇒ the reservation returns to the pool. The
//!   query splits its cap statically across its JEN workers with
//!   [`QueryBudget::worker_share`] — a *static* split, so each worker's
//!   eviction decisions depend only on its own input order, never on
//!   sibling scheduling, which keeps spill counters deterministic at
//!   `threads=1` and results bit-identical at any thread count.
//! * [`WorkerBudget`] — one hybrid-hash-join build side's ledger. The
//!   joiner reports its current resident bytes at stable points
//!   (post-eviction); the delta flows into the pool's `used` gauge and the
//!   `mem.pool_high_water` mark. Dropped ⇒ its last report is released.
//!
//! Over-commit is impossible *by construction*: the service reserves
//! `total / max_in_flight` per admitted query, so the sum of live
//! reservations never exceeds the total, and each worker caps its resident
//! build bytes at `query_cap / jen_workers`.
//!
//! # Counters (`mem.*`)
//!
//! Recorded on the registry the pool was built with — the **root** registry,
//! so service-level tests can assert pool-wide invariants across sessions:
//!
//! * `mem.reservations` — granted reservations.
//! * `mem.reservation_denied` — reservations refused with `MemoryExceeded`.
//! * `mem.reserved_high_water` — max bytes ever reserved at once
//!   ([`Metrics::set_max`]-maintained; never mixed with `add`).
//! * `mem.pool_high_water` — max bytes ever *resident* (reported by
//!   worker ledgers) at once.
//!
//! All counters are only written when they change from zero, so an
//! unbounded, never-reserving system leaves no `mem.*` trace in snapshots —
//! default-config metric snapshots are byte-identical to the pre-governor
//! code.
//!
//! [`HybridSystem`]: ../../hybrid_core/system/struct.HybridSystem.html
//! [`HybridError::MemoryExceeded`]: crate::error::HybridError::MemoryExceeded

use crate::error::{HybridError, Result};
use crate::metrics::Metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct PoolInner {
    /// Fixed total budget in bytes; `None` = unbounded.
    total: Option<u64>,
    /// Sum of live reservations.
    reserved: AtomicU64,
    /// Sum of resident bytes last reported by live worker ledgers.
    used: AtomicU64,
    metrics: Metrics,
}

impl PoolInner {
    /// Record `delta` resident bytes (signed) and maintain the pool
    /// high-water mark.
    fn report_delta(&self, delta: i64) {
        let now = if delta >= 0 {
            self.used.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.used.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        self.metrics.set_max("mem.pool_high_water", now);
    }
}

/// The system-wide memory pool. Cloneable; clones share state.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool with a fixed byte budget (`None` = unbounded).
    pub fn new(total: Option<u64>, metrics: Metrics) -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                total,
                reserved: AtomicU64::new(0),
                used: AtomicU64::new(0),
                metrics,
            }),
        }
    }

    /// The configured total budget.
    pub fn total(&self) -> Option<u64> {
        self.inner.total
    }

    /// Whether this pool enforces a budget at all.
    pub fn is_bounded(&self) -> bool {
        self.inner.total.is_some()
    }

    /// Bytes currently reserved by live [`QueryBudget`]s.
    pub fn reserved(&self) -> u64 {
        self.inner.reserved.load(Ordering::Relaxed)
    }

    /// Resident bytes currently reported by live [`WorkerBudget`]s.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` for `scope` (a query), failing with
    /// [`HybridError::MemoryExceeded`] if the pool cannot grant it without
    /// over-committing `total`. On an unbounded pool every reservation
    /// succeeds and `bytes` only serves as the query cap (`0` = uncapped).
    pub fn reserve(&self, bytes: u64, scope: &str) -> Result<QueryBudget> {
        let (cap, reserved) = if let Some(total) = self.inner.total {
            // CAS loop: the check and the debit must be one atomic step or
            // two racing admissions could jointly over-commit.
            let mut cur = self.inner.reserved.load(Ordering::Relaxed);
            loop {
                if cur + bytes > total {
                    self.inner.metrics.incr("mem.reservation_denied");
                    return Err(HybridError::MemoryExceeded {
                        scope: scope.to_string(),
                        requested: bytes,
                        budget: total - cur.min(total),
                    });
                }
                match self.inner.reserved.compare_exchange_weak(
                    cur,
                    cur + bytes,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            self.inner.metrics.incr("mem.reservations");
            self.inner
                .metrics
                .set_max("mem.reserved_high_water", self.reserved());
            (Some(bytes), bytes)
        } else {
            // Unbounded pool: nothing to debit, nothing to meter. A cap of
            // 0 means "no cap" so direct runs on an unbounded system stay
            // on the pure in-memory path.
            ((bytes > 0).then_some(bytes), 0)
        };
        Ok(QueryBudget {
            inner: Arc::new(BudgetInner {
                pool: self.inner.clone(),
                cap,
                reserved,
            }),
        })
    }

    /// Reserve everything the pool has left, for a query running outside
    /// service admission (a direct `run()` gets the whole machine).
    pub fn reserve_remaining(&self, scope: &str) -> Result<QueryBudget> {
        let remaining = self
            .inner
            .total
            .map(|t| t.saturating_sub(self.reserved()))
            .unwrap_or(0);
        self.reserve(remaining, scope)
    }
}

struct BudgetInner {
    pool: Arc<PoolInner>,
    /// Per-query resident-byte cap; `None` = uncapped.
    cap: Option<u64>,
    /// Bytes debited from the pool, returned on drop.
    reserved: u64,
}

impl Drop for BudgetInner {
    fn drop(&mut self) {
        if self.reserved > 0 {
            self.pool
                .reserved
                .fetch_sub(self.reserved, Ordering::Relaxed);
        }
    }
}

/// One query's slice of the pool. Cloneable (each clone is the same
/// reservation); the reservation is released when the last clone drops.
#[derive(Clone)]
pub struct QueryBudget {
    inner: Arc<BudgetInner>,
}

impl std::fmt::Debug for QueryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBudget")
            .field("cap", &self.inner.cap)
            .field("reserved", &self.inner.reserved)
            .finish()
    }
}

impl QueryBudget {
    /// This query's resident-byte cap (`None` = uncapped).
    pub fn cap_bytes(&self) -> Option<u64> {
        self.inner.cap
    }

    /// A ledger for one of `n` JEN workers: cap = query cap / n.
    ///
    /// The split is static so each worker's eviction decisions are a pure
    /// function of its own input stream. A cap of 0 (budget smaller than
    /// the worker count) is legal: every partition spills immediately.
    pub fn worker_share(&self, n: usize) -> WorkerBudget {
        WorkerBudget {
            pool: self.inner.pool.clone(),
            _query: self.inner.clone(),
            cap: self.inner.cap.map(|c| c / n.max(1) as u64),
            last_reported: 0,
        }
    }
}

/// One worker's residency ledger. Not cloneable — exactly one owner
/// (the hybrid hash joiner) reports through it.
pub struct WorkerBudget {
    pool: Arc<PoolInner>,
    /// Keeps the query reservation alive while any worker still runs.
    _query: Arc<BudgetInner>,
    cap: Option<u64>,
    last_reported: u64,
}

impl WorkerBudget {
    /// This worker's resident-byte cap (`None` = uncapped).
    pub fn cap_bytes(&self) -> Option<u64> {
        self.cap
    }

    /// Whether `resident` bytes fit under this worker's cap.
    pub fn fits(&self, resident: u64) -> bool {
        self.cap.map_or(true, |c| resident <= c)
    }

    /// Report the worker's current resident build bytes (called at stable
    /// points, i.e. after any evictions have brought residency under the
    /// cap). The delta against the previous report flows into the pool's
    /// `used` gauge and high-water mark.
    pub fn report(&mut self, resident_now: u64) {
        if resident_now == self.last_reported {
            return;
        }
        let delta = resident_now as i64 - self.last_reported as i64;
        self.pool.report_delta(delta);
        self.last_reported = resident_now;
    }
}

impl Drop for WorkerBudget {
    fn drop(&mut self) {
        if self.last_reported > 0 {
            self.pool.report_delta(-(self.last_reported as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_pool_grants_everything_and_stays_silent() {
        let m = Metrics::new();
        let pool = BufferPool::new(None, m.clone());
        assert!(!pool.is_bounded());
        let b = pool.reserve(u64::MAX, "q").unwrap();
        assert_eq!(b.cap_bytes(), Some(u64::MAX));
        let none = pool.reserve_remaining("q2").unwrap();
        assert_eq!(none.cap_bytes(), None);
        assert!(none.worker_share(4).fits(u64::MAX));
        // no budget enforcement → no mem.* counters at all
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn reservations_are_checked_against_total() {
        let m = Metrics::new();
        let pool = BufferPool::new(Some(1000), m.clone());
        let a = pool.reserve(600, "a").unwrap();
        assert_eq!(pool.reserved(), 600);
        let err = pool.reserve(600, "b").unwrap_err();
        match err {
            HybridError::MemoryExceeded {
                scope,
                requested,
                budget,
            } => {
                assert_eq!(scope, "b");
                assert_eq!(requested, 600);
                assert_eq!(budget, 400);
            }
            other => panic!("expected MemoryExceeded, got {other}"),
        }
        let b = pool.reserve(400, "b").unwrap();
        assert_eq!(pool.reserved(), 1000);
        assert_eq!(m.get("mem.reservations"), 2);
        assert_eq!(m.get("mem.reservation_denied"), 1);
        assert_eq!(m.get("mem.reserved_high_water"), 1000);
        drop(a);
        assert_eq!(pool.reserved(), 400);
        drop(b);
        assert_eq!(pool.reserved(), 0);
        // high-water survives the releases
        assert_eq!(m.get("mem.reserved_high_water"), 1000);
    }

    #[test]
    fn clone_releases_only_once() {
        let pool = BufferPool::new(Some(100), Metrics::new());
        let a = pool.reserve(100, "a").unwrap();
        let a2 = a.clone();
        drop(a);
        assert_eq!(pool.reserved(), 100, "clone still holds the reservation");
        drop(a2);
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn worker_share_splits_statically() {
        let pool = BufferPool::new(Some(800), Metrics::new());
        let q = pool.reserve(800, "q").unwrap();
        let w = q.worker_share(4);
        assert_eq!(w.cap_bytes(), Some(200));
        assert!(w.fits(200));
        assert!(!w.fits(201));
        // budget smaller than the worker count → cap 0, nothing fits
        let tiny = BufferPool::new(Some(3), Metrics::new());
        let q = tiny.reserve(3, "q").unwrap();
        let w = q.worker_share(8);
        assert_eq!(w.cap_bytes(), Some(0));
        assert!(w.fits(0));
        assert!(!w.fits(1));
    }

    #[test]
    fn worker_reports_roll_up_to_pool_high_water() {
        let m = Metrics::new();
        let pool = BufferPool::new(Some(1000), m.clone());
        let q = pool.reserve(1000, "q").unwrap();
        let mut w0 = q.worker_share(2);
        let mut w1 = q.worker_share(2);
        w0.report(300);
        w1.report(450);
        assert_eq!(pool.used(), 750);
        w0.report(100); // eviction shrank w0's residency
        assert_eq!(pool.used(), 550);
        assert_eq!(m.get("mem.pool_high_water"), 750);
        drop(w0);
        drop(w1);
        assert_eq!(pool.used(), 0);
        assert_eq!(m.get("mem.pool_high_water"), 750);
    }

    #[test]
    fn workers_keep_reservation_alive_past_budget_drop() {
        let pool = BufferPool::new(Some(100), Metrics::new());
        let q = pool.reserve(100, "q").unwrap();
        let w = q.worker_share(1);
        drop(q);
        assert_eq!(pool.reserved(), 100, "worker holds the reservation");
        drop(w);
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn concurrent_reservations_never_overcommit() {
        let pool = BufferPool::new(Some(1000), Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..100 {
                        if let Ok(b) = pool.reserve(125, &format!("t{i}")) {
                            assert!(pool.reserved() <= 1000, "over-commit");
                            held.push(b);
                            if held.len() > 2 {
                                held.clear();
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn zero_cap_on_unbounded_pool_means_uncapped() {
        let pool = BufferPool::new(None, Metrics::new());
        let q = pool.reserve_remaining("direct").unwrap();
        assert_eq!(q.cap_bytes(), None);
        assert_eq!(q.worker_share(8).cap_bytes(), None);
    }
}
