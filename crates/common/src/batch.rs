//! Columnar batches — the unit of data flow in both engines.
//!
//! A [`Batch`] is a set of equally-long typed [`Column`]s. Operators consume
//! and produce batches; the simulated network ships batches and meters their
//! [`Batch::serialized_bytes`]. This mirrors how JEN pipelines record batches
//! between its read / process / send threads (paper §4.4) without paying for
//! per-row boxing.

use crate::datum::{DataType, Datum};
use crate::error::{HybridError, Result};
use crate::schema::Schema;
use std::borrow::Cow;

/// A list of row indexes into a [`Batch`], in ascending order — the
/// branch-light alternative to a `Vec<bool>` mask for filtering.
///
/// Vectorized operators build one with [`SelectionVector::from_mask`] (a
/// single pass with no per-row branch: the index is written unconditionally
/// and the cursor advances by the mask bit) and apply it with
/// [`Batch::take_sel`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelectionVector(Vec<u32>);

impl SelectionVector {
    /// Selection of every row in `0..rows`.
    pub fn identity(rows: usize) -> SelectionVector {
        SelectionVector((0..rows as u32).collect())
    }

    /// Build from a boolean mask without branching on each row: slot `k`
    /// is overwritten until a kept row advances the cursor.
    pub fn from_mask(mask: &[bool]) -> SelectionVector {
        let mut sel = vec![0u32; mask.len()];
        let mut k = 0usize;
        for (i, &keep) in mask.iter().enumerate() {
            sel[k] = i as u32;
            k += keep as usize;
        }
        sel.truncate(k);
        SelectionVector(sel)
    }

    /// Wrap an explicit (ascending) index list.
    pub fn from_indexes(rows: Vec<u32>) -> SelectionVector {
        SelectionVector(rows)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    I32(Vec<i32>),
    I64(Vec<i64>),
    Date(Vec<i32>),
    Utf8(Vec<String>),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::I32(v) | Column::Date(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Utf8(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Column::I32(_) => DataType::I32,
            Column::I64(_) => DataType::I64,
            Column::Date(_) => DataType::Date,
            Column::Utf8(_) => DataType::Utf8,
        }
    }

    /// Allocate an empty column of the given type with `capacity` reserved.
    pub fn with_capacity(dt: DataType, capacity: usize) -> Column {
        match dt {
            DataType::I32 => Column::I32(Vec::with_capacity(capacity)),
            DataType::I64 => Column::I64(Vec::with_capacity(capacity)),
            DataType::Date => Column::Date(Vec::with_capacity(capacity)),
            DataType::Utf8 => Column::Utf8(Vec::with_capacity(capacity)),
        }
    }

    /// The value at `row` as a [`Datum`] (edge-of-system use only).
    pub fn datum(&self, row: usize) -> Datum {
        match self {
            Column::I32(v) => Datum::I32(v[row]),
            Column::I64(v) => Datum::I64(v[row]),
            Column::Date(v) => Datum::Date(v[row]),
            Column::Utf8(v) => Datum::Utf8(v[row].clone()),
        }
    }

    /// View as `&[i32]` (shared by `I32` and `Date`).
    pub fn as_i32(&self) -> Result<&[i32]> {
        match self {
            Column::I32(v) | Column::Date(v) => Ok(v),
            other => Err(HybridError::TypeMismatch {
                expected: "i32",
                found: other.data_type().name(),
            }),
        }
    }

    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            Column::I64(v) => Ok(v),
            other => Err(HybridError::TypeMismatch {
                expected: "i64",
                found: other.data_type().name(),
            }),
        }
    }

    pub fn as_utf8(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(v) => Ok(v),
            other => Err(HybridError::TypeMismatch {
                expected: "utf8",
                found: other.data_type().name(),
            }),
        }
    }

    /// The join-key view: any integer column widened to `i64`.
    ///
    /// Join keys in the paper are 4-byte ints, but the engines accept either
    /// integer width, so the hash-join key path is written once over `i64`.
    pub fn key_at(&self, row: usize) -> Result<i64> {
        match self {
            Column::I32(v) | Column::Date(v) => Ok(i64::from(v[row])),
            Column::I64(v) => Ok(v[row]),
            Column::Utf8(_) => Err(HybridError::TypeMismatch {
                expected: "integer join key",
                found: "utf8",
            }),
        }
    }

    /// The whole column as `i64` join keys: borrows `I64` storage directly,
    /// widens `I32`/`Date` once per batch. Amortizes the per-row type match
    /// of [`Column::key_at`] across vectorized operators.
    pub fn keys_i64(&self) -> Result<Cow<'_, [i64]>> {
        match self {
            Column::I32(v) | Column::Date(v) => {
                Ok(Cow::Owned(v.iter().map(|&x| i64::from(x)).collect()))
            }
            Column::I64(v) => Ok(Cow::Borrowed(v)),
            Column::Utf8(_) => Err(HybridError::TypeMismatch {
                expected: "integer join key",
                found: "utf8",
            }),
        }
    }

    /// Append the value at `row` of `src` (same type) onto `self`.
    pub fn push_from(&mut self, src: &Column, row: usize) -> Result<()> {
        match (self, src) {
            (Column::I32(d), Column::I32(s)) => d.push(s[row]),
            (Column::I64(d), Column::I64(s)) => d.push(s[row]),
            (Column::Date(d), Column::Date(s)) => d.push(s[row]),
            (Column::Utf8(d), Column::Utf8(s)) => d.push(s[row].clone()),
            (d, s) => {
                return Err(HybridError::TypeMismatch {
                    expected: d.data_type().name(),
                    found: s.data_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Keep only the rows whose index appears in `rows` (in order).
    pub fn take(&self, rows: &[u32]) -> Column {
        match self {
            Column::I32(v) => Column::I32(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::I64(v) => Column::I64(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Date(v) => Column::Date(rows.iter().map(|&r| v[r as usize]).collect()),
            Column::Utf8(v) => Column::Utf8(rows.iter().map(|&r| v[r as usize].clone()).collect()),
        }
    }

    /// Gather-append the listed rows of `src` (same type) onto `self` —
    /// the column-at-a-time form of repeated [`Column::push_from`].
    pub fn extend_take(&mut self, src: &Column, rows: &[u32]) -> Result<()> {
        match (self, src) {
            (Column::I32(d), Column::I32(s)) | (Column::Date(d), Column::Date(s)) => {
                d.extend(rows.iter().map(|&r| s[r as usize]));
            }
            (Column::I64(d), Column::I64(s)) => d.extend(rows.iter().map(|&r| s[r as usize])),
            (Column::Utf8(d), Column::Utf8(s)) => {
                d.extend(rows.iter().map(|&r| s[r as usize].clone()));
            }
            (d, s) => {
                return Err(HybridError::TypeMismatch {
                    expected: d.data_type().name(),
                    found: s.data_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Append all of `src` (same type) onto `self`.
    pub fn extend_from(&mut self, src: &Column) -> Result<()> {
        match (self, src) {
            (Column::I32(d), Column::I32(s)) | (Column::Date(d), Column::Date(s)) => {
                d.extend_from_slice(s);
            }
            (Column::I64(d), Column::I64(s)) => d.extend_from_slice(s),
            (Column::Utf8(d), Column::Utf8(s)) => d.extend_from_slice(s),
            (d, s) => {
                return Err(HybridError::TypeMismatch {
                    expected: d.data_type().name(),
                    found: s.data_type().name(),
                })
            }
        }
        Ok(())
    }

    /// Serialized payload bytes of this column (fixed width or string bytes).
    pub fn serialized_bytes(&self) -> usize {
        match self {
            Column::I32(v) | Column::Date(v) => v.len() * 4,
            Column::I64(v) => v.len() * 8,
            Column::Utf8(v) => v.iter().map(|s| 4 + s.len()).sum(),
        }
    }
}

/// A horizontal slice of a table: one column vector per schema field.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Build a batch, validating column count, types, and lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Batch> {
        if schema.len() != columns.len() {
            return Err(HybridError::SchemaMismatch(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            let expected = schema.field(i)?.data_type;
            if c.data_type() != expected {
                return Err(HybridError::TypeMismatch {
                    expected: expected.name(),
                    found: c.data_type().name(),
                });
            }
            if c.len() != rows {
                return Err(HybridError::SchemaMismatch(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, 0))
            .collect();
        Batch {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(HybridError::ColumnOutOfBounds {
                index,
                width: self.columns.len(),
            })
    }

    /// The row at `row` as datums (edge-of-system / tests only).
    pub fn row(&self, row: usize) -> Vec<Datum> {
        self.columns.iter().map(|c| c.datum(row)).collect()
    }

    /// Project to the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Result<Batch> {
        let schema = self.schema.project(indexes)?;
        let mut columns = Vec::with_capacity(indexes.len());
        for &i in indexes {
            columns.push(self.column(i)?.clone());
        }
        Ok(Batch {
            schema,
            columns,
            rows: self.rows,
        })
    }

    /// Keep only the listed rows.
    pub fn take(&self, rows: &[u32]) -> Batch {
        debug_assert!(rows.iter().all(|&r| (r as usize) < self.rows));
        let columns = self.columns.iter().map(|c| c.take(rows)).collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: rows.len(),
        }
    }

    /// Keep only rows where `mask` is true. `mask.len()` must equal rows.
    pub fn filter(&self, mask: &[bool]) -> Result<Batch> {
        if mask.len() != self.rows {
            return Err(HybridError::SchemaMismatch(format!(
                "mask of {} entries applied to batch of {} rows",
                mask.len(),
                self.rows
            )));
        }
        Ok(self.take_sel(&SelectionVector::from_mask(mask)))
    }

    /// Keep only the selected rows (column-at-a-time gather).
    pub fn take_sel(&self, sel: &SelectionVector) -> Batch {
        self.take(sel.as_slice())
    }

    /// Concatenate many same-schema batches into one (column-at-a-time).
    pub fn concat(schema: Schema, batches: &[Batch]) -> Result<Batch> {
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        let mut columns: Vec<Column> = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, total))
            .collect();
        for b in batches {
            if b.schema != schema {
                return Err(HybridError::SchemaMismatch(
                    "concat over mismatched schemas".into(),
                ));
            }
            for (dst, src) in columns.iter_mut().zip(&b.columns) {
                dst.extend_from(src)?;
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows: total,
        })
    }

    /// Total wire size: per-column payloads (used by the metered fabric).
    pub fn serialized_bytes(&self) -> usize {
        self.columns.iter().map(Column::serialized_bytes).sum()
    }

    /// Split into chunks of at most `chunk_rows` rows (network batching).
    pub fn chunks(&self, chunk_rows: usize) -> Vec<Batch> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        if self.rows <= chunk_rows {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(self.rows.div_ceil(chunk_rows));
        let mut start = 0usize;
        while start < self.rows {
            let end = (start + chunk_rows).min(self.rows);
            let rows: Vec<u32> = (start as u32..end as u32).collect();
            out.push(self.take(&rows));
            start = end;
        }
        out
    }
}

/// Incrementally builds a [`Batch`] row by row from a source batch
/// (used by partitioning operators that scatter rows to destinations).
#[derive(Debug)]
pub struct BatchBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl BatchBuilder {
    pub fn new(schema: Schema) -> BatchBuilder {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, 64))
            .collect();
        BatchBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Append row `row` of `src` (which must share the schema's types).
    pub fn push_row(&mut self, src: &Batch, row: usize) -> Result<()> {
        for (dst, col) in self.columns.iter_mut().zip(src.columns()) {
            dst.push_from(col, row)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Gather-append the listed rows of `src` (column-at-a-time form of
    /// repeated [`BatchBuilder::push_row`]).
    pub fn append_rows(&mut self, src: &Batch, rows: &[u32]) -> Result<()> {
        for (dst, col) in self.columns.iter_mut().zip(src.columns()) {
            dst.extend_take(col, rows)?;
        }
        self.rows += rows.len();
        Ok(())
    }

    /// Append a row made of two source batches side by side (join output).
    pub fn push_joined(
        &mut self,
        left: &Batch,
        lrow: usize,
        right: &Batch,
        rrow: usize,
    ) -> Result<()> {
        let lw = left.columns().len();
        for (i, dst) in self.columns.iter_mut().enumerate() {
            if i < lw {
                dst.push_from(&left.columns()[i], lrow)?;
            } else {
                dst.push_from(&right.columns()[i - lw], rrow)?;
            }
        }
        self.rows += 1;
        Ok(())
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn finish(self) -> Batch {
        Batch {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn b() -> Batch {
        let schema = Schema::from_pairs(&[
            ("k", DataType::I32),
            ("v", DataType::I64),
            ("s", DataType::Utf8),
        ]);
        Batch::new(
            schema,
            vec![
                Column::I32(vec![1, 2, 3, 4]),
                Column::I64(vec![10, 20, 30, 40]),
                Column::Utf8(vec!["a".into(), "bb".into(), "ccc".into(), "".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_arity_type_length() {
        let schema = Schema::from_pairs(&[("k", DataType::I32)]);
        assert!(Batch::new(schema.clone(), vec![]).is_err());
        assert!(Batch::new(schema.clone(), vec![Column::I64(vec![1])]).is_err());
        let two = Schema::from_pairs(&[("a", DataType::I32), ("b", DataType::I32)]);
        assert!(Batch::new(two, vec![Column::I32(vec![1, 2]), Column::I32(vec![1])]).is_err());
        assert!(Batch::new(schema, vec![Column::I32(vec![5])]).is_ok());
    }

    #[test]
    fn filter_take_project() {
        let batch = b();
        let f = batch.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column(0).unwrap().as_i32().unwrap(), &[1, 3]);
        let p = batch.project(&[2, 0]).unwrap();
        assert_eq!(p.schema().field(0).unwrap().name, "s");
        assert_eq!(p.column(1).unwrap().as_i32().unwrap(), &[1, 2, 3, 4]);
        let t = batch.take(&[3, 0]);
        assert_eq!(t.column(1).unwrap().as_i64().unwrap(), &[40, 10]);
    }

    #[test]
    fn filter_wrong_mask_len_errors() {
        assert!(b().filter(&[true]).is_err());
    }

    #[test]
    fn serialized_bytes_counts_strings() {
        let batch = b();
        // 4*4 (i32) + 4*8 (i64) + 4*(4+len): lens 1,2,3,0 => 16+32+(16+6)=70
        assert_eq!(batch.serialized_bytes(), 70);
    }

    #[test]
    fn concat_roundtrip() {
        let batch = b();
        let parts = batch.chunks(3);
        assert_eq!(parts.len(), 2);
        let whole = Batch::concat(batch.schema().clone(), &parts).unwrap();
        assert_eq!(whole, batch);
    }

    #[test]
    fn concat_rejects_mismatched_schema() {
        let other = Batch::empty(Schema::from_pairs(&[("z", DataType::I32)]));
        assert!(Batch::concat(b().schema().clone(), &[b(), other]).is_err());
    }

    #[test]
    fn builder_joins_rows() {
        let left = b();
        let right = b();
        let joined_schema = left.schema().join(right.schema());
        let mut builder = BatchBuilder::new(joined_schema);
        builder.push_joined(&left, 0, &right, 3).unwrap();
        let out = builder.finish();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Datum::I32(1));
        assert_eq!(out.row(0)[3], Datum::I32(4));
    }

    #[test]
    fn key_at_widens_integers() {
        let batch = b();
        assert_eq!(batch.column(0).unwrap().key_at(2).unwrap(), 3);
        assert_eq!(batch.column(1).unwrap().key_at(1).unwrap(), 20);
        assert!(batch.column(2).unwrap().key_at(0).is_err());
    }

    #[test]
    fn selection_from_mask_matches_filter() {
        let batch = b();
        let mask = [true, false, true, true];
        let sel = SelectionVector::from_mask(&mask);
        assert_eq!(sel.as_slice(), &[0, 2, 3]);
        assert_eq!(batch.take_sel(&sel), batch.filter(&mask).unwrap());
        assert!(SelectionVector::from_mask(&[]).is_empty());
        assert_eq!(SelectionVector::identity(3).as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn keys_i64_widens_like_key_at() {
        let batch = b();
        for col in [0usize, 1] {
            let c = batch.column(col).unwrap();
            let keys = c.keys_i64().unwrap();
            for row in 0..batch.num_rows() {
                assert_eq!(keys[row], c.key_at(row).unwrap());
            }
        }
        assert!(batch.column(2).unwrap().keys_i64().is_err());
    }

    #[test]
    fn append_rows_matches_push_row() {
        let batch = b();
        let rows = [3u32, 1, 1];
        let mut gathered = BatchBuilder::new(batch.schema().clone());
        gathered.append_rows(&batch, &rows).unwrap();
        let mut pushed = BatchBuilder::new(batch.schema().clone());
        for &r in &rows {
            pushed.push_row(&batch, r as usize).unwrap();
        }
        assert_eq!(gathered.finish(), pushed.finish());
    }

    #[test]
    fn extend_take_rejects_type_mismatch() {
        let mut dst = Column::I32(vec![]);
        assert!(dst.extend_take(&Column::I64(vec![1]), &[0]).is_err());
        assert!(dst.extend_from(&Column::I64(vec![1])).is_err());
    }

    #[test]
    fn empty_batch_has_schema_and_no_rows() {
        let e = Batch::empty(b().schema().clone());
        assert!(e.is_empty());
        assert_eq!(e.schema().len(), 3);
        assert_eq!(e.serialized_bytes(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary mixed-type batch: the row tuples are zipped into one
    /// column vector per type.
    fn arb_batch() -> impl Strategy<Value = Batch> {
        proptest::collection::vec((any::<i32>(), any::<i64>(), "[a-z]{0,5}"), 0..120).prop_map(
            |rows| {
                let schema = Schema::from_pairs(&[
                    ("k", DataType::I32),
                    ("v", DataType::I64),
                    ("s", DataType::Utf8),
                ]);
                let mut a = Vec::with_capacity(rows.len());
                let mut b = Vec::with_capacity(rows.len());
                let mut c = Vec::with_capacity(rows.len());
                for (x, y, z) in rows {
                    a.push(x);
                    b.push(y);
                    c.push(z);
                }
                Batch::new(
                    schema,
                    vec![Column::I32(a), Column::I64(b), Column::Utf8(c)],
                )
                .unwrap()
            },
        )
    }

    proptest! {
        /// Splitting into chunks of any size and concatenating restores the
        /// original batch bit for bit — the invariant the batched fabric
        /// relies on when it reframes a stream at `batch_rows`.
        #[test]
        fn split_concat_roundtrip(batch in arb_batch(), chunk in 1usize..300) {
            let parts = batch.chunks(chunk);
            for p in &parts {
                prop_assert!(p.num_rows() <= chunk);
            }
            let whole = Batch::concat(batch.schema().clone(), &parts).unwrap();
            prop_assert_eq!(whole, batch);
        }

        /// A selection-vector filter keeps exactly the masked rows, in
        /// order, and equals the mask-based filter.
        #[test]
        fn selection_filter_is_lossless(
            batch in arb_batch(),
            seed in any::<u64>(),
        ) {
            let mask: Vec<bool> = (0..batch.num_rows())
                .map(|i| (seed >> (i % 64)) & 1 == 1)
                .collect();
            let sel = SelectionVector::from_mask(&mask);
            let out = batch.take_sel(&sel);
            prop_assert_eq!(&out, &batch.filter(&mask).unwrap());
            prop_assert_eq!(out.num_rows(), mask.iter().filter(|&&m| m).count());
            // complement + original = a partition of the rows
            let inv: Vec<bool> = mask.iter().map(|&m| !m).collect();
            let rest = batch.take_sel(&SelectionVector::from_mask(&inv));
            prop_assert_eq!(out.num_rows() + rest.num_rows(), batch.num_rows());
            let glued = Batch::concat(batch.schema().clone(), &[out, rest]).unwrap();
            let mut order: Vec<u32> = SelectionVector::from_mask(&mask).as_slice().to_vec();
            order.extend_from_slice(SelectionVector::from_mask(&inv).as_slice());
            prop_assert_eq!(glued, batch.take(&order));
        }

        /// Gather-append (`append_rows`) equals row-at-a-time `push_row`
        /// for arbitrary row lists, duplicates included.
        #[test]
        fn gather_append_equals_push_row(
            batch in arb_batch(),
            picks in proptest::collection::vec(any::<u32>(), 0..80),
        ) {
            let rows: Vec<u32> = if batch.num_rows() == 0 {
                Vec::new()
            } else {
                picks.iter().map(|&p| p % batch.num_rows() as u32).collect()
            };
            let mut gathered = BatchBuilder::new(batch.schema().clone());
            gathered.append_rows(&batch, &rows).unwrap();
            let mut pushed = BatchBuilder::new(batch.schema().clone());
            for &r in &rows {
                pushed.push_row(&batch, r as usize).unwrap();
            }
            prop_assert_eq!(gathered.finish(), pushed.finish());
        }
    }
}
