//! A shared metrics registry with a sharded, lock-free hot path.
//!
//! Every component of the simulation (fabric links, scans, Bloom filter
//! builds, hash joins) increments named counters here. The experiment
//! harness reads a [`MetricsSnapshot`] after each run; Table 1 of the paper
//! ("# tuples shuffled / sent") is literally two counters from this registry.
//!
//! # Design
//!
//! The original registry was an `Arc<Mutex<BTreeMap<String, u64>>>`: every
//! increment took a process-wide lock and a string allocation, which
//! serialized the engines' worker threads once scans and shuffles got busy.
//! That implementation is preserved as [`MutexMetrics`] so the microbench
//! can keep comparing against it.
//!
//! The registry is now split in two planes:
//!
//! * a **name plane** — counter names are interned once into a [`CounterId`]
//!   (a dense `u32` index). Interning takes a lock, but hot paths register
//!   their ids up front and never touch it again.
//! * a **value plane** — `NUM_SHARDS` shards, each holding one
//!   `AtomicU64` slot per registered counter. A thread is assigned a shard
//!   round-robin on first use (thread-local) and does a single
//!   `fetch_add(Relaxed)` per update: no lock, and threads on different
//!   shards never touch the same cache line set.
//!
//! Slots live in fixed-size chunks that are allocated on demand and never
//! move, so readers index into them without any lock: the chunk table is an
//! array of `AtomicPtr`s published with release/acquire ordering.
//!
//! [`Metrics::snapshot`] merges the shards by summing each counter's slots.
//! Counters whose merged value is zero are omitted, which preserves the old
//! map semantics: a reset (or never-written) counter does not appear in the
//! snapshot.
//!
//! The string-keyed `add`/`incr`/`get` API is unchanged — those do one
//! read-locked name lookup, then the same lock-free slot update.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An immutable copy of all counters at a point in time.
pub type MetricsSnapshot = BTreeMap<String, u64>;

/// Interned handle for a counter name.
///
/// Obtained from [`Metrics::register`]; valid only for the registry that
/// issued it (and its clones). Hot paths hold a `CounterId` and call
/// [`Metrics::add_id`] / [`Metrics::incr_id`] to skip the name lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

impl CounterId {
    /// Dense index of this counter (0-based registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Number of value shards. Must be a power of two.
const NUM_SHARDS: usize = 16;
/// Slots per chunk. Must be a power of two.
const CHUNK_SLOTS: usize = 256;
/// Chunks per shard; caps the registry at `MAX_CHUNKS * CHUNK_SLOTS` ids.
const MAX_CHUNKS: usize = 64;

/// One shard of the value plane: a grow-only table of `AtomicU64` slots,
/// stored as chunks that never move once allocated.
struct Shard {
    chunks: [AtomicPtr<[AtomicU64; CHUNK_SLOTS]>; MAX_CHUNKS],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Slot for `id`, or `None` if its chunk was never allocated (the
    /// counter has never been written through this shard's chunk range).
    fn slot(&self, id: usize) -> Option<&AtomicU64> {
        let chunk = self.chunks[id / CHUNK_SLOTS].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: a non-null chunk pointer was produced by `Box::into_raw`
        // in `ensure_chunk` and is never freed or moved until the owning
        // `Inner` is dropped; `self` borrows the `Inner`.
        let chunk = unsafe { &*chunk };
        Some(&chunk[id % CHUNK_SLOTS])
    }

    /// Allocate the chunk covering `id` if it does not exist yet. Called
    /// under the registration lock, so allocation is not racy with itself;
    /// publication uses `Release` so lock-free readers see zeroed slots.
    fn ensure_chunk(&self, id: usize) {
        let idx = id / CHUNK_SLOTS;
        if self.chunks[idx].load(Ordering::Acquire).is_null() {
            let chunk: Box<[AtomicU64; CHUNK_SLOTS]> =
                Box::new(std::array::from_fn(|_| AtomicU64::new(0)));
            self.chunks[idx].store(Box::into_raw(chunk), Ordering::Release);
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        for chunk in &self.chunks {
            let p = chunk.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: pointer came from `Box::into_raw` and is dropped
                // exactly once, here.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// Name plane: bidirectional name <-> id mapping.
#[derive(Default)]
struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

struct Inner {
    interner: RwLock<Interner>,
    /// Serializes registration (interning + chunk allocation).
    register_lock: Mutex<()>,
    shards: Vec<Shard>,
}

/// Cloneable handle to a set of named `u64` counters.
///
/// Clones share the same underlying counters (the registry is handed to
/// every worker thread of both engines).
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<Inner>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("counters", &self.snapshot())
            .finish()
    }
}

/// Round-robin shard assignment: each thread picks a shard on first use and
/// sticks with it, spreading threads evenly without per-update hashing.
fn my_shard() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize =
            NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (NUM_SHARDS - 1);
    }
    SHARD.with(|s| *s)
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics {
            inner: Arc::new(Inner {
                interner: RwLock::new(Interner::default()),
                register_lock: Mutex::new(()),
                shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            }),
        }
    }

    /// Whether `other` is a handle to the same underlying registry (clones
    /// share counters; [`Metrics::new`] makes an independent one).
    pub fn same_registry(&self, other: &Metrics) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Intern `name`, returning its stable [`CounterId`].
    ///
    /// Idempotent; components that update counters in a hot loop should
    /// call this once at construction time and use [`Metrics::add_id`].
    pub fn register(&self, name: &str) -> CounterId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let _reg = self
            .inner
            .register_lock
            .lock()
            .expect("metrics register lock");
        // Double-check: another thread may have registered between the
        // read-locked lookup and taking the registration lock.
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let mut interner = self.inner.interner.write().expect("metrics interner");
        let id = interner.names.len();
        assert!(id < MAX_CHUNKS * CHUNK_SLOTS, "counter registry full");
        for shard in &self.inner.shards {
            shard.ensure_chunk(id);
        }
        interner.names.push(name.to_string());
        interner.by_name.insert(name.to_string(), id as u32);
        CounterId(id as u32)
    }

    fn lookup(&self, name: &str) -> Option<CounterId> {
        self.inner
            .interner
            .read()
            .expect("metrics interner")
            .by_name
            .get(name)
            .map(|&id| CounterId(id))
    }

    /// Add `delta` to the counter `id` points at. Lock-free.
    pub fn add_id(&self, id: CounterId, delta: u64) {
        if delta == 0 {
            return;
        }
        let shard = &self.inner.shards[my_shard()];
        shard
            .slot(id.index())
            .expect("CounterId from a different registry")
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment the counter `id` points at by one. Lock-free.
    pub fn incr_id(&self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Add `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, delta: u64) {
        let id = match self.lookup(name) {
            Some(id) => id,
            None => self.register(name),
        };
        self.add_id(id, delta);
    }

    /// Increment by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Raise the counter `id` points at to at least `value` (a high-water
    /// mark). Lock-free.
    ///
    /// Max-maintenance always targets shard 0, so the snapshot's per-shard
    /// *sum* equals the maximum ever reported — but only if the counter is
    /// written exclusively through `set_max*`. Never mix `set_max*` and
    /// `add*` on the same counter: the other shards would contribute to the
    /// sum and the snapshot would read high. Zero is skipped so an unused
    /// high-water counter stays absent from snapshots, like an unwritten
    /// additive counter.
    pub fn set_max_id(&self, id: CounterId, value: u64) {
        if value == 0 {
            return;
        }
        self.inner.shards[0]
            .slot(id.index())
            .expect("CounterId from a different registry")
            .fetch_max(value, Ordering::Relaxed);
    }

    /// Raise the counter `name` to at least `value`, creating it if absent.
    /// See [`Metrics::set_max_id`] for the no-mixing-with-`add` rule.
    pub fn set_max(&self, name: &str, value: u64) {
        if value == 0 {
            return;
        }
        let id = match self.lookup(name) {
            Some(id) => id,
            None => self.register(name),
        };
        self.set_max_id(id, value);
    }

    /// Merged value of the counter `id` points at.
    pub fn get_id(&self, id: CounterId) -> u64 {
        self.inner
            .shards
            .iter()
            .filter_map(|s| s.slot(id.index()))
            .map(|slot| slot.load(Ordering::Relaxed))
            .sum()
    }

    /// Read one counter (0 if never written).
    pub fn get(&self, name: &str) -> u64 {
        match self.lookup(name) {
            Some(id) => self.get_id(id),
            None => 0,
        }
    }

    /// Copy out all counters, merging shards.
    ///
    /// Counters whose merged value is zero are omitted, matching the
    /// original map-backed registry where unwritten/reset counters had no
    /// entry. The merge is not a single atomic cut across counters, but
    /// each counter's value is a sum of per-shard reads, so no individual
    /// counter is ever observed torn or mid-decrement (counters only grow
    /// between resets).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let interner = self.inner.interner.read().expect("metrics interner");
        let mut out = BTreeMap::new();
        for (idx, name) in interner.names.iter().enumerate() {
            let v = self.get_id(CounterId(idx as u32));
            if v != 0 {
                out.insert(name.clone(), v);
            }
        }
        out
    }

    /// Reset all counters to zero (between experiment configurations).
    ///
    /// Registered names and their [`CounterId`]s remain valid.
    pub fn reset(&self) {
        let interner = self.inner.interner.read().expect("metrics interner");
        for idx in 0..interner.names.len() {
            for shard in &self.inner.shards {
                if let Some(slot) = shard.slot(idx) {
                    slot.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Sum of every counter whose name starts with `prefix`.
    ///
    /// Link-class accounting uses hierarchical names such as
    /// `net.cross.bytes` / `net.intra_hdfs.bytes`, so callers can aggregate
    /// with `sum_prefix("net.")`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        let interner = self.inner.interner.read().expect("metrics interner");
        interner
            .names
            .iter()
            .enumerate()
            .filter(|(_, name)| name.starts_with(prefix))
            .map(|(idx, _)| self.get_id(CounterId(idx as u32)))
            .sum()
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two plus the
/// zero bucket, covering the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket latency histogram with a lock-free record path.
///
/// Buckets are powers of two: value `v` lands in bucket `⌈log2(v+1)⌉`, so
/// bucket `i > 0` covers `[2^(i-1), 2^i)` and bucket 0 holds exact zeros.
/// Recording is a single `fetch_add(Relaxed)` plus min/max maintenance —
/// no locks, safe from any number of client threads. Quantiles come from a
/// [`HistogramSnapshot`]; the log-bucket layout guarantees the reported
/// quantile is within 2× of the true order statistic (and clamped to the
/// observed min/max, which tightens the tails).
///
/// Clones share state, like [`Metrics`].
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a recorded value.
fn histogram_bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation (e.g. a latency in microseconds).
    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[histogram_bucket(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let i = &self.inner;
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| i.buckets[b].load(Ordering::Relaxed)),
            count: i.count.load(Ordering::Relaxed),
            sum: i.sum.load(Ordering::Relaxed),
            min: i.min.load(Ordering::Relaxed),
            max: i.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state; merge snapshots from
/// several histograms (per-client, per-phase) to get aggregate quantiles.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the corresponding order statistic, clamped to the observed
    /// min/max. Within 2× of the exact order statistic by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank of the order statistic: ceil(q * count), at least 1
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // bucket b covers [2^(b-1), 2^b); report the upper bound
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A labelled family of [`Histogram`]s (e.g. one latency distribution per
/// tenant).
///
/// Labels are interned on first use; `with_label` hands back a cheap
/// [`Histogram`] clone whose record path is the same lock-free
/// `fetch_add` as an unlabelled histogram — the family lock is only taken
/// to resolve a label, so hot paths resolve once and keep the handle.
/// Clones of the family share state, like [`Metrics`].
#[derive(Clone, Default)]
pub struct HistogramVec {
    inner: Arc<RwLock<BTreeMap<String, Histogram>>>,
}

impl HistogramVec {
    pub fn new() -> HistogramVec {
        HistogramVec::default()
    }

    /// The histogram for `label`, created empty on first use. The returned
    /// handle shares state with the family — hold it across records
    /// instead of re-resolving the label per observation.
    pub fn with_label(&self, label: &str) -> Histogram {
        if let Some(h) = self.inner.read().expect("histogram vec").get(label) {
            return h.clone();
        }
        let mut map = self.inner.write().expect("histogram vec");
        map.entry(label.to_string()).or_default().clone()
    }

    /// Record one observation under `label`.
    pub fn record(&self, label: &str, v: u64) {
        self.with_label(label).record(v);
    }

    /// Labels seen so far, in sorted order.
    pub fn labels(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("histogram vec")
            .keys()
            .cloned()
            .collect()
    }

    /// Point-in-time snapshot of every label's distribution.
    pub fn snapshot_all(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.inner
            .read()
            .expect("histogram vec")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// All labels merged into one aggregate distribution.
    pub fn merged(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for snap in self.snapshot_all().values() {
            out.merge(snap);
        }
        out
    }
}

/// The original registry: one mutex around a string-keyed map.
///
/// Kept verbatim as the A/B baseline for the metrics microbench
/// (`benches/microbench.rs`); production code uses [`Metrics`].
#[derive(Debug, Clone, Default)]
pub struct MutexMetrics {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl MutexMetrics {
    pub fn new() -> MutexMetrics {
        MutexMetrics::default()
    }

    pub fn add(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock().expect("metrics mutex poisoned");
        *m.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("metrics mutex poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn add_get_reset() {
        let m = Metrics::new();
        assert_eq!(m.get("x"), 0);
        m.add("x", 5);
        m.incr("x");
        assert_eq!(m.get("x"), 6);
        m.reset();
        assert_eq!(m.get("x"), 0);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.add("shared", 3);
        assert_eq!(m.get("shared"), 3);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let m = Metrics::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        m.incr("c");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("c"), 8000);
    }

    #[test]
    fn set_max_tracks_high_water_across_threads() {
        let m = Metrics::new();
        let id = m.register("hw");
        thread::scope(|s| {
            for t in 0..8u64 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        m.set_max_id(id, t * 1000 + i);
                    }
                });
            }
        });
        // snapshot sum == max because set_max only ever touches shard 0
        assert_eq!(m.get_id(id), 7999);
        assert_eq!(m.snapshot().get("hw"), Some(&7999));
        // lowering never takes effect; zero is a no-op
        m.set_max("hw", 5);
        m.set_max("hw", 0);
        assert_eq!(m.get("hw"), 7999);
        m.reset();
        assert_eq!(m.get("hw"), 0);
    }

    #[test]
    fn set_max_zero_leaves_counter_absent() {
        let m = Metrics::new();
        m.set_max("never", 0);
        assert!(m.snapshot().is_empty());
    }

    /// Exact quantile from a sorted copy: the value at rank ceil(q*n).
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn histogram_quantiles_track_sorted_reference() {
        // deterministic skewed values: mostly small, a heavy tail
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| {
                let x = crate::hash::splitmix64(i);
                match x % 100 {
                    0..=89 => x % 500,           // bulk: < 500
                    90..=98 => 1_000 + x % 9000, // mid tail
                    _ => 100_000 + x % 400_000,  // far tail
                }
            })
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        assert_eq!(snap.sum(), values.iter().sum::<u64>());
        assert_eq!(snap.min(), sorted[0]);
        assert_eq!(snap.max(), *sorted.last().unwrap());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = snap.quantile(q);
            // log2 buckets: reported value within [exact, 2*exact]
            assert!(
                approx >= exact && approx <= exact.max(1) * 2,
                "q={q}: exact {exact}, histogram {approx}"
            );
        }
    }

    #[test]
    fn histogram_merge_equals_single() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 4096;
            if i % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let single = all.snapshot();
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.sum(), single.sum());
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::new();
        let empty = h.snapshot();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.mean(), 0.0);

        h.record(0);
        let one = h.snapshot();
        assert_eq!(one.p50(), 0);
        assert_eq!(one.max(), 0);

        h.record(7);
        let two = h.snapshot();
        assert_eq!(two.quantile(1.0), 7); // clamped to observed max
        assert_eq!(two.quantile(0.0), 0);
        assert!(two.mean() > 3.4 && two.mean() < 3.6);
    }

    #[test]
    fn histogram_concurrent_records_do_not_lose_updates() {
        let h = Histogram::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 8000);
    }

    #[test]
    fn histogram_vec_labels_are_independent_and_mergeable() {
        let v = HistogramVec::new();
        v.record("a", 10);
        v.record("a", 20);
        v.record("b", 1000);
        assert_eq!(v.labels(), vec!["a".to_string(), "b".to_string()]);
        let snaps = v.snapshot_all();
        assert_eq!(snaps["a"].count(), 2);
        assert_eq!(snaps["b"].count(), 1);
        assert_eq!(snaps["b"].min(), 1000);
        let merged = v.merged();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 1030);
        // clones share state; resolved handles keep recording into the family
        let h = v.with_label("a");
        let v2 = v.clone();
        h.record(30);
        assert_eq!(v2.snapshot_all()["a"].count(), 3);
    }

    #[test]
    fn histogram_vec_concurrent_labels() {
        let v = HistogramVec::new();
        thread::scope(|s| {
            for t in 0..8u64 {
                let v = v.clone();
                s.spawn(move || {
                    let h = v.with_label(&format!("t{}", t % 4));
                    for i in 0..1000u64 {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(v.merged().count(), 8000);
        assert_eq!(v.labels().len(), 4);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(histogram_bucket(0), 0);
        assert_eq!(histogram_bucket(1), 1);
        assert_eq!(histogram_bucket(2), 2);
        assert_eq!(histogram_bucket(3), 2);
        assert_eq!(histogram_bucket(4), 3);
        assert_eq!(histogram_bucket(u64::MAX), 64);
    }

    #[test]
    fn prefix_sum_aggregates() {
        let m = Metrics::new();
        m.add("net.cross.bytes", 10);
        m.add("net.intra_hdfs.bytes", 20);
        m.add("scan.bytes", 99);
        assert_eq!(m.sum_prefix("net."), 30);
        assert_eq!(m.sum_prefix("nope."), 0);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let m = Metrics::new();
        m.add("a", 1);
        let snap = m.snapshot();
        m.add("a", 1);
        assert_eq!(snap.get("a"), Some(&1));
        assert_eq!(m.get("a"), 2);
    }

    #[test]
    fn register_is_idempotent_and_ids_survive_reset() {
        let m = Metrics::new();
        let id = m.register("hot.path");
        assert_eq!(m.register("hot.path"), id);
        m.add_id(id, 41);
        m.incr_id(id);
        assert_eq!(m.get_id(id), 42);
        assert_eq!(m.get("hot.path"), 42);
        m.reset();
        assert_eq!(m.get_id(id), 0);
        m.add_id(id, 7);
        assert_eq!(m.get("hot.path"), 7);
    }

    #[test]
    fn snapshot_omits_zero_counters() {
        let m = Metrics::new();
        m.register("never.written");
        m.add("written", 1);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.get("written"), Some(&1));
        m.reset();
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn string_and_id_paths_hit_the_same_counter() {
        let m = Metrics::new();
        m.add("mixed", 2);
        let id = m.register("mixed");
        m.add_id(id, 3);
        assert_eq!(m.get("mixed"), 5);
        assert_eq!(m.snapshot().get("mixed"), Some(&5));
    }

    /// The ISSUE's stress bar: 16 threads × 100k increments spread over a
    /// set of overlapping counters. Totals must be exact (no lost updates)
    /// and snapshots taken while writers run must never observe a torn
    /// value — counters only grow, so every observed value must be between
    /// 0 and the final total and monotonic per counter across snapshots.
    #[test]
    fn stress_16_threads_100k_increments_exact_and_untorn() {
        const THREADS: usize = 16;
        const OPS: usize = 100_000;
        const COUNTERS: usize = 10;
        let m = Metrics::new();
        let names: Vec<String> = (0..COUNTERS).map(|i| format!("stress.c{i}")).collect();
        // half the threads use pre-registered ids, half the string path —
        // both must land on the same counters
        let ids: Vec<CounterId> = names.iter().map(|n| m.register(n)).collect();
        thread::scope(|s| {
            for t in 0..THREADS {
                let m = m.clone();
                let names = &names;
                let ids = &ids;
                s.spawn(move || {
                    for i in 0..OPS {
                        let c = (t + i) % COUNTERS;
                        if t % 2 == 0 {
                            m.add_id(ids[c], 1);
                        } else {
                            m.add(&names[c], 1);
                        }
                    }
                });
            }
            // concurrent snapshot reader: values never exceed the final
            // total and never decrease per counter
            let m2 = m.clone();
            let names2 = &names;
            s.spawn(move || {
                let mut last = [0u64; COUNTERS];
                for _ in 0..50 {
                    let snap = m2.snapshot();
                    for (c, name) in names2.iter().enumerate() {
                        let v = snap.get(name).copied().unwrap_or(0);
                        assert!(
                            v <= (THREADS * OPS) as u64,
                            "torn/overshot snapshot: {name}={v}"
                        );
                        assert!(v >= last[c], "{name} went backwards: {} -> {v}", last[c]);
                        last[c] = v;
                    }
                    thread::yield_now();
                }
            });
        });
        // every counter received exactly THREADS*OPS/COUNTERS increments
        // (each thread walks all counters round-robin, OPS/COUNTERS each)
        let expect = (THREADS * OPS / COUNTERS) as u64;
        for name in &names {
            assert_eq!(m.get(name), expect, "{name}");
        }
        let total: u64 = m.snapshot().values().sum();
        assert_eq!(total, (THREADS * OPS) as u64);
    }

    /// Acceptance check for the sharded registry: beat the mutexed map at
    /// 8+ threads of contended adds. Wall-clock dependent, so `#[ignore]`d
    /// from the default suite — run with `cargo test -- --ignored`, or see
    /// the `metrics_contended_add` Criterion group for the full curve.
    #[test]
    #[ignore = "timing-sensitive A/B; run explicitly or use the microbench"]
    fn metrics_registry_contended_sharded_beats_mutex() {
        const THREADS: usize = 8;
        const OPS: usize = 200_000;
        let sharded = Metrics::new();
        let id = sharded.register("contended");
        let t0 = std::time::Instant::now();
        thread::scope(|s| {
            for _ in 0..THREADS {
                let m = sharded.clone();
                s.spawn(move || {
                    for _ in 0..OPS {
                        m.add_id(id, 1);
                    }
                });
            }
        });
        let sharded_elapsed = t0.elapsed();
        assert_eq!(sharded.get_id(id), (THREADS * OPS) as u64);

        let mutexed = MutexMetrics::new();
        let t0 = std::time::Instant::now();
        thread::scope(|s| {
            for _ in 0..THREADS {
                let m = mutexed.clone();
                s.spawn(move || {
                    for _ in 0..OPS {
                        m.add("contended", 1);
                    }
                });
            }
        });
        let mutex_elapsed = t0.elapsed();
        assert_eq!(mutexed.get("contended"), (THREADS * OPS) as u64);
        assert!(
            sharded_elapsed < mutex_elapsed,
            "sharded {sharded_elapsed:?} not faster than mutex {mutex_elapsed:?} at {THREADS} threads"
        );
    }

    #[test]
    fn many_counters_cross_chunk_boundary() {
        let m = Metrics::new();
        let n = CHUNK_SLOTS + 10;
        let ids: Vec<CounterId> = (0..n).map(|i| m.register(&format!("c{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            m.add_id(*id, i as u64 + 1);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(m.get_id(*id), i as u64 + 1);
        }
        assert_eq!(m.snapshot().len(), n);
    }

    #[test]
    fn mutex_baseline_still_works() {
        let m = MutexMetrics::new();
        m.add("x", 2);
        m.incr("x");
        assert_eq!(m.get("x"), 3);
        assert_eq!(m.snapshot().get("x"), Some(&3));
    }
}
