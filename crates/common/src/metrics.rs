//! A tiny shared metrics registry.
//!
//! Every component of the simulation (fabric links, scans, Bloom filter
//! builds, hash joins) increments named counters here. The experiment
//! harness reads a [`MetricsSnapshot`] after each run; Table 1 of the paper
//! ("# tuples shuffled / sent") is literally two counters from this registry.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Cloneable handle to a set of named `u64` counters.
///
/// Clones share the same underlying counters (the registry is handed to
/// every worker thread of both engines).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

/// An immutable copy of all counters at a point in time.
pub type MetricsSnapshot = BTreeMap<String, u64>;

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock().expect("metrics mutex poisoned");
        *m.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increment by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Read one counter (0 if never written).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("metrics mutex poisoned").clone()
    }

    /// Reset all counters (between experiment configurations).
    pub fn reset(&self) {
        self.inner.lock().expect("metrics mutex poisoned").clear();
    }

    /// Sum of every counter whose name starts with `prefix`.
    ///
    /// Link-class accounting uses hierarchical names such as
    /// `net.cross.bytes` / `net.intra_hdfs.bytes`, so callers can aggregate
    /// with `sum_prefix("net.")`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics mutex poisoned")
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn add_get_reset() {
        let m = Metrics::new();
        assert_eq!(m.get("x"), 0);
        m.add("x", 5);
        m.incr("x");
        assert_eq!(m.get("x"), 6);
        m.reset();
        assert_eq!(m.get("x"), 0);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.add("shared", 3);
        assert_eq!(m.get("shared"), 3);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let m = Metrics::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        m.incr("c");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("c"), 8000);
    }

    #[test]
    fn prefix_sum_aggregates() {
        let m = Metrics::new();
        m.add("net.cross.bytes", 10);
        m.add("net.intra_hdfs.bytes", 20);
        m.add("scan.bytes", 99);
        assert_eq!(m.sum_prefix("net."), 30);
        assert_eq!(m.sum_prefix("nope."), 0);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let m = Metrics::new();
        m.add("a", 1);
        let snap = m.snapshot();
        m.add("a", 1);
        assert_eq!(snap.get("a"), Some(&1));
        assert_eq!(m.get("a"), 2);
    }
}
