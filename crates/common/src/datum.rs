//! Scalar values and their types.

use std::fmt;

/// The scalar types supported by the engines.
///
/// Four types cover the paper's schemas: 4-byte ints (`joinKey`, `corPred`,
/// `indPred`, extracted group ids), 8-byte ints (`uniqKey`, counts/sums),
/// dates (stored as days-since-epoch, the natural encoding for the paper's
/// `days(a) - days(b)` predicate), and variable-length strings
/// (`groupByExtractCol`, dummy varchars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    I32,
    I64,
    /// Days since an arbitrary epoch; arithmetic happens on the raw i32.
    Date,
    Utf8,
}

impl DataType {
    /// Bytes a single value of this type occupies on the (simulated) wire.
    ///
    /// `Utf8` is variable-width; this returns the fixed 4-byte length prefix,
    /// with the payload accounted for separately by
    /// [`crate::Batch::serialized_bytes`].
    pub fn fixed_wire_width(self) -> usize {
        match self {
            DataType::I32 | DataType::Date => 4,
            DataType::I64 => 8,
            DataType::Utf8 => 4,
        }
    }

    /// Human-readable name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::Date => "date",
            DataType::Utf8 => "utf8",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
///
/// Used at the edges of the system (literals in expressions, group-by keys in
/// result rows, test assertions). The hot paths operate on
/// [`crate::Column`] vectors instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Datum {
    I32(i32),
    I64(i64),
    Date(i32),
    Utf8(String),
}

impl Datum {
    pub fn data_type(&self) -> DataType {
        match self {
            Datum::I32(_) => DataType::I32,
            Datum::I64(_) => DataType::I64,
            Datum::Date(_) => DataType::Date,
            Datum::Utf8(_) => DataType::Utf8,
        }
    }

    /// Extract an `i32`, if that is what this datum holds.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Datum::I32(v) | Datum::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `i64`, widening `i32`/`Date` losslessly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::I32(v) | Datum::Date(v) => Some(i64::from(*v)),
            Datum::I64(v) => Some(*v),
            Datum::Utf8(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Utf8(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::I32(v) => write!(f, "{v}"),
            Datum::I64(v) => write!(f, "{v}"),
            Datum::Date(v) => write!(f, "date({v})"),
            Datum::Utf8(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::I32.fixed_wire_width(), 4);
        assert_eq!(DataType::I64.fixed_wire_width(), 8);
        assert_eq!(DataType::Date.fixed_wire_width(), 4);
        assert_eq!(DataType::Utf8.fixed_wire_width(), 4);
    }

    #[test]
    fn datum_conversions() {
        assert_eq!(Datum::I32(7).as_i64(), Some(7));
        assert_eq!(Datum::Date(3).as_i32(), Some(3));
        assert_eq!(Datum::I64(1 << 40).as_i64(), Some(1 << 40));
        assert_eq!(Datum::I64(5).as_i32(), None);
        assert_eq!(Datum::Utf8("x".into()).as_str(), Some("x"));
        assert_eq!(Datum::Utf8("x".into()).as_i64(), None);
    }

    #[test]
    fn datum_type_roundtrip() {
        for d in [
            Datum::I32(1),
            Datum::I64(2),
            Datum::Date(3),
            Datum::Utf8("a".into()),
        ] {
            // every datum reports a type whose name is non-empty
            assert!(!d.data_type().name().is_empty());
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::I32(1).to_string(), "1");
        assert_eq!(Datum::Date(9).to_string(), "date(9)");
        assert_eq!(Datum::Utf8("u".into()).to_string(), "\"u\"");
    }
}
