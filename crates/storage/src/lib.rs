//! HDFS file formats: delimited text and a Parquet-like columnar format.
//!
//! The paper evaluates every join on two layouts of the log table `L` (§5.4):
//!
//! * **text** — 1 TB of delimited rows. Scans must read and parse every byte
//!   of every row regardless of which columns the query needs;
//! * **Parquet + Snappy** — 421 GB columnar. The JEN I/O layer pushes
//!   projections down, reading only the needed column chunks.
//!
//! This crate reproduces that axis with two real encoders:
//!
//! * [`text`] — escaped, pipe-delimited rows; decoding always touches the
//!   full payload ([`DecodeResult::bytes_read`] equals the file size);
//! * [`columnar`] — per-column chunks with a directory, zigzag-varint
//!   integer encoding, front-coded strings, and per-chunk min/max statistics.
//!   Decoding with a projection reads only the projected chunks, and the
//!   min/max stats allow chunk skipping under `col <= v` predicates.
//!
//! The `bytes_read` accounting feeds the cost model: the paper's observed
//! 240 s (text) vs 38 s (columnar, projected) scan gap is driven exactly by
//! this quantity.

pub mod columnar;
pub mod format;
pub mod text;
pub mod varint;

pub use format::{decode, encode, DecodeResult, FileFormat};
