//! Format dispatch: one entry point over both encodings.

use crate::{columnar, text};
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::schema::Schema;

/// The two on-HDFS layouts evaluated by the paper (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileFormat {
    /// Delimited rows; scans parse every byte.
    Text,
    /// Column chunks with statistics; scans read only projected chunks.
    Columnar,
}

impl FileFormat {
    pub fn name(self) -> &'static str {
        match self {
            FileFormat::Text => "text",
            FileFormat::Columnar => "columnar",
        }
    }
}

impl std::fmt::Display for FileFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of decoding one stored block.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    pub batch: Batch,
    /// Payload bytes actually touched. For text this is the whole block;
    /// for columnar with a projection it is header + projected chunks only.
    pub bytes_read: usize,
}

/// Encode a batch in the given format.
pub fn encode(format: FileFormat, batch: &Batch) -> Vec<u8> {
    match format {
        FileFormat::Text => text::encode(batch),
        FileFormat::Columnar => columnar::encode(batch),
    }
}

/// Decode a block, with optional projection pushdown.
///
/// ```
/// use hybrid_common::batch::{Batch, Column};
/// use hybrid_common::datum::DataType;
/// use hybrid_common::schema::Schema;
/// use hybrid_storage::{decode, encode, FileFormat};
///
/// let schema = Schema::from_pairs(&[("k", DataType::I32), ("url", DataType::Utf8)]);
/// let batch = Batch::new(schema.clone(), vec![
///     Column::I32(vec![1, 2]),
///     Column::Utf8(vec!["url_1/a".into(), "url_1/b".into()]),
/// ]).unwrap();
///
/// let bytes = encode(FileFormat::Columnar, &batch);
/// // projection pushdown: only the key chunk is touched
/// let r = decode(FileFormat::Columnar, &schema, &bytes, Some(&[0])).unwrap();
/// assert_eq!(r.batch.schema().len(), 1);
/// assert!(r.bytes_read < bytes.len());
/// ```
pub fn decode(
    format: FileFormat,
    schema: &Schema,
    bytes: &[u8],
    projection: Option<&[usize]>,
) -> Result<DecodeResult> {
    match format {
        FileFormat::Text => {
            let batch = text::decode(schema, bytes, projection)?;
            Ok(DecodeResult {
                batch,
                bytes_read: bytes.len(),
            })
        }
        FileFormat::Columnar => {
            let (batch, bytes_read) = columnar::decode(schema, bytes, projection)?;
            Ok(DecodeResult { batch, bytes_read })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;

    fn batch() -> Batch {
        Batch::new(
            Schema::from_pairs(&[("k", DataType::I32), ("s", DataType::Utf8)]),
            vec![
                Column::I32((0..100).collect()),
                Column::Utf8((0..100).map(|i| format!("url_{i}/page")).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn both_formats_roundtrip() {
        let b = batch();
        for fmt in [FileFormat::Text, FileFormat::Columnar] {
            let bytes = encode(fmt, &b);
            let r = decode(fmt, b.schema(), &bytes, None).unwrap();
            assert_eq!(r.batch, b, "format {fmt}");
        }
    }

    #[test]
    fn text_reads_everything_columnar_reads_projection() {
        let b = batch();
        let tb = encode(FileFormat::Text, &b);
        let cb = encode(FileFormat::Columnar, &b);
        let tr = decode(FileFormat::Text, b.schema(), &tb, Some(&[0])).unwrap();
        let cr = decode(FileFormat::Columnar, b.schema(), &cb, Some(&[0])).unwrap();
        assert_eq!(tr.bytes_read, tb.len());
        assert!(cr.bytes_read < cb.len() / 2);
        assert_eq!(tr.batch, cr.batch);
    }

    #[test]
    fn columnar_smaller_than_text_on_url_data() {
        // the paper's 2.4x parquet-vs-text ratio direction
        let b = batch();
        let tb = encode(FileFormat::Text, &b);
        let cb = encode(FileFormat::Columnar, &b);
        assert!(
            cb.len() < tb.len(),
            "columnar {} vs text {}",
            cb.len(),
            tb.len()
        );
    }
}
