//! LEB128 varints and zigzag transforms used by the columnar format.

use hybrid_common::error::{HybridError, Result};

/// Append `v` to `out` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a varint starting at `*pos`, advancing `*pos` past it.
#[inline]
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| HybridError::Storage("varint truncated".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(HybridError::Storage("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Map signed to unsigned so small-magnitude values stay short.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Write a signed value zigzag-varint encoded.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Read a signed zigzag-varint value.
#[inline]
pub fn read_i64(bytes: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(read_u64(bytes, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edges() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16383, 16384, u64::MAX, u64::MAX - 1];
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn i64_roundtrip_edges() {
        let mut buf = Vec::new();
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -128, 127];
        for &v in &values {
            write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_values_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in -1000..1000 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
        let mut pos = 0;
        assert!(read_u64(&[], &mut pos).is_err());
    }

    #[test]
    fn malformed_overlong_varint_errors() {
        // 11 continuation bytes cannot encode a u64.
        let buf = vec![0xFFu8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_any_u64(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn roundtrip_any_i64(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }

        #[test]
        fn roundtrip_sequences(vs in proptest::collection::vec(any::<i64>(), 0..100)) {
            let mut buf = Vec::new();
            for &v in &vs {
                write_i64(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &vs {
                prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
