//! Delimited text format.
//!
//! One row per line, fields separated by `|`, with backslash escaping for
//! the delimiter, newlines, and backslashes. This mirrors the paper's "1 TB
//! text format" baseline: a reader must scan and parse every byte even when
//! the query needs two of six columns.

use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::schema::Schema;

const DELIM: u8 = b'|';
const ESCAPE: u8 = b'\\';

/// Encode a batch as delimited text.
pub fn encode(batch: &Batch) -> Vec<u8> {
    // Rough preallocation: fixed width + string payloads + delimiters.
    let mut out =
        Vec::with_capacity(batch.serialized_bytes() + batch.num_rows() * batch.schema().len());
    let cols = batch.columns();
    for row in 0..batch.num_rows() {
        for (i, col) in cols.iter().enumerate() {
            if i > 0 {
                out.push(DELIM);
            }
            match col {
                Column::I32(v) => push_int(&mut out, i64::from(v[row])),
                Column::Date(v) => push_int(&mut out, i64::from(v[row])),
                Column::I64(v) => push_int(&mut out, v[row]),
                Column::Utf8(v) => push_escaped(&mut out, v[row].as_bytes()),
            }
        }
        out.push(b'\n');
    }
    out
}

fn push_int(out: &mut Vec<u8>, v: i64) {
    let mut buf = itoa_buf(v);
    out.append(&mut buf);
}

fn itoa_buf(v: i64) -> Vec<u8> {
    // Small enough to not warrant a dependency.
    v.to_string().into_bytes()
}

fn push_escaped(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == DELIM || b == ESCAPE || b == b'\n' {
            out.push(ESCAPE);
        }
        out.push(b);
    }
}

/// Decode text back into a batch of `schema`, optionally projecting.
///
/// The full payload is parsed either way — that is the point of the text
/// baseline — and the returned `bytes_read` in [`crate::DecodeResult`]
/// equals `bytes.len()`.
pub fn decode(schema: &Schema, bytes: &[u8], projection: Option<&[usize]>) -> Result<Batch> {
    let width = schema.len();
    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.data_type, 128))
        .collect();

    let mut field = Vec::with_capacity(32);
    let mut col_idx = 0usize;
    let mut i = 0usize;
    let mut row_has_content = false;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            ESCAPE => {
                let next = *bytes.get(i + 1).ok_or_else(|| {
                    HybridError::Storage("dangling escape at end of text payload".into())
                })?;
                field.push(next);
                row_has_content = true;
                i += 2;
                continue;
            }
            DELIM => {
                finish_field(schema, &mut columns, col_idx, &field)?;
                field.clear();
                col_idx += 1;
                if col_idx >= width {
                    return Err(HybridError::Storage(format!(
                        "row has more than {width} fields"
                    )));
                }
                row_has_content = true;
            }
            b'\n' => {
                if col_idx != width - 1 {
                    return Err(HybridError::Storage(format!(
                        "row has {} fields, expected {width}",
                        col_idx + 1
                    )));
                }
                finish_field(schema, &mut columns, col_idx, &field)?;
                field.clear();
                col_idx = 0;
                row_has_content = false;
            }
            _ => {
                field.push(b);
                row_has_content = true;
            }
        }
        i += 1;
    }
    if row_has_content || col_idx != 0 {
        return Err(HybridError::Storage(
            "text payload missing final newline".into(),
        ));
    }

    let batch = Batch::new(schema.clone(), columns)?;
    match projection {
        Some(p) => batch.project(p),
        None => Ok(batch),
    }
}

fn finish_field(
    schema: &Schema,
    columns: &mut [Column],
    col_idx: usize,
    field: &[u8],
) -> Result<()> {
    let dt = schema.field(col_idx)?.data_type;
    match (dt, &mut columns[col_idx]) {
        (DataType::I32, Column::I32(v)) => v.push(parse_int(field)? as i32),
        (DataType::Date, Column::Date(v)) => v.push(parse_int(field)? as i32),
        (DataType::I64, Column::I64(v)) => v.push(parse_int(field)?),
        (DataType::Utf8, Column::Utf8(v)) => v.push(
            String::from_utf8(field.to_vec())
                .map_err(|_| HybridError::Storage("non-UTF8 text field".into()))?,
        ),
        _ => unreachable!("columns allocated from schema"),
    }
    Ok(())
}

fn parse_int(field: &[u8]) -> Result<i64> {
    let s = std::str::from_utf8(field)
        .map_err(|_| HybridError::Storage("non-UTF8 numeric field".into()))?;
    s.parse::<i64>()
        .map_err(|_| HybridError::Storage(format!("bad integer field {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::datum::Datum;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::I32),
            ("u", DataType::I64),
            ("d", DataType::Date),
            ("s", DataType::Utf8),
        ])
    }

    fn batch() -> Batch {
        Batch::new(
            schema(),
            vec![
                Column::I32(vec![1, -2, 3]),
                Column::I64(vec![10, 20, -30]),
                Column::Date(vec![100, 0, 5]),
                Column::Utf8(vec![
                    "plain".into(),
                    "pipe|and\\slash".into(),
                    "new\nline".into(),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_with_escapes() {
        let b = batch();
        let bytes = encode(&b);
        let decoded = decode(&schema(), &bytes, None).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn projection_applies_after_full_parse() {
        let b = batch();
        let bytes = encode(&b);
        let decoded = decode(&schema(), &bytes, Some(&[3, 0])).unwrap();
        assert_eq!(decoded.schema().field(0).unwrap().name, "s");
        assert_eq!(decoded.num_rows(), 3);
        assert_eq!(decoded.row(1)[1], Datum::I32(-2));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let b = Batch::empty(schema());
        let bytes = encode(&b);
        assert!(bytes.is_empty());
        let decoded = decode(&schema(), &bytes, None).unwrap();
        assert_eq!(decoded.num_rows(), 0);
    }

    #[test]
    fn malformed_rows_error() {
        // too few fields
        assert!(decode(&schema(), b"1|2|3\n", None).is_err());
        // too many fields
        assert!(decode(&schema(), b"1|2|3|x|9\n", None).is_err());
        // missing trailing newline
        assert!(decode(&schema(), b"1|2|3|x", None).is_err());
        // bad int
        assert!(decode(&schema(), b"zz|2|3|x\n", None).is_err());
        // dangling escape
        assert!(decode(&schema(), b"1|2|3|x\\", None).is_err());
    }

    #[test]
    fn text_is_wider_than_columnar_for_typical_rows() {
        // sanity: text carries delimiters + ascii digits
        let b = batch();
        assert!(encode(&b).len() > b.serialized_bytes() / 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_batch() -> impl Strategy<Value = Batch> {
        let rows = 0..50usize;
        rows.prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<i32>(), n..=n),
                proptest::collection::vec(any::<i64>(), n..=n),
                proptest::collection::vec(any::<i32>(), n..=n),
                proptest::collection::vec("[ -~]{0,20}", n..=n), // printable ascii incl. | and backslash
            )
                .prop_map(|(a, b, c, d)| {
                    Batch::new(
                        Schema::from_pairs(&[
                            ("k", DataType::I32),
                            ("u", DataType::I64),
                            ("d", DataType::Date),
                            ("s", DataType::Utf8),
                        ]),
                        vec![
                            Column::I32(a),
                            Column::I64(b),
                            Column::Date(c),
                            Column::Utf8(d),
                        ],
                    )
                    .unwrap()
                })
        })
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_batches(b in arb_batch()) {
            let bytes = encode(&b);
            let decoded = decode(b.schema(), &bytes, None).unwrap();
            prop_assert_eq!(decoded, b);
        }
    }
}
