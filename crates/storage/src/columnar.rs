//! Parquet-like columnar format.
//!
//! Layout of one encoded row group:
//!
//! ```text
//! magic   u32  = b"HWCF"
//! ncols   u32
//! nrows   u32
//! directory: ncols × { offset u32, len u32 }     (absolute, from byte 0)
//! chunks:   ncols column chunks
//! ```
//!
//! Column chunk payloads:
//!
//! * integer columns (`I32`, `I64`, `Date`): `min i64, max i64` statistics
//!   (zigzag-varint) followed by zigzag-varint values — random 20-bit values
//!   like the workload's `corPred` shrink from 4 to ≤3 bytes;
//! * string columns: front coding — each value stores the length of the
//!   prefix shared with its predecessor plus the remaining suffix, which
//!   compresses URL-shaped data heavily.
//!
//! Together these reproduce the paper's observed ≈2.4× size reduction of
//! Parquet+Snappy over text, and the directory enables true **projection
//! pushdown**: [`decode`] touches only the chunks the query needs, which is
//! what makes the columnar scan anchor (38 s vs 240 s) possible.

use crate::varint;
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::schema::Schema;

const MAGIC: u32 = u32::from_le_bytes(*b"HWCF");
const HEADER_LEN: usize = 12;

/// Encode a batch as one columnar row group.
pub fn encode(batch: &Batch) -> Vec<u8> {
    let ncols = batch.columns().len();
    let mut chunks: Vec<Vec<u8>> = Vec::with_capacity(ncols);
    for col in batch.columns() {
        chunks.push(encode_chunk(col));
    }

    let dir_len = ncols * 8;
    let mut out =
        Vec::with_capacity(HEADER_LEN + dir_len + chunks.iter().map(Vec::len).sum::<usize>());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(ncols as u32).to_le_bytes());
    out.extend_from_slice(&(batch.num_rows() as u32).to_le_bytes());
    let mut offset = HEADER_LEN + dir_len;
    for chunk in &chunks {
        out.extend_from_slice(&(offset as u32).to_le_bytes());
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        offset += chunk.len();
    }
    for chunk in &chunks {
        out.extend_from_slice(chunk);
    }
    out
}

fn encode_chunk(col: &Column) -> Vec<u8> {
    let mut out = Vec::with_capacity(col.len() * 3 + 16);
    match col {
        Column::I32(v) | Column::Date(v) => {
            let (min, max) = int_stats(v.iter().map(|&x| i64::from(x)));
            varint::write_i64(&mut out, min);
            varint::write_i64(&mut out, max);
            for &x in v {
                varint::write_i64(&mut out, i64::from(x));
            }
        }
        Column::I64(v) => {
            let (min, max) = int_stats(v.iter().copied());
            varint::write_i64(&mut out, min);
            varint::write_i64(&mut out, max);
            for &x in v {
                varint::write_i64(&mut out, x);
            }
        }
        Column::Utf8(v) => {
            let mut prev: &str = "";
            for s in v {
                let shared = common_prefix_len(prev, s);
                varint::write_u64(&mut out, shared as u64);
                varint::write_u64(&mut out, (s.len() - shared) as u64);
                out.extend_from_slice(&s.as_bytes()[shared..]);
                prev = s;
            }
        }
    }
    out
}

fn int_stats(values: impl Iterator<Item = i64>) -> (i64, i64) {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut any = false;
    for v in values {
        min = min.min(v);
        max = max.max(v);
        any = true;
    }
    if any {
        (min, max)
    } else {
        (0, -1) // canonical empty: min > max
    }
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    // Count matching bytes, then back off to a char boundary of `b`.
    let n = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    let mut n = n;
    while !b.is_char_boundary(n) {
        n -= 1;
    }
    n
}

/// Per-chunk integer statistics readable without decoding the values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats {
    pub min: i64,
    pub max: i64,
    pub rows: usize,
}

struct Directory {
    ncols: usize,
    nrows: usize,
}

fn read_header(bytes: &[u8]) -> Result<Directory> {
    if bytes.len() < HEADER_LEN {
        return Err(HybridError::Storage(
            "columnar payload shorter than header".into(),
        ));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(HybridError::Storage("bad columnar magic".into()));
    }
    let ncols = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let nrows = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    if bytes.len() < HEADER_LEN + ncols * 8 {
        return Err(HybridError::Storage("columnar directory truncated".into()));
    }
    Ok(Directory { ncols, nrows })
}

fn chunk_slice<'a>(bytes: &'a [u8], dir: &Directory, col: usize) -> Result<&'a [u8]> {
    if col >= dir.ncols {
        return Err(HybridError::ColumnOutOfBounds {
            index: col,
            width: dir.ncols,
        });
    }
    let entry = HEADER_LEN + col * 8;
    let offset = u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap()) as usize;
    let len = u32::from_le_bytes(bytes[entry + 4..entry + 8].try_into().unwrap()) as usize;
    bytes
        .get(offset..offset + len)
        .ok_or_else(|| HybridError::Storage("columnar chunk out of bounds".into()))
}

/// Decode a row group, reading **only** the projected columns.
///
/// Returns the batch and the number of payload bytes actually touched
/// (header + directory + projected chunks) — the projection-pushdown I/O
/// saving measured by the cost model.
pub fn decode(
    schema: &Schema,
    bytes: &[u8],
    projection: Option<&[usize]>,
) -> Result<(Batch, usize)> {
    let dir = read_header(bytes)?;
    if dir.ncols != schema.len() {
        return Err(HybridError::SchemaMismatch(format!(
            "columnar payload has {} columns, schema {}",
            dir.ncols,
            schema.len()
        )));
    }
    let all: Vec<usize>;
    let proj: &[usize] = match projection {
        Some(p) => p,
        None => {
            all = (0..dir.ncols).collect();
            &all
        }
    };
    let mut bytes_read = HEADER_LEN + dir.ncols * 8;
    let mut columns = Vec::with_capacity(proj.len());
    for &col in proj {
        let chunk = chunk_slice(bytes, &dir, col)?;
        bytes_read += chunk.len();
        columns.push(decode_chunk(
            schema.field(col)?.data_type,
            chunk,
            dir.nrows,
        )?);
    }
    let out_schema = schema.project(proj)?;
    Ok((Batch::new(out_schema, columns)?, bytes_read))
}

fn decode_chunk(dt: DataType, chunk: &[u8], nrows: usize) -> Result<Column> {
    let mut pos = 0usize;
    match dt {
        DataType::I32 | DataType::Date => {
            let _min = varint::read_i64(chunk, &mut pos)?;
            let _max = varint::read_i64(chunk, &mut pos)?;
            let mut v = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let x = varint::read_i64(chunk, &mut pos)?;
                let x = i32::try_from(x)
                    .map_err(|_| HybridError::Storage("i32 chunk value out of range".into()))?;
                v.push(x);
            }
            Ok(if dt == DataType::I32 {
                Column::I32(v)
            } else {
                Column::Date(v)
            })
        }
        DataType::I64 => {
            let _min = varint::read_i64(chunk, &mut pos)?;
            let _max = varint::read_i64(chunk, &mut pos)?;
            let mut v = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                v.push(varint::read_i64(chunk, &mut pos)?);
            }
            Ok(Column::I64(v))
        }
        DataType::Utf8 => {
            let mut v: Vec<String> = Vec::with_capacity(nrows);
            let mut prev = String::new();
            for _ in 0..nrows {
                let shared = varint::read_u64(chunk, &mut pos)? as usize;
                let suffix_len = varint::read_u64(chunk, &mut pos)? as usize;
                if shared > prev.len() {
                    return Err(HybridError::Storage("front-coding prefix overrun".into()));
                }
                let suffix = chunk
                    .get(pos..pos + suffix_len)
                    .ok_or_else(|| HybridError::Storage("front-coded suffix truncated".into()))?;
                pos += suffix_len;
                let mut s = String::with_capacity(shared + suffix_len);
                s.push_str(&prev[..shared]);
                s.push_str(
                    std::str::from_utf8(suffix)
                        .map_err(|_| HybridError::Storage("non-UTF8 string suffix".into()))?,
                );
                prev = s.clone();
                v.push(s);
            }
            Ok(Column::Utf8(v))
        }
    }
}

/// Read the min/max statistics of an integer column chunk without decoding
/// its values. Returns `None` for string columns or empty chunks.
///
/// JEN's scanner uses this for chunk skipping: a predicate `col <= t`
/// eliminates the whole block when `min > t`.
pub fn column_stats(schema: &Schema, bytes: &[u8], col: usize) -> Result<Option<ChunkStats>> {
    let dir = read_header(bytes)?;
    let dt = schema.field(col)?.data_type;
    if dt == DataType::Utf8 {
        return Ok(None);
    }
    let chunk = chunk_slice(bytes, &dir, col)?;
    let mut pos = 0usize;
    let min = varint::read_i64(chunk, &mut pos)?;
    let max = varint::read_i64(chunk, &mut pos)?;
    if min > max {
        return Ok(None); // canonical empty chunk
    }
    Ok(Some(ChunkStats {
        min,
        max,
        rows: dir.nrows,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::I32),
            ("u", DataType::I64),
            ("d", DataType::Date),
            ("s", DataType::Utf8),
        ])
    }

    fn batch() -> Batch {
        Batch::new(
            schema(),
            vec![
                Column::I32(vec![5, -1, 400]),
                Column::I64(vec![1 << 40, 0, -9]),
                Column::Date(vec![100, 101, 99]),
                Column::Utf8(vec![
                    "url_12/alpha".into(),
                    "url_12/alpine".into(),
                    "url_7/x".into(),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_full() {
        let b = batch();
        let bytes = encode(&b);
        let (decoded, read) = decode(&schema(), &bytes, None).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(read, bytes.len());
    }

    #[test]
    fn projection_reads_fewer_bytes() {
        let b = batch();
        let bytes = encode(&b);
        let (decoded, read) = decode(&schema(), &bytes, Some(&[0])).unwrap();
        assert_eq!(decoded.schema().len(), 1);
        assert_eq!(decoded.column(0).unwrap().as_i32().unwrap(), &[5, -1, 400]);
        assert!(
            read < bytes.len(),
            "projected read {read} of {}",
            bytes.len()
        );
    }

    #[test]
    fn stats_readable_without_decode() {
        let b = batch();
        let bytes = encode(&b);
        let s = column_stats(&schema(), &bytes, 0).unwrap().unwrap();
        assert_eq!((s.min, s.max, s.rows), (-1, 400, 3));
        let s = column_stats(&schema(), &bytes, 2).unwrap().unwrap();
        assert_eq!((s.min, s.max), (99, 101));
        assert!(column_stats(&schema(), &bytes, 3).unwrap().is_none());
    }

    #[test]
    fn empty_batch_roundtrip_and_stats() {
        let b = Batch::empty(schema());
        let bytes = encode(&b);
        let (decoded, _) = decode(&schema(), &bytes, None).unwrap();
        assert_eq!(decoded.num_rows(), 0);
        assert!(column_stats(&schema(), &bytes, 0).unwrap().is_none());
    }

    #[test]
    fn front_coding_compresses_shared_prefixes() {
        let urls: Vec<String> = (0..1000)
            .map(|i| format!("url_42/very/long/common/path/segment/item{i}"))
            .collect();
        let s = Schema::from_pairs(&[("s", DataType::Utf8)]);
        let b = Batch::new(s.clone(), vec![Column::Utf8(urls)]).unwrap();
        let bytes = encode(&b);
        assert!(
            bytes.len() * 3 < b.serialized_bytes(),
            "front coding only reached {} of {}",
            bytes.len(),
            b.serialized_bytes()
        );
        let (decoded, _) = decode(&s, &bytes, None).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(decode(&schema(), b"", None).is_err());
        assert!(decode(&schema(), b"XXXXYYYYZZZZ", None).is_err());
        let short_schema = Schema::from_pairs(&[("k", DataType::I32)]);
        let bytes = encode(&batch());
        assert!(decode(&short_schema, &bytes, None).is_err());
        // truncating the payload loses chunk bytes
        let b = batch();
        let bytes = encode(&b);
        assert!(decode(&schema(), &bytes[..bytes.len() - 4], None).is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = Schema::from_pairs(&[("s", DataType::Utf8)]);
        let b = Batch::new(
            s.clone(),
            vec![Column::Utf8(vec![
                "héllo".into(),
                "héllò".into(),
                "日本語".into(),
            ])],
        )
        .unwrap();
        let (decoded, _) = decode(&s, &encode(&b), None).unwrap();
        assert_eq!(decoded, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_batch() -> impl Strategy<Value = Batch> {
        (0..40usize).prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<i32>(), n..=n),
                proptest::collection::vec(any::<i64>(), n..=n),
                proptest::collection::vec(".{0,12}", n..=n), // arbitrary unicode
            )
                .prop_map(|(a, b, c)| {
                    Batch::new(
                        Schema::from_pairs(&[
                            ("k", DataType::I32),
                            ("u", DataType::I64),
                            ("s", DataType::Utf8),
                        ]),
                        vec![Column::I32(a), Column::I64(b), Column::Utf8(c)],
                    )
                    .unwrap()
                })
        })
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(b in arb_batch()) {
            let bytes = encode(&b);
            let (decoded, read) = decode(b.schema(), &bytes, None).unwrap();
            prop_assert_eq!(&decoded, &b);
            prop_assert_eq!(read, bytes.len());
        }

        #[test]
        fn projection_matches_full_decode(b in arb_batch(), cols in proptest::collection::vec(0usize..3, 1..3)) {
            let bytes = encode(&b);
            let (full, _) = decode(b.schema(), &bytes, None).unwrap();
            let (projected, _) = decode(b.schema(), &bytes, Some(&cols)).unwrap();
            prop_assert_eq!(projected, full.project(&cols).unwrap());
        }

        #[test]
        fn stats_bound_values(b in arb_batch()) {
            let bytes = encode(&b);
            if b.num_rows() > 0 {
                let s = column_stats(b.schema(), &bytes, 0).unwrap().unwrap();
                let vals = b.column(0).unwrap().as_i32().unwrap();
                for &v in vals {
                    prop_assert!(i64::from(v) >= s.min && i64::from(v) <= s.max);
                }
            }
        }
    }
}
