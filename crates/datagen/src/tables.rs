//! Row generation for `T`, `L`, and the star-schema dimension tables.

use crate::spec::{DimSpec, KeyPlan, KeySkew, WorkloadSpec, PRED_DOMAIN};
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::Result;
use hybrid_common::hash::{hash_key_seeded, splitmix64};
use hybrid_common::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `T`'s schema — the paper's transaction table.
pub fn t_schema() -> Schema {
    Schema::from_pairs(&[
        ("uniqKey", DataType::I64),
        ("joinKey", DataType::I32),
        ("corPred", DataType::I32),
        ("indPred", DataType::I32),
        ("predAfterJoin", DataType::Date),
        ("dummy1", DataType::Utf8),
        ("dummy2", DataType::I32),
        ("dummy3", DataType::I32),
    ])
}

/// `L`'s schema — the paper's click-log table.
pub fn l_schema() -> Schema {
    Schema::from_pairs(&[
        ("joinKey", DataType::I32),
        ("corPred", DataType::I32),
        ("indPred", DataType::I32),
        ("predAfterJoin", DataType::Date),
        ("groupByExtractCol", DataType::Utf8),
        ("dummy", DataType::Utf8),
    ])
}

/// Column indexes of `T` used when building queries.
pub mod t_cols {
    pub const UNIQ_KEY: usize = 0;
    pub const JOIN_KEY: usize = 1;
    pub const COR_PRED: usize = 2;
    pub const IND_PRED: usize = 3;
    pub const DATE: usize = 4;
}

/// Column indexes of `L`.
pub mod l_cols {
    pub const JOIN_KEY: usize = 0;
    pub const COR_PRED: usize = 1;
    pub const IND_PRED: usize = 2;
    pub const DATE: usize = 3;
    pub const GROUP: usize = 4;

    /// Foreign-key column referencing dimension `i` (star schemas append
    /// one `fk<i>` column per dimension after the base six).
    pub fn fk(i: usize) -> usize {
        6 + i
    }
}

/// `L`'s schema under `spec`: the base six columns plus one `fk<i>` FK
/// column per dimension. Equal to [`l_schema`] for two-table specs.
pub fn l_star_schema(spec: &WorkloadSpec) -> Schema {
    let mut fields = l_schema().fields().to_vec();
    for i in 0..spec.dimensions.len() {
        fields.push(hybrid_common::schema::Field::new(
            format!("fk{i}"),
            DataType::I32,
        ));
    }
    Schema::new(fields)
}

/// Schema of a dimension table (all dimensions share the shape).
pub fn dim_schema() -> Schema {
    Schema::from_pairs(&[
        ("dimKey", DataType::I32),
        ("dimPred", DataType::I32),
        ("dimAttr", DataType::I64),
        ("dimPayload", DataType::Utf8),
    ])
}

/// Column indexes of a dimension table.
pub mod dim_cols {
    pub const KEY: usize = 0;
    pub const PRED: usize = 1;
    pub const ATTR: usize = 2;
}

/// Key-pool geometry shared by both generators (see [`KeyPlan`] docs).
pub(crate) struct Pools {
    common: usize,
    t_selected: usize,
    l_only_base: usize,
    l_only: usize,
    t_non_base: usize,
    t_non: usize,
    l_non_base: usize,
    l_non: usize,
}

impl Pools {
    pub(crate) fn new(plan: &KeyPlan) -> Pools {
        let l_only = plan.l_selected - plan.common;
        let l_only_base = plan.t_selected;
        let t_non_base = l_only_base + l_only;
        let l_non_base = t_non_base + plan.t_nonsel;
        Pools {
            common: plan.common,
            t_selected: plan.t_selected,
            l_only_base,
            l_only,
            t_non_base,
            t_non: plan.t_nonsel,
            l_non_base,
            l_non: plan.l_nonsel,
        }
    }

    /// T's i-th key (i over T's full key set).
    fn t_key(&self, i: usize) -> usize {
        if i < self.t_selected {
            i // common ∪ T-only-selected
        } else {
            self.t_non_base + (i - self.t_selected)
        }
    }

    fn t_full(&self) -> usize {
        self.t_selected + self.t_non
    }

    /// L's j-th key.
    fn l_key(&self, j: usize) -> usize {
        if j < self.common {
            j
        } else if j < self.common + self.l_only {
            self.l_only_base + (j - self.common)
        } else {
            self.l_non_base + (j - self.common - self.l_only)
        }
    }

    fn l_full(&self) -> usize {
        self.common + self.l_only + self.l_non
    }

    /// Is key id `k` in `JK(T')` (passes T's `corPred`)?
    fn t_key_selected(&self, k: usize) -> bool {
        k < self.t_selected
    }

    /// Is key id `k` in `JK(L')`?
    fn l_key_selected(&self, k: usize) -> bool {
        k < self.common || (self.l_only_base..self.l_only_base + self.l_only).contains(&k)
    }
}

/// Draws pool indexes under the spec's [`KeySkew`].
///
/// Zipf uses an inverse-CDF table: cumulative weights over the pool are
/// scaled to the full `u64` range once, and each draw is a binary search on
/// `rng.next_u64()` — no floating-point sampling from the RNG, so draws are
/// bit-deterministic for a given seed across platforms.
pub(crate) struct KeySampler {
    n: usize,
    /// Scaled cumulative weights; `None` = uniform.
    cdf: Option<Vec<u64>>,
    single: bool,
}

impl KeySampler {
    pub(crate) fn new(skew: KeySkew, n: usize) -> KeySampler {
        match skew {
            KeySkew::Uniform => KeySampler {
                n,
                cdf: None,
                single: false,
            },
            KeySkew::SingleKey => KeySampler {
                n,
                cdf: None,
                single: true,
            },
            KeySkew::Zipf { s } => {
                let mut acc = 0.0f64;
                let mut cum = Vec::with_capacity(n);
                for r in 0..n {
                    acc += 1.0 / ((r + 1) as f64).powf(s);
                    cum.push(acc);
                }
                let scale = u64::MAX as f64 / acc;
                let cdf = cum.into_iter().map(|c| (c * scale) as u64).collect();
                KeySampler {
                    n,
                    cdf: Some(cdf),
                    single: false,
                }
            }
        }
    }

    pub(crate) fn draw(&self, rng: &mut StdRng) -> usize {
        if self.single {
            return 0;
        }
        match &self.cdf {
            None => rng.gen_range(0..self.n),
            Some(cdf) => {
                let u = rng.next_u64();
                cdf.partition_point(|&c| c < u).min(self.n - 1)
            }
        }
    }
}

/// Query thresholds realizing the spec's selectivities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// `T.corPred <= t_cor` (inclusive bound).
    pub t_cor: i64,
    pub t_ind: i64,
    pub l_cor: i64,
    pub l_ind: i64,
}

/// Derive the `a/b/c/d` thresholds of the paper's query from a key plan.
pub fn thresholds(plan: &KeyPlan) -> Thresholds {
    Thresholds {
        t_cor: cor_threshold(plan.t_cor_frac()) - 1,
        t_ind: ind_threshold(plan.t_ind_frac) - 1,
        l_cor: cor_threshold(plan.l_cor_frac()) - 1,
        l_ind: ind_threshold(plan.l_ind_frac) - 1,
    }
}

fn cor_threshold(frac: f64) -> i64 {
    ((frac * PRED_DOMAIN as f64).round() as i64).clamp(1, PRED_DOMAIN)
}

fn ind_threshold(frac: f64) -> i64 {
    ((frac * PRED_DOMAIN as f64).round() as i64).clamp(1, PRED_DOMAIN)
}

/// `corPred` is a deterministic function of the join key (that is what
/// makes it *correlated*): selected keys land uniformly below the
/// threshold, non-selected keys uniformly at or above it.
fn cor_pred_value(key: usize, selected: bool, frac: f64, seed: u64) -> i32 {
    let thr = cor_threshold(frac);
    let h = hash_key_seeded(key as i64, seed) as i64;
    let v = if selected {
        h.rem_euclid(thr)
    } else if thr >= PRED_DOMAIN {
        // degenerate: everything selected; non-selected pool is empty anyway
        PRED_DOMAIN - 1
    } else {
        thr + h.rem_euclid(PRED_DOMAIN - thr)
    };
    v as i32
}

/// Generate the transaction table `T`.
pub fn generate_t(spec: &WorkloadSpec, plan: &KeyPlan) -> Result<Batch> {
    let pools = Pools::new(plan);
    let sampler = KeySampler::new(spec.skew, pools.t_full());
    let mut rng = StdRng::seed_from_u64(spec.seed ^ T_SEED_X);
    let n = spec.t_rows;
    let mut uniq = Vec::with_capacity(n);
    let mut join = Vec::with_capacity(n);
    let mut cor = Vec::with_capacity(n);
    let mut ind = Vec::with_capacity(n);
    let mut date = Vec::with_capacity(n);
    let mut d1 = Vec::with_capacity(n);
    let mut d2 = Vec::with_capacity(n);
    let mut d3 = Vec::with_capacity(n);
    for i in 0..n {
        let ki = sampler.draw(&mut rng);
        let key = pools.t_key(ki);
        uniq.push(i as i64);
        join.push(key as i32);
        cor.push(cor_pred_value(
            key,
            pools.t_key_selected(key),
            plan.t_cor_frac(),
            spec.seed ^ 0x7C0,
        ));
        ind.push(rng.gen_range(0..PRED_DOMAIN) as i32);
        date.push(rng.gen_range(0..spec.date_days));
        // dummy columns pad the row to a realistic ~60-byte width
        d1.push(format!("txn-{:016x}-{:08x}", splitmix64(i as u64), key));
        d2.push(rng.gen_range(0..1_000_000));
        d3.push(rng.gen_range(0..86_400));
    }
    Batch::new(
        t_schema(),
        vec![
            Column::I64(uniq),
            Column::I32(join),
            Column::I32(cor),
            Column::I32(ind),
            Column::Date(date),
            Column::Utf8(d1),
            Column::I32(d2),
            Column::I32(d3),
        ],
    )
}

/// Threshold of dimension `d`'s local predicate: `dimPred <= threshold`
/// passes exactly the selected key prefix `[0, d.selected_keys())`.
pub fn dim_pred_threshold(d: &DimSpec) -> i64 {
    cor_threshold(d.selected_keys() as f64 / d.rows as f64) - 1
}

/// Generate dimension table `i`. Every column is a pure function of the
/// key id and the spec seed, so regeneration is bit-identical.
pub fn generate_dim(spec: &WorkloadSpec, i: usize) -> Result<Batch> {
    let d = &spec.dimensions[i];
    let sel = d.selected_keys();
    let frac = sel as f64 / d.rows as f64;
    let seed = dim_seed(spec, i);
    let mut key = Vec::with_capacity(d.rows);
    let mut pred = Vec::with_capacity(d.rows);
    let mut attr = Vec::with_capacity(d.rows);
    let mut payload = Vec::with_capacity(d.rows);
    for k in 0..d.rows {
        key.push(k as i32);
        pred.push(cor_pred_value(k, k < sel, frac, seed));
        attr.push((hash_key_seeded(k as i64, seed ^ 0xA77) % 1000) as i64);
        payload.push(format!("dim{i}-{:012x}", splitmix64(k as u64 ^ seed)));
    }
    Batch::new(
        dim_schema(),
        vec![
            Column::I32(key),
            Column::I32(pred),
            Column::I64(attr),
            Column::Utf8(payload),
        ],
    )
}

/// Foreign-key column of `L` referencing dimension `i`.
///
/// Each FK draw flips a correlation coin: with probability
/// `fk_correlation` the key comes uniformly from the selected prefix,
/// otherwise from the full key range under the dimension's skew. The
/// column has its own RNG (seeded per dimension), so adding dimensions
/// never perturbs the base `L` columns.
fn generate_fk_column(spec: &WorkloadSpec, i: usize) -> Column {
    let d = &spec.dimensions[i];
    let sel = d.selected_keys();
    let sampler = KeySampler::new(d.skew, d.rows);
    let mut rng = StdRng::seed_from_u64(dim_seed(spec, i) ^ FK_SEED_X);
    let corr_cut = if d.fk_correlation >= 1.0 {
        u64::MAX
    } else {
        (d.fk_correlation * u64::MAX as f64) as u64
    };
    let mut fk = Vec::with_capacity(spec.l_rows);
    for _ in 0..spec.l_rows {
        let correlated = d.fk_correlation >= 1.0 || rng.next_u64() < corr_cut;
        let key = if correlated {
            rng.gen_range(0..sel)
        } else {
            sampler.draw(&mut rng)
        };
        fk.push(key as i32);
    }
    Column::I32(fk)
}

fn dim_seed(spec: &WorkloadSpec, i: usize) -> u64 {
    spec.seed ^ DIM_SEED_X ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generate the log table `L` (plus one FK column per dimension for star
/// specs — the base six columns are byte-identical either way).
pub fn generate_l(spec: &WorkloadSpec, plan: &KeyPlan) -> Result<Batch> {
    let pools = Pools::new(plan);
    let sampler = KeySampler::new(spec.skew, pools.l_full());
    let mut rng = StdRng::seed_from_u64(spec.seed ^ L_SEED_X);
    let n = spec.l_rows;
    let mut join = Vec::with_capacity(n);
    let mut cor = Vec::with_capacity(n);
    let mut ind = Vec::with_capacity(n);
    let mut date = Vec::with_capacity(n);
    let mut grp = Vec::with_capacity(n);
    let mut dummy = Vec::with_capacity(n);
    for i in 0..n {
        let kj = sampler.draw(&mut rng);
        let key = pools.l_key(kj);
        join.push(key as i32);
        cor.push(cor_pred_value(
            key,
            pools.l_key_selected(key),
            plan.l_cor_frac(),
            spec.seed ^ 0x1C0,
        ));
        ind.push(rng.gen_range(0..PRED_DOMAIN) as i32);
        date.push(rng.gen_range(0..spec.date_days));
        // url_<group>/<path> — the paper's 46-char varchar group column
        let g = rng.gen_range(0..spec.num_groups);
        grp.push(format!("url_{g}/pages/{:024x}", splitmix64(i as u64)));
        dummy.push(format!("{:08x}", splitmix64(i as u64 ^ 0xD)));
    }
    let mut columns = vec![
        Column::I32(join),
        Column::I32(cor),
        Column::I32(ind),
        Column::Date(date),
        Column::Utf8(grp),
        Column::Utf8(dummy),
    ];
    for i in 0..spec.dimensions.len() {
        columns.push(generate_fk_column(spec, i));
    }
    Batch::new(l_star_schema(spec), columns)
}

const T_SEED_X: u64 = 0x7AB_1E0F_7000;
const L_SEED_X: u64 = 0x106_0F10_0000;
const DIM_SEED_X: u64 = 0xD1_0000_0000;
const FK_SEED_X: u64 = 0xFACC_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        sigma_t: f64,
        sigma_l: f64,
        st: f64,
        sl: f64,
    ) -> (WorkloadSpec, KeyPlan, Batch, Batch) {
        let spec = WorkloadSpec {
            sigma_t,
            sigma_l,
            st,
            sl,
            t_rows: 20_000,
            l_rows: 60_000,
            num_keys: 500,
            ..WorkloadSpec::tiny()
        };
        let plan = spec.key_plan().unwrap();
        let t = generate_t(&spec, &plan).unwrap();
        let l = generate_l(&spec, &plan).unwrap();
        (spec, plan, t, l)
    }

    fn measured_selectivities(plan: &KeyPlan, t: &Batch, l: &Batch) -> (f64, f64, f64, f64) {
        use hybrid_common::expr::Expr;
        use std::collections::HashSet;
        let th = thresholds(plan);
        let t_pred =
            Expr::col_le(t_cols::COR_PRED, th.t_cor).and(Expr::col_le(t_cols::IND_PRED, th.t_ind));
        let l_pred =
            Expr::col_le(l_cols::COR_PRED, th.l_cor).and(Expr::col_le(l_cols::IND_PRED, th.l_ind));
        let t_mask = t_pred.eval_predicate(t).unwrap();
        let l_mask = l_pred.eval_predicate(l).unwrap();
        let sigma_t = t_mask.iter().filter(|&&x| x).count() as f64 / t.num_rows() as f64;
        let sigma_l = l_mask.iter().filter(|&&x| x).count() as f64 / l.num_rows() as f64;

        let t_keys: HashSet<i32> = t
            .filter(&t_mask)
            .unwrap()
            .column(t_cols::JOIN_KEY)
            .unwrap()
            .as_i32()
            .unwrap()
            .iter()
            .copied()
            .collect();
        let l_keys: HashSet<i32> = l
            .filter(&l_mask)
            .unwrap()
            .column(l_cols::JOIN_KEY)
            .unwrap()
            .as_i32()
            .unwrap()
            .iter()
            .copied()
            .collect();
        let inter = t_keys.intersection(&l_keys).count() as f64;
        (
            sigma_t,
            sigma_l,
            inter / t_keys.len() as f64,
            inter / l_keys.len() as f64,
        )
    }

    #[test]
    fn table1_selectivities_realized() {
        let (_, plan, t, l) = setup(0.1, 0.4, 0.2, 0.1);
        let (sigma_t, sigma_l, st, sl) = measured_selectivities(&plan, &t, &l);
        assert!((sigma_t - 0.1).abs() < 0.02, "σT measured {sigma_t}");
        assert!((sigma_l - 0.4).abs() < 0.02, "σL measured {sigma_l}");
        assert!((st - 0.2).abs() < 0.03, "ST' measured {st}");
        assert!((sl - 0.1).abs() < 0.03, "SL' measured {sl}");
    }

    #[test]
    fn fig9_extreme_selectivities_realized() {
        let (_, plan, t, l) = setup(0.1, 0.4, 0.5, 0.8);
        let (sigma_t, sigma_l, st, sl) = measured_selectivities(&plan, &t, &l);
        assert!((sigma_t - 0.1).abs() < 0.02, "σT measured {sigma_t}");
        assert!((sigma_l - 0.4).abs() < 0.02, "σL measured {sigma_l}");
        assert!((st - 0.5).abs() < 0.04, "ST' measured {st}");
        assert!((sl - 0.8).abs() < 0.04, "SL' measured {sl}");
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, _, t1, _) = setup(0.1, 0.4, 0.2, 0.1);
        let (_, _, t2, _) = setup(0.1, 0.4, 0.2, 0.1);
        assert_eq!(t1, t2);
    }

    #[test]
    fn cor_pred_is_key_correlated() {
        // the same join key always gets the same corPred value
        let (_, _, t, _) = setup(0.1, 0.4, 0.2, 0.1);
        use std::collections::HashMap;
        let keys = t.column(t_cols::JOIN_KEY).unwrap().as_i32().unwrap();
        let cors = t.column(t_cols::COR_PRED).unwrap().as_i32().unwrap();
        let mut seen: HashMap<i32, i32> = HashMap::new();
        for (k, c) in keys.iter().zip(cors) {
            let prev = seen.insert(*k, *c);
            if let Some(p) = prev {
                assert_eq!(p, *c, "corPred must be a function of the key");
            }
        }
    }

    #[test]
    fn zipf_concentrates_mass_on_rank_zero() {
        let spec = WorkloadSpec {
            skew: KeySkew::Zipf { s: 1.2 },
            l_rows: 50_000,
            ..WorkloadSpec::tiny()
        };
        let plan = spec.key_plan().unwrap();
        let l = generate_l(&spec, &plan).unwrap();
        let keys = l.column(l_cols::JOIN_KEY).unwrap().as_i32().unwrap();
        let hot = keys.iter().filter(|&&k| k == 0).count() as f64 / keys.len() as f64;
        // zipf(1.2) over ~100 keys puts >20% of all rows on the rank-0 key;
        // uniform would put ~1%.
        assert!(hot > 0.2, "rank-0 share {hot}");
        // pool membership unchanged: every key is still a valid pool id
        let uni_plan = WorkloadSpec::tiny().key_plan().unwrap();
        assert_eq!(plan, uni_plan, "skew must not alter the key plan");
    }

    #[test]
    fn single_key_collapses_the_key_column() {
        let spec = WorkloadSpec {
            skew: KeySkew::SingleKey,
            ..WorkloadSpec::tiny()
        };
        let plan = spec.key_plan().unwrap();
        let t = generate_t(&spec, &plan).unwrap();
        let l = generate_l(&spec, &plan).unwrap();
        for b in [(&t, t_cols::JOIN_KEY), (&l, l_cols::JOIN_KEY)] {
            let keys = b.0.column(b.1).unwrap().as_i32().unwrap();
            assert!(keys.iter().all(|&k| k == 0));
        }
    }

    #[test]
    fn skewed_generation_is_deterministic() {
        let spec = WorkloadSpec {
            skew: KeySkew::Zipf { s: 0.8 },
            ..WorkloadSpec::tiny()
        };
        let plan = spec.key_plan().unwrap();
        assert_eq!(
            generate_l(&spec, &plan).unwrap(),
            generate_l(&spec, &plan).unwrap()
        );
    }

    #[test]
    fn schemas_have_paper_shape() {
        assert_eq!(t_schema().len(), 8);
        assert_eq!(l_schema().len(), 6);
        assert_eq!(t_schema().field(t_cols::JOIN_KEY).unwrap().name, "joinKey");
        assert_eq!(
            l_schema().field(l_cols::GROUP).unwrap().name,
            "groupByExtractCol"
        );
    }

    #[test]
    fn star_l_keeps_base_columns_byte_identical() {
        let two = WorkloadSpec::tiny();
        let star = WorkloadSpec::tiny_star(3);
        let plan = two.key_plan().unwrap();
        let l_two = generate_l(&two, &plan).unwrap();
        let l_star = generate_l(&star, &star.key_plan().unwrap()).unwrap();
        assert_eq!(l_star.schema().len(), 9, "six base columns + three FKs");
        for c in 0..l_two.schema().len() {
            assert_eq!(
                l_two.column(c).unwrap(),
                l_star.column(c).unwrap(),
                "base column {c} perturbed by dimensions"
            );
        }
    }

    #[test]
    fn dim_predicate_selects_exactly_the_prefix() {
        let spec = WorkloadSpec::tiny_star(2);
        for (i, d) in spec.dimensions.iter().enumerate() {
            let dim = generate_dim(&spec, i).unwrap();
            let thr = dim_pred_threshold(d);
            let keys = dim.column(dim_cols::KEY).unwrap().as_i32().unwrap();
            let preds = dim.column(dim_cols::PRED).unwrap().as_i32().unwrap();
            for (k, p) in keys.iter().zip(preds) {
                assert_eq!(
                    i64::from(*p) <= thr,
                    (*k as usize) < d.selected_keys(),
                    "dim {i} key {k}: predicate must select the prefix exactly"
                );
            }
        }
    }

    #[test]
    fn star_cardinality_matches_analytic_expectation() {
        use hybrid_common::expr::Expr;
        let mut spec = WorkloadSpec::tiny_star(2);
        spec.l_rows = 40_000;
        let plan = spec.key_plan().unwrap();
        let l = generate_l(&spec, &plan).unwrap();
        // survivors of L's own predicate, then of each dim's FK membership
        let th = thresholds(&plan);
        let l_pred =
            Expr::col_le(l_cols::COR_PRED, th.l_cor).and(Expr::col_le(l_cols::IND_PRED, th.l_ind));
        let mask = l_pred.eval_predicate(&l).unwrap();
        let survivors = l.filter(&mask).unwrap();
        let mut joined = survivors.num_rows() as f64;
        for (i, d) in spec.dimensions.iter().enumerate() {
            let fks = survivors.column(l_cols::fk(i)).unwrap().as_i32().unwrap();
            let hit = fks
                .iter()
                .filter(|&&k| (k as usize) < d.selected_keys())
                .count();
            joined *= hit as f64 / fks.len() as f64;
        }
        let expect = spec.expected_star_rows();
        assert!(
            (joined - expect).abs() / expect < 0.05,
            "ground truth {joined} vs analytic {expect}"
        );
    }

    #[test]
    fn zipf_fk_draws_reproduce_seeded_identically() {
        let mut spec = WorkloadSpec::tiny_star(2);
        spec.dimensions[1].skew = KeySkew::Zipf { s: 1.2 };
        spec.dimensions[1].fk_correlation = 0.2;
        let plan = spec.key_plan().unwrap();
        let a = generate_l(&spec, &plan).unwrap();
        let b = generate_l(&spec, &plan).unwrap();
        assert_eq!(a, b, "skewed FK generation must be seed-deterministic");
        // the uncorrelated zipf mass concentrates on key 0
        let fks = a.column(l_cols::fk(1)).unwrap().as_i32().unwrap();
        let hot = fks.iter().filter(|&&k| k == 0).count() as f64 / fks.len() as f64;
        let uniform_share = 1.0 / spec.dimensions[1].rows as f64;
        assert!(
            hot > 20.0 * uniform_share,
            "zipf rank-0 share {hot} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn group_column_parses_via_extract_group() {
        let (_, _, _, l) = setup(0.1, 0.4, 0.2, 0.1);
        let groups = l.column(l_cols::GROUP).unwrap().as_utf8().unwrap();
        for g in groups.iter().take(100) {
            let v = hybrid_common::expr::extract_group(g);
            assert!((0..8).contains(&v), "bad group value {g} -> {v}");
        }
    }
}
