//! Workload parameters and the join-key pool arithmetic.

use hybrid_common::error::{HybridError, Result};

/// The predicate-value domain for `corPred`/`indPred` (20-bit ints, like
/// the paper's int predicate columns scaled down).
pub const PRED_DOMAIN: i64 = 1 << 20;

/// Join-key frequency distribution of the generated rows.
///
/// The paper's generator draws keys uniformly from the pools; real click
/// logs are heavy-tailed, and a single hot key turns one JEN worker into
/// the shuffle straggler. Skewed variants keep the pool *membership* (and
/// therefore the selectivity plan) unchanged — only the draw frequencies
/// shift, with rank 0 mapped to key id 0, which lies in the common pool on
/// both tables, so the heavy hitter survives every local predicate and
/// shows up in the shuffle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeySkew {
    /// Every key in the pool equally likely (the seed behaviour).
    #[default]
    Uniform,
    /// Zipf with exponent `s`: the rank-`r` pool index is drawn with
    /// probability ∝ 1/(r+1)^s.
    Zipf { s: f64 },
    /// Pathological: every row carries pool index 0 (one single join key).
    SingleKey,
}

/// One DB-resident dimension table of a star-schema workload.
///
/// The dimension holds `rows` rows keyed `0..rows` (unique `dimKey`); the
/// local predicate selects exactly the key prefix `[0, round(sigma·rows))`,
/// so the selected key set is analytically known. The fact table `L` grows
/// one foreign-key column per dimension: each FK is drawn from the
/// *selected* prefix with probability `fk_correlation` and from the full
/// key range (under `skew`) otherwise — the shared-key correlation knob
/// that controls the expected join cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimSpec {
    pub rows: usize,
    /// Fraction of dimension keys passing the dimension's local predicate.
    pub sigma: f64,
    /// Probability that a fact FK is drawn from the selected key prefix.
    pub fk_correlation: f64,
    /// Draw distribution of the uncorrelated FK fraction.
    pub skew: KeySkew,
}

impl DimSpec {
    /// Number of keys passing the dimension predicate (the selected prefix).
    pub fn selected_keys(&self) -> usize {
        ((self.sigma * self.rows as f64).round() as usize).clamp(1, self.rows)
    }

    /// Analytic probability that a fact row joins a *selected* dimension
    /// row, valid for `KeySkew::Uniform` draws (skewed draws concentrate on
    /// the selected prefix, so this is a lower bound there).
    pub fn pass_fraction(&self) -> f64 {
        let sel = self.selected_keys() as f64 / self.rows as f64;
        self.fk_correlation + (1.0 - self.fk_correlation) * sel
    }
}

/// Requested workload shape.
///
/// `sigma_t`/`sigma_l` are the *combined* local-predicate selectivities on
/// `T`/`L`; `st`/`sl` are the join-key selectivities on `T'`/`L'` as
/// defined in §3.4:
/// `S_T' = |JK(T') ∩ JK(L')| / |JK(T')|`, `S_L'` symmetric.
///
/// A non-empty `dimensions` list turns the workload into a star schema:
/// `L` becomes the fact table (one extra FK column per dimension) and each
/// [`DimSpec`] materializes a DB-side dimension table. The base `T`/`L`
/// column bytes are unchanged by adding dimensions — two-table workloads
/// generated before and after this field stay bit-identical.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub t_rows: usize,
    pub l_rows: usize,
    /// Nominal join-key universe size (the paper uses 16 M keys for 1.6 B
    /// `T` rows; keep the same 1:100 ratio at smaller scales).
    pub num_keys: usize,
    pub sigma_t: f64,
    pub sigma_l: f64,
    pub st: f64,
    pub sl: f64,
    /// Number of distinct `url_<g>` groups in `groupByExtractCol`.
    pub num_groups: usize,
    /// Width of the date window (both tables draw dates uniformly from
    /// `[0, date_days)`; the workload's post-join predicate keeps pairs
    /// within one day).
    pub date_days: i32,
    pub seed: u64,
    /// Join-key draw distribution for both tables.
    pub skew: KeySkew,
    /// Star-schema dimension tables (empty for the paper's two-table
    /// workload). Capped at [`MAX_DIMENSIONS`].
    pub dimensions: Vec<DimSpec>,
}

/// Hard cap on the dimension count: the fabric reserves one dim-shipping
/// and one cascade-reshuffle stream tag per dimension, and the advisor
/// enumerates all left-deep cascade permutations.
pub const MAX_DIMENSIONS: usize = 3;

impl WorkloadSpec {
    /// A convenient default at 1/10000 of the paper's row counts: 160 k-row
    /// `T`, 1.5 M-row `L`, 1.6 k keys. The keys-per-row ratio (100 rows/key
    /// in T, ~940 in L) matches the paper's 16 M keys for 1.6 B rows — the
    /// ratio, not the absolute key count, is what keeps the per-tuple
    /// `indPred` from diluting the join-key selectivities. Selectivities
    /// default to the Table 1 setting.
    pub fn scaled_default() -> WorkloadSpec {
        WorkloadSpec {
            t_rows: 160_000,
            l_rows: 1_500_000,
            num_keys: 1_600,
            sigma_t: 0.1,
            sigma_l: 0.4,
            st: 0.2,
            sl: 0.1,
            num_groups: 64,
            date_days: 32,
            seed: 0xEDB7_2015,
            skew: KeySkew::Uniform,
            dimensions: Vec::new(),
        }
    }

    /// A small variant for fast tests.
    pub fn tiny() -> WorkloadSpec {
        WorkloadSpec {
            t_rows: 2_000,
            l_rows: 12_000,
            num_keys: 100,
            sigma_t: 0.1,
            sigma_l: 0.4,
            st: 0.2,
            sl: 0.1,
            num_groups: 8,
            date_days: 32,
            seed: 0xEDB7_2015,
            skew: KeySkew::Uniform,
            dimensions: Vec::new(),
        }
    }

    /// [`WorkloadSpec::tiny`] extended into a `dims`-dimension star schema
    /// with analytically convenient (uniform) dimensions.
    pub fn tiny_star(dims: usize) -> WorkloadSpec {
        let mut spec = WorkloadSpec::tiny();
        spec.dimensions = (0..dims)
            .map(|i| DimSpec {
                rows: 300 + 100 * i,
                sigma: 0.5,
                fk_correlation: 0.6,
                skew: KeySkew::Uniform,
            })
            .collect();
        spec
    }

    /// Analytic expected row count of the star join `L' ⋈ dims` (before
    /// aggregation): fact survivors times the per-dimension pass fractions.
    /// Exact in expectation for uniform FK draws; a lower bound under skew.
    pub fn expected_star_rows(&self) -> f64 {
        self.dimensions
            .iter()
            .map(DimSpec::pass_fraction)
            .product::<f64>()
            * self.l_rows as f64
            * self.sigma_l
    }

    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("sigma_t", self.sigma_t),
            ("sigma_l", self.sigma_l),
            ("st", self.st),
            ("sl", self.sl),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(HybridError::config(format!("{name}={v} outside (0, 1]")));
            }
        }
        if self.t_rows == 0 || self.l_rows == 0 || self.num_keys == 0 {
            return Err(HybridError::config("row/key counts must be positive"));
        }
        if self.num_groups == 0 || self.date_days <= 0 {
            return Err(HybridError::config(
                "groups and date window must be positive",
            ));
        }
        if let KeySkew::Zipf { s } = self.skew {
            if !(s.is_finite() && s > 0.0 && s <= 8.0) {
                return Err(HybridError::config(format!(
                    "zipf exponent s={s} outside (0, 8]"
                )));
            }
        }
        if self.dimensions.len() > MAX_DIMENSIONS {
            return Err(HybridError::config(format!(
                "{} dimensions exceed the cap of {MAX_DIMENSIONS}",
                self.dimensions.len()
            )));
        }
        for (i, d) in self.dimensions.iter().enumerate() {
            if d.rows == 0 {
                return Err(HybridError::config(format!("dimension {i} has 0 rows")));
            }
            if !(d.sigma > 0.0 && d.sigma <= 1.0) {
                return Err(HybridError::config(format!(
                    "dimension {i} sigma={} outside (0, 1]",
                    d.sigma
                )));
            }
            if !(0.0..=1.0).contains(&d.fk_correlation) || !d.fk_correlation.is_finite() {
                return Err(HybridError::config(format!(
                    "dimension {i} fk_correlation={} outside [0, 1]",
                    d.fk_correlation
                )));
            }
            if let KeySkew::Zipf { s } = d.skew {
                if !(s.is_finite() && s > 0.0 && s <= 8.0) {
                    return Err(HybridError::config(format!(
                        "dimension {i} zipf exponent s={s} outside (0, 8]"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Derive the key-pool plan realizing the requested selectivities.
    pub fn key_plan(&self) -> Result<KeyPlan> {
        self.validate()?;
        KeyPlan::derive(self)
    }
}

/// Disjoint join-key pools (as contiguous integer ranges):
///
/// ```text
/// [0, common)                                — in JK(T') ∩ JK(L')
/// [common, t_selected)                       — in JK(T') only
/// [t_selected, t_selected + l_only)          — in JK(L') only
/// next t_nonsel ids                          — T keys failing corPred_T
/// next l_nonsel ids                          — L keys failing corPred_L
/// ```
///
/// Sizes are chosen so that
/// `S_T' = common / t_selected`, `S_L' = common / l_selected`, and each
/// table's `corPred` key-fraction `a` admits an `indPred` threshold `b ≤ 1`
/// with `a · b = σ` — precisely the paper's "modify a and c … but also
/// modify b and d so the selectivity of the combined predicates stays
/// intact" scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPlan {
    /// |JK(T') ∩ JK(L')|
    pub common: usize,
    /// |JK(T')| — keys of T passing `corPred_T`
    pub t_selected: usize,
    /// |JK(L')|
    pub l_selected: usize,
    /// keys of T failing `corPred_T`
    pub t_nonsel: usize,
    /// keys of L failing `corPred_L`
    pub l_nonsel: usize,
    /// `indPred` pass fraction on T (`b` in the paper)
    pub t_ind_frac: f64,
    /// `indPred` pass fraction on L (`d` in the paper)
    pub l_ind_frac: f64,
}

impl KeyPlan {
    fn derive(spec: &WorkloadSpec) -> Result<KeyPlan> {
        let n = spec.num_keys as f64;
        // t_selected must be big enough that (1) b_T = σT/a_T ≤ 1 and
        // (2) l_selected = st·t_selected/sl ≥ σL·N so b_L ≤ 1.
        let a_t = (spec.sigma_t)
            .max(spec.sigma_l * spec.sl / spec.st)
            .min(1.0);
        let t_selected = ((a_t * n).round() as usize).max(1);
        let common = ((spec.st * t_selected as f64).round() as usize).max(1);
        let l_selected = ((common as f64 / spec.sl).round() as usize).max(common);

        // full key sets: at least the nominal universe, at least the
        // selected sets themselves
        let t_full = spec.num_keys.max(t_selected);
        let l_full = spec.num_keys.max(l_selected);
        let t_nonsel = t_full - t_selected;
        let l_nonsel = l_full - l_selected;

        let t_ind_frac = (spec.sigma_t * t_full as f64 / t_selected as f64).min(1.0);
        let l_ind_frac = (spec.sigma_l * l_full as f64 / l_selected as f64).min(1.0);
        let plan = KeyPlan {
            common,
            t_selected,
            l_selected,
            t_nonsel,
            l_nonsel,
            t_ind_frac,
            l_ind_frac,
        };
        plan.check(spec)?;
        Ok(plan)
    }

    fn check(&self, spec: &WorkloadSpec) -> Result<()> {
        if self.common > self.t_selected || self.common > self.l_selected {
            return Err(HybridError::config(format!(
                "infeasible key plan for spec {spec:?}: {self:?}"
            )));
        }
        Ok(())
    }

    /// Total distinct key ids used across both tables.
    pub fn universe(&self) -> usize {
        // common + T-only-selected + L-only-selected + both non-selected pools
        self.t_selected + (self.l_selected - self.common) + self.t_nonsel + self.l_nonsel
    }

    /// `corPred` key-fraction on T (`a` in the paper's terms).
    pub fn t_cor_frac(&self) -> f64 {
        self.t_selected as f64 / (self.t_selected + self.t_nonsel) as f64
    }

    pub fn l_cor_frac(&self) -> f64 {
        self.l_selected as f64 / (self.l_selected + self.l_nonsel) as f64
    }

    /// Achieved selectivities (may differ from requested by rounding).
    pub fn achieved(&self) -> (f64, f64, f64, f64) {
        (
            self.t_cor_frac() * self.t_ind_frac,
            self.l_cor_frac() * self.l_ind_frac,
            self.common as f64 / self.t_selected as f64,
            self.common as f64 / self.l_selected as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(sigma_t: f64, sigma_l: f64, st: f64, sl: f64) -> WorkloadSpec {
        WorkloadSpec {
            sigma_t,
            sigma_l,
            st,
            sl,
            ..WorkloadSpec::tiny()
        }
    }

    /// Every (σT, σL, ST', SL') combination used anywhere in §5.
    pub(crate) fn paper_grid() -> Vec<(f64, f64, f64, f64)> {
        let mut grid = vec![
            // Fig 8(a): σT=0.1, SL'=0.1
            (0.1, 0.1, 0.05, 0.1),
            (0.1, 0.2, 0.1, 0.1),
            (0.1, 0.4, 0.2, 0.1),
            // Fig 8(b): σT=0.2, SL'=0.2
            (0.2, 0.1, 0.05, 0.2),
            (0.2, 0.2, 0.1, 0.2),
            (0.2, 0.4, 0.2, 0.2),
            // Fig 9(a): fixed ST'=0.5, varying SL'
            (0.1, 0.4, 0.5, 0.8),
            (0.1, 0.4, 0.5, 0.4),
            (0.1, 0.4, 0.5, 0.1),
            // Fig 9(b): fixed SL'=0.4, varying ST'
            (0.1, 0.4, 0.5, 0.4),
            (0.1, 0.4, 0.35, 0.4),
            (0.1, 0.4, 0.2, 0.4),
        ];
        // Figs 10-15: σT ∈ {0.001..0.2} × σL ∈ {0.001..0.2}, default S
        for sigma_t in [0.001, 0.01, 0.05, 0.1, 0.2] {
            for sigma_l in [0.001, 0.01, 0.1, 0.2] {
                grid.push((sigma_t, sigma_l, 0.2, 0.1));
            }
        }
        grid
    }

    #[test]
    fn all_paper_configs_are_feasible() {
        for (sigma_t, sigma_l, st, sl) in paper_grid() {
            let plan = spec(sigma_t, sigma_l, st, sl).key_plan();
            assert!(
                plan.is_ok(),
                "infeasible: σT={sigma_t} σL={sigma_l} ST'={st} SL'={sl}: {plan:?}"
            );
        }
    }

    #[test]
    fn achieved_selectivities_close_to_requested() {
        for (sigma_t, sigma_l, st, sl) in paper_grid() {
            let s = WorkloadSpec {
                sigma_t,
                sigma_l,
                st,
                sl,
                num_keys: 16_000,
                ..WorkloadSpec::scaled_default()
            };
            let plan = s.key_plan().unwrap();
            let (at, al, ast, asl) = plan.achieved();
            let tol: f64 = 0.02;
            assert!(
                (at - sigma_t).abs() < tol.max(sigma_t * 0.1),
                "σT {at} vs {sigma_t}"
            );
            assert!(
                (al - sigma_l).abs() < tol.max(sigma_l * 0.1),
                "σL {al} vs {sigma_l}"
            );
            assert!((ast - st).abs() < tol, "ST' {ast} vs {st}");
            assert!((asl - sl).abs() < tol, "SL' {asl} vs {sl}");
        }
    }

    #[test]
    fn table1_plan_matches_hand_computation() {
        // σT=0.1, σL=0.4, ST'=0.2, SL'=0.1, N=100:
        // a_T = max(0.1, 0.4·0.1/0.2) = 0.2 → t_selected = 20
        // common = 0.2·20 = 4; l_selected = 40
        let plan = spec(0.1, 0.4, 0.2, 0.1).key_plan().unwrap();
        assert_eq!(plan.t_selected, 20);
        assert_eq!(plan.common, 4);
        assert_eq!(plan.l_selected, 40);
        assert_eq!(plan.t_nonsel, 80);
        assert_eq!(plan.l_nonsel, 60);
        assert!((plan.t_ind_frac - 0.5).abs() < 1e-9);
        assert!((plan.l_ind_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(spec(0.0, 0.1, 0.1, 0.1).key_plan().is_err());
        assert!(spec(0.1, 1.5, 0.1, 0.1).key_plan().is_err());
        let mut s = WorkloadSpec::tiny();
        s.t_rows = 0;
        assert!(s.key_plan().is_err());
        let mut s = WorkloadSpec::tiny();
        s.date_days = 0;
        assert!(s.key_plan().is_err());
    }

    #[test]
    fn skew_validation() {
        let mut s = WorkloadSpec::tiny();
        s.skew = KeySkew::Zipf { s: 1.2 };
        assert!(s.validate().is_ok());
        s.skew = KeySkew::SingleKey;
        assert!(s.validate().is_ok());
        s.skew = KeySkew::Zipf { s: 0.0 };
        assert!(s.validate().is_err());
        s.skew = KeySkew::Zipf { s: f64::NAN };
        assert!(s.validate().is_err());
        s.skew = KeySkew::Zipf { s: 9.0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn dimension_validation() {
        let mut s = WorkloadSpec::tiny_star(3);
        assert!(s.validate().is_ok());
        s.dimensions.push(s.dimensions[0]);
        assert!(s.validate().is_err(), "4 dims exceed the cap");
        let mut s = WorkloadSpec::tiny_star(1);
        s.dimensions[0].rows = 0;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::tiny_star(1);
        s.dimensions[0].sigma = 0.0;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::tiny_star(1);
        s.dimensions[0].fk_correlation = 1.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::tiny_star(1);
        s.dimensions[0].skew = KeySkew::Zipf { s: 0.0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn star_pass_fraction_arithmetic() {
        let d = DimSpec {
            rows: 400,
            sigma: 0.5,
            fk_correlation: 0.6,
            skew: KeySkew::Uniform,
        };
        assert_eq!(d.selected_keys(), 200);
        assert!((d.pass_fraction() - 0.8).abs() < 1e-12);
        let s = WorkloadSpec::tiny_star(2);
        let per_dim: f64 = s.dimensions.iter().map(DimSpec::pass_fraction).product();
        let expect = 12_000.0 * 0.4 * per_dim;
        assert!((s.expected_star_rows() - expect).abs() < 1e-6);
    }

    #[test]
    fn universe_covers_all_pools() {
        let plan = spec(0.1, 0.4, 0.2, 0.1).key_plan().unwrap();
        assert_eq!(plan.universe(), 20 + (40 - 4) + 80 + 60);
    }
}
