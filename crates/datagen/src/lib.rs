//! Synthetic workload generator for the paper's evaluation (§5, *Dataset*).
//!
//! The paper's tables:
//!
//! ```text
//! T(uniqKey bigint, joinKey int, corPred int, indPred int,
//!   predAfterJoin date, dummy1 varchar(50), dummy2 int, dummy3 time)
//! L(joinKey int, corPred int, indPred int, predAfterJoin date,
//!   groupByExtractCol varchar(46), dummy char(8))
//! ```
//!
//! and its four experiment knobs: the combined local-predicate
//! selectivities σT and σL, and the join-key selectivities `S_T'` and
//! `S_L'`. The paper achieves independent control by putting a
//! key-correlated predicate column (`corPred`) and an independent one
//! (`indPred`) in both tables and trading the thresholds off against each
//! other; this crate reproduces that exactly (see [`spec::KeyPlan`] for the
//! pool arithmetic).
//!
//! [`WorkloadSpec::generate`] produces the two tables plus a ready-made
//! [`hybrid_core::HybridQuery`] whose thresholds realize the requested
//! selectivities. [`workload::Workload::load_into`] installs everything in
//! a [`hybrid_core::HybridSystem`], including the paper's two covering
//! indexes on `T`.

pub mod spec;
pub mod tables;
pub mod workload;

pub use spec::{DimSpec, KeyPlan, KeySkew, WorkloadSpec, MAX_DIMENSIONS};
pub use workload::Workload;
