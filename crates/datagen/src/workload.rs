//! A generated workload: tables + the paper's query, ready to run.

use crate::spec::WorkloadSpec;
use crate::tables::{self, dim_cols, l_cols, t_cols, thresholds, Thresholds};
use hybrid_bloom::BloomParams;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::expr::Expr;
use hybrid_common::ops::AggSpec;
use hybrid_core::advisor::{DimEstimates, QueryEstimates, StarEstimates};
use hybrid_core::multiway::{DimQuery, StarQuery};
use hybrid_core::{HybridQuery, HybridSystem};
use hybrid_storage::FileFormat;

/// The generated tables, thresholds, and query for one experiment config.
///
/// End-to-end:
///
/// ```
/// use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
/// use hybrid_datagen::WorkloadSpec;
/// use hybrid_storage::FileFormat;
///
/// let workload = WorkloadSpec::tiny().generate().unwrap();
/// let mut system = HybridSystem::new(SystemConfig::paper_shape(2, 3)).unwrap();
/// workload.load_into(&mut system, FileFormat::Columnar).unwrap();
/// let out = run(&mut system, &workload.query(), JoinAlgorithm::Zigzag).unwrap();
/// assert!(out.result.num_rows() > 0);
/// assert!(out.summary.hdfs_tuples_shuffled > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    pub spec: WorkloadSpec,
    pub t: Batch,
    pub l: Batch,
    /// Star-schema dimension tables (empty for two-table specs).
    pub dims: Vec<Batch>,
    pub thresholds: Thresholds,
    bloom: BloomParams,
}

impl WorkloadSpec {
    /// Generate the tables and derive the query thresholds.
    pub fn generate(&self) -> Result<Workload> {
        let plan = self.key_plan()?;
        let dims = (0..self.dimensions.len())
            .map(|i| tables::generate_dim(self, i))
            .collect::<Result<Vec<_>>>()?;
        Ok(Workload {
            spec: self.clone(),
            t: tables::generate_t(self, &plan)?,
            l: tables::generate_l(self, &plan)?,
            dims,
            thresholds: thresholds(&plan),
            // the paper's ratio: 8 bits/key, 2 hashes (~5% FPR), sized for
            // the key universe
            bloom: BloomParams::paper_default(plan.universe()),
        })
    }
}

impl Workload {
    /// The paper's experiment query (§5):
    ///
    /// ```sql
    /// select extract_group(L.groupByExtractCol), count(*)
    /// from T, L
    /// where T.corPred <= a and T.indPred <= b
    ///   and L.corPred <= c and L.indPred <= d
    ///   and T.joinKey = L.joinKey
    ///   and days(T.predAfterJoin) - days(L.predAfterJoin) between 0 and 1
    /// group by extract_group(L.groupByExtractCol)
    /// ```
    pub fn query(&self) -> HybridQuery {
        let th = self.thresholds;
        // canonical joined layout: (T.joinKey, T.date) ++ (L.joinKey, L.date, L.grp)
        let date_diff = Expr::col(1).sub(Expr::col(3));
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(t_cols::COR_PRED, th.t_cor)
                .and(Expr::col_le(t_cols::IND_PRED, th.t_ind)),
            db_proj: vec![t_cols::JOIN_KEY, t_cols::DATE],
            db_key: 0,
            hdfs_pred: Expr::col_le(l_cols::COR_PRED, th.l_cor)
                .and(Expr::col_le(l_cols::IND_PRED, th.l_ind)),
            hdfs_proj: vec![l_cols::JOIN_KEY, l_cols::DATE, l_cols::GROUP],
            hdfs_key: 0,
            post_predicate: Some(
                date_diff
                    .clone()
                    .ge(Expr::lit_i64(0))
                    .and(date_diff.le(Expr::lit_i64(1))),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(4))),
            aggs: vec![AggSpec::Count],
            bloom: self.bloom,
        }
    }

    /// The star-schema query over the fact table `L` and the DB
    /// dimensions `D0..Dk`:
    ///
    /// ```sql
    /// select extract_group(L.groupByExtractCol), count(*), sum(D0.dimAttr)
    /// from L, D0, ..
    /// where L.corPred <= c and L.indPred <= d
    ///   and D<i>.dimPred <= p<i> and L.fk<i> = D<i>.dimKey  (for each i)
    ///   and D0.dimAttr - Dk.dimAttr between -950 and 950
    /// group by extract_group(L.groupByExtractCol)
    /// ```
    ///
    /// All expressions are phrased over the canonical joined layout
    /// `fact' ++ dim_0' ++ … ++ dim_{k-1}'`.
    pub fn star_query(&self) -> StarQuery {
        let th = self.thresholds;
        let k = self.spec.dimensions.len();
        let fact_proj: Vec<usize> = (0..k).map(l_cols::fk).chain([l_cols::GROUP]).collect();
        let dims = self
            .spec
            .dimensions
            .iter()
            .enumerate()
            .map(|(i, d)| DimQuery {
                table: format!("D{i}"),
                pred: Expr::col_le(dim_cols::PRED, tables::dim_pred_threshold(d)),
                proj: vec![dim_cols::KEY, dim_cols::ATTR],
                key: 0,
            })
            .collect();
        // dim i's attr sits at canonical column (k+1) + 2i + 1
        let attr = |i: usize| (k + 1) + 2 * i + 1;
        let diff = Expr::col(attr(0)).sub(Expr::col(attr(k.saturating_sub(1))));
        StarQuery {
            fact_table: "L".into(),
            fact_pred: Expr::col_le(l_cols::COR_PRED, th.l_cor)
                .and(Expr::col_le(l_cols::IND_PRED, th.l_ind)),
            fact_proj,
            fact_keys: (0..k).collect(),
            dims,
            post_predicate: Some(
                diff.clone()
                    .ge(Expr::lit_i64(-950))
                    .and(diff.le(Expr::lit_i64(950))),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(k))),
            aggs: vec![AggSpec::Count, AggSpec::SumI64(attr(0))],
        }
    }

    /// Load `T` into the database (distributed on `uniqKey`, with the
    /// paper's two covering indexes), every dimension into the database
    /// (distributed on `dimKey`), and `L` onto HDFS in `format`.
    pub fn load_into(&self, sys: &mut HybridSystem, format: FileFormat) -> Result<()> {
        sys.load_db_table("T", t_cols::UNIQ_KEY, self.t.clone())?;
        // the paper's indexes: (corPred, indPred) and (corPred, indPred, joinKey)
        sys.create_db_index("T", &[t_cols::COR_PRED, t_cols::IND_PRED])?;
        sys.create_db_index("T", &[t_cols::COR_PRED, t_cols::IND_PRED, t_cols::JOIN_KEY])?;
        for (i, dim) in self.dims.iter().enumerate() {
            sys.load_db_table(&format!("D{i}"), dim_cols::KEY, dim.clone())?;
        }
        sys.load_hdfs_table("L", format, self.l.schema().clone(), &self.l)
    }

    /// Advisor inputs derived from the generator's ground truth.
    pub fn estimates(&self, num_jen_workers: usize) -> QueryEstimates {
        let t_prime_row = 12u64; // i32 key + date + overhead
        let l_prime_row = 40u64; // key + date + url string
        QueryEstimates {
            t_prime_bytes: (self.spec.t_rows as f64 * self.spec.sigma_t * t_prime_row as f64)
                as u64,
            l_prime_bytes: (self.spec.l_rows as f64 * self.spec.sigma_l * l_prime_row as f64)
                as u64,
            st: self.spec.st,
            sl: self.spec.sl,
            num_jen_workers,
            bloom_bytes: self.bloom.wire_bytes() as u64,
            shuffle_skew: self.shuffle_skew(num_jen_workers),
            // ground truth carries no memory budget; callers running under
            // a governor set the field from their system's pool
            mem_budget_per_worker: None,
        }
    }

    /// Multiway advisor inputs derived from the generator's ground truth.
    pub fn star_estimates(&self, num_jen_workers: usize) -> StarEstimates {
        let k = self.spec.dimensions.len();
        // k FK i32s + the ~40-byte group string survive fact projection
        let fact_row = 40 + 4 * k as u64;
        StarEstimates {
            fact_prime_bytes: (self.spec.l_rows as f64 * self.spec.sigma_l) as u64 * fact_row,
            fact_prime_rows: (self.spec.l_rows as f64 * self.spec.sigma_l) as u64,
            dims: self
                .spec
                .dimensions
                .iter()
                .map(|d| DimEstimates {
                    // i32 key + i64 attr per selected dimension row
                    dim_prime_bytes: d.selected_keys() as u64 * 12,
                    dim_prime_rows: d.selected_keys() as u64,
                    pass_fraction: d.pass_fraction(),
                })
                .collect(),
            num_jen_workers,
        }
    }

    /// Ground-truth shuffle imbalance: route every `L'` row (rows passing
    /// L's local predicates) with the agreed hash over `num_jen_workers`
    /// partitions and report max-worker load over mean load. 1.0 = perfectly
    /// balanced; a single-key table yields `num_jen_workers`.
    pub fn shuffle_skew(&self, num_jen_workers: usize) -> f64 {
        use hybrid_common::hash::agreed_shuffle_partition;
        let n = num_jen_workers.max(1);
        let q = self.query();
        let mask = q
            .hdfs_pred
            .eval_predicate(&self.l)
            .expect("generated predicate evaluates over generated L");
        let keys = self
            .l
            .column(l_cols::JOIN_KEY)
            .expect("L has a join-key column")
            .as_i32()
            .expect("joinKey is i32")
            .to_vec();
        let mut loads = vec![0u64; n];
        for (key, pass) in keys.iter().zip(&mask) {
            if *pass {
                loads[agreed_shuffle_partition(i64::from(*key), n)] += 1;
            }
        }
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *loads.iter().max().expect("non-empty loads") as f64;
        max / (total as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_core::reference::run_reference;
    use hybrid_core::{run, JoinAlgorithm, SystemConfig};

    #[test]
    fn generated_query_validates() {
        let w = WorkloadSpec::tiny().generate().unwrap();
        w.query().validate().unwrap();
        assert_eq!(w.t.num_rows(), 2_000);
        assert_eq!(w.l.num_rows(), 12_000);
    }

    #[test]
    fn query_has_nonempty_result() {
        let w = WorkloadSpec::tiny().generate().unwrap();
        let out = run_reference(&w.t, &w.l, &w.query()).unwrap();
        assert!(out.num_rows() > 0, "workload query produced nothing");
        // groups are extract_group outputs in range
        let groups = out.column(0).unwrap().as_i64().unwrap();
        assert!(groups.iter().all(|&g| (0..8).contains(&g)));
    }

    #[test]
    fn end_to_end_zigzag_matches_reference() {
        let w = WorkloadSpec::tiny().generate().unwrap();
        let mut cfg = SystemConfig::paper_shape(2, 3);
        cfg.rows_per_block = 1000;
        let mut sys = HybridSystem::new(cfg).unwrap();
        w.load_into(&mut sys, FileFormat::Columnar).unwrap();
        let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();
        let out = run(&mut sys, &w.query(), JoinAlgorithm::Zigzag).unwrap();
        assert_eq!(out.result, expected);
    }

    #[test]
    fn star_query_validates_and_ground_truth_is_seed_stable() {
        use hybrid_core::{batch_checksum, run_star_reference};
        let w = WorkloadSpec::tiny_star(3).generate().unwrap();
        w.star_query().validate().unwrap();
        let a = run_star_reference(&w.l, &w.dims, &w.star_query()).unwrap();
        assert!(a.num_rows() > 0, "star workload query produced nothing");
        // regeneration from the same spec must reproduce the exact ground
        // truth — count, bytes, and checksum
        let w2 = WorkloadSpec::tiny_star(3).generate().unwrap();
        let b = run_star_reference(&w2.l, &w2.dims, &w2.star_query()).unwrap();
        assert_eq!(a, b, "ground truth must be seed-deterministic");
        assert_eq!(batch_checksum(&a), batch_checksum(&b));
    }

    #[test]
    fn star_ground_truth_count_matches_the_analytic_expectation() {
        use hybrid_core::run_star_reference;
        // strip the post-join predicate and aggregate a bare count, so the
        // reference count is exactly the join cardinality the spec's
        // analytic model predicts
        let w = WorkloadSpec::tiny_star(2).generate().unwrap();
        let mut star = w.star_query();
        star.post_predicate = None;
        star.aggs = vec![AggSpec::Count];
        let out = run_star_reference(&w.l, &w.dims, &star).unwrap();
        let counts = out.column(1).unwrap().as_i64().unwrap();
        let joined: i64 = counts.iter().sum();
        let expect = w.spec.expected_star_rows();
        assert!(
            (joined as f64 - expect).abs() / expect < 0.05,
            "ground truth {joined} vs analytic {expect}"
        );
    }

    #[test]
    fn shuffle_skew_reflects_key_distribution() {
        use crate::spec::KeySkew;
        let uniform = WorkloadSpec::tiny().generate().unwrap();
        let flat = uniform.shuffle_skew(4);
        assert!(flat < 2.0, "uniform keys should roughly balance: {flat}");
        let single = WorkloadSpec {
            skew: KeySkew::SingleKey,
            ..WorkloadSpec::tiny()
        }
        .generate()
        .unwrap();
        let worst = single.shuffle_skew(4);
        assert!(
            (worst - 4.0).abs() < 1e-9,
            "one key on 4 workers is 4.0: {worst}"
        );
        assert!(single.estimates(4).shuffle_skew > 3.9);
    }

    #[test]
    fn estimates_scale_with_selectivities() {
        let mut spec = WorkloadSpec::tiny();
        spec.sigma_l = 0.1;
        let low = spec.generate().unwrap().estimates(4);
        spec.sigma_l = 0.4;
        let high = spec.generate().unwrap().estimates(4);
        assert!(high.l_prime_bytes > low.l_prime_bytes * 3);
        assert_eq!(low.num_jen_workers, 4);
    }
}
