//! The instrumented communication fabric between DB2 workers and JEN
//! workers.
//!
//! The paper's implementation connects every pair of cooperating workers
//! with TCP/IP sockets (§4.1) and its conclusions hinge on *how many bytes
//! cross which link*: the 1 GbE intra-HDFS network, the DB's internal
//! interconnect, and the 20 Gbit inter-cluster switch. This crate provides
//! the simulated equivalent:
//!
//! * [`Endpoint`] — addresses for DB workers, JEN workers, and the JEN
//!   coordinator;
//! * [`LinkClass`] — the three link categories ([`LinkClass::IntraDb`],
//!   [`LinkClass::IntraHdfs`], [`LinkClass::Cross`]), derived from the two
//!   endpoints of a transfer;
//! * [`Fabric`] — per-endpoint inboxes over crossbeam channels. Every
//!   [`Fabric::send`] meters bytes, messages and tuples on its link class
//!   (plus direction for cross-cluster traffic), feeding both Table 1 and
//!   the cost model;
//! * failure injection: [`Fabric::disconnect`] makes an endpoint
//!   unreachable, letting tests verify clean error propagation when a JEN
//!   worker dies mid-shuffle.
//!
//! Message payloads are generic: anything implementing [`Wire`] (a byte/tuple
//! size report) can travel, so the engines define their own message enums
//! without this crate depending on them.

pub mod message;

pub use message::{Message, StreamTag};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::metrics::{CounterId, Metrics};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// An addressable party on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A shared-nothing database worker (DB2 DPF agent).
    Db(DbWorkerId),
    /// A JEN worker (one per HDFS DataNode).
    Jen(JenWorkerId),
    /// The JEN coordinator (runs on the NameNode in the paper's setup).
    JenCoordinator,
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Db(w) => write!(f, "{w}"),
            Endpoint::Jen(w) => write!(f, "{w}"),
            Endpoint::JenCoordinator => write!(f, "jen-coordinator"),
        }
    }
}

/// Which physical network a transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Between DB workers (the warehouse's internal interconnect).
    IntraDb,
    /// Between JEN workers / coordinator (the HDFS cluster's 1 GbE).
    IntraHdfs,
    /// Across the inter-cluster switch (20 Gbit in the paper).
    Cross,
}

impl LinkClass {
    /// Classify a transfer by its endpoints. Coordinator traffic inside the
    /// HDFS cluster is intra-HDFS; DB ↔ anything-on-HDFS is cross-cluster.
    pub fn classify(from: Endpoint, to: Endpoint) -> LinkClass {
        use Endpoint::*;
        match (from, to) {
            (Db(_), Db(_)) => LinkClass::IntraDb,
            (Jen(_) | JenCoordinator, Jen(_) | JenCoordinator) => LinkClass::IntraHdfs,
            _ => LinkClass::Cross,
        }
    }

    /// Metric-name prefix for this class.
    pub fn metric_prefix(self) -> &'static str {
        match self {
            LinkClass::IntraDb => "net.intra_db",
            LinkClass::IntraHdfs => "net.intra_hdfs",
            LinkClass::Cross => "net.cross",
        }
    }

    /// All link classes, in `index()` order.
    pub const ALL: [LinkClass; 3] = [LinkClass::IntraDb, LinkClass::IntraHdfs, LinkClass::Cross];

    /// Dense index of this class (for per-class lookup tables).
    pub fn index(self) -> usize {
        match self {
            LinkClass::IntraDb => 0,
            LinkClass::IntraHdfs => 1,
            LinkClass::Cross => 2,
        }
    }
}

/// Pre-registered counter ids for one link class — the always-touched
/// counters of [`Fabric::send`], interned once at fabric construction so
/// the send hot path never formats a metric name or takes the registry's
/// name lock.
#[derive(Clone, Copy)]
struct LinkCounters {
    bytes: CounterId,
    msgs: CounterId,
    tuples: CounterId,
}

impl LinkCounters {
    fn register(metrics: &Metrics, class: LinkClass) -> LinkCounters {
        let prefix = class.metric_prefix();
        LinkCounters {
            bytes: metrics.register(&format!("{prefix}.bytes")),
            msgs: metrics.register(&format!("{prefix}.msgs")),
            tuples: metrics.register(&format!("{prefix}.tuples")),
        }
    }
}

/// Pre-registered per-direction counters for cross-cluster traffic.
#[derive(Clone, Copy)]
struct DirCounters {
    bytes: CounterId,
    tuples: CounterId,
}

impl DirCounters {
    fn register(metrics: &Metrics, dir: &str) -> DirCounters {
        DirCounters {
            bytes: metrics.register(&format!("net.cross.{dir}.bytes")),
            tuples: metrics.register(&format!("net.cross.{dir}.tuples")),
        }
    }
}

/// Anything that can be shipped over the fabric.
///
/// `wire_bytes` should reflect a realistic serialized size (the engines use
/// `Batch::serialized_bytes` and `BloomFilter::wire_bytes`); `wire_tuples`
/// is the row count for data payloads, 0 for control messages. These feed
/// the metrics that reproduce Table 1.
pub trait Wire: Send + 'static {
    fn wire_bytes(&self) -> usize;
    fn wire_tuples(&self) -> u64 {
        0
    }
    /// Short label of the logical stream this message belongs to, used to
    /// break metrics down per stream (e.g. Table 1 counts only the
    /// `hdfs_shuffle` stream, not partial-aggregate traffic).
    fn wire_stream_label(&self) -> Option<&'static str> {
        None
    }
}

/// An incoming message with its sender.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    pub from: Endpoint,
    pub msg: M,
}

/// An endpoint's inbox: the producing and consuming halves of its channel.
type Inbox<M> = (Sender<Delivery<M>>, Receiver<Delivery<M>>);

struct Inner<M> {
    inboxes: HashMap<Endpoint, Inbox<M>>,
    /// Per-endpoint inbox bound (messages). `None` = unbounded, the
    /// sequential drivers' mode; parallel drivers run bounded so senders
    /// feel back-pressure instead of buffering a whole phase in memory.
    capacity: Option<usize>,
    disconnected: Mutex<HashSet<Endpoint>>,
    metrics: Metrics,
    /// Per-class counters, indexed by `LinkClass::index()`.
    class_counters: [LinkCounters; 3],
    /// Cross-cluster per-direction counters: [db_to_jen, jen_to_db].
    dir_counters: [DirCounters; 2],
    /// Lazily interned per-(class, stream-label) counters. Labels come
    /// from the engines at send time, so they can't be pre-registered
    /// here; the cache makes each (class, label) pay the name-formatting
    /// cost exactly once.
    stream_counters: RwLock<HashMap<(usize, &'static str), DirCounters>>,
}

/// The fabric: a metered, all-to-all message network.
///
/// Cloning is cheap (an `Arc`); one clone is handed to each worker thread.
pub struct Fabric<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Wire> Fabric<M> {
    /// Build a fabric with inboxes for `num_db` DB workers, `num_jen` JEN
    /// workers, and the JEN coordinator. Inboxes are unbounded; see
    /// [`Fabric::with_capacity`] for the back-pressured variant.
    pub fn new(num_db: usize, num_jen: usize, metrics: Metrics) -> Fabric<M> {
        Fabric::with_capacity(num_db, num_jen, metrics, None)
    }

    /// Build a fabric whose per-endpoint inboxes hold at most `capacity`
    /// messages (`None` = unbounded). With a bound, [`Fabric::send`] blocks
    /// while the target inbox is full and [`Fabric::try_send`] hands the
    /// message back — callers that both send and receive (all-to-all
    /// shuffles) must use `try_send` and drain their own inbox while the
    /// target is full, or a cycle of full inboxes deadlocks.
    pub fn with_capacity(
        num_db: usize,
        num_jen: usize,
        metrics: Metrics,
        capacity: Option<usize>,
    ) -> Fabric<M> {
        let channel = || match capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        let mut inboxes = HashMap::with_capacity(num_db + num_jen + 1);
        for i in 0..num_db {
            inboxes.insert(Endpoint::Db(DbWorkerId(i)), channel());
        }
        for i in 0..num_jen {
            inboxes.insert(Endpoint::Jen(JenWorkerId(i)), channel());
        }
        inboxes.insert(Endpoint::JenCoordinator, channel());
        let class_counters = LinkClass::ALL.map(|class| LinkCounters::register(&metrics, class));
        let dir_counters = [
            DirCounters::register(&metrics, "db_to_jen"),
            DirCounters::register(&metrics, "jen_to_db"),
        ];
        Fabric {
            inner: Arc::new(Inner {
                inboxes,
                capacity,
                disconnected: Mutex::new(HashSet::new()),
                metrics,
                class_counters,
                dir_counters,
                stream_counters: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Counter ids for a (link class, stream label) pair, interning the
    /// metric names on first use.
    fn stream_counters(&self, class: LinkClass, label: &'static str) -> DirCounters {
        let key = (class.index(), label);
        if let Some(c) = self.inner.stream_counters.read().get(&key) {
            return *c;
        }
        let prefix = class.metric_prefix();
        let c = DirCounters {
            bytes: self
                .inner
                .metrics
                .register(&format!("{prefix}.stream.{label}.bytes")),
            tuples: self
                .inner
                .metrics
                .register(&format!("{prefix}.stream.{label}.tuples")),
        };
        self.inner.stream_counters.write().insert(key, c);
        c
    }

    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The typed error for traffic involving a disconnected endpoint.
    fn disconnected_error(endpoint: Endpoint, stream: Option<&'static str>) -> HybridError {
        HybridError::Disconnected {
            endpoint: endpoint.to_string(),
            stream: stream.map(str::to_string),
        }
    }

    /// Meter `msg` on the link `from → to`. Called once per *successful*
    /// enqueue so retried `try_send`s never double-count.
    fn meter(&self, from: Endpoint, to: Endpoint, msg: &M) {
        self.meter_raw(
            from,
            to,
            msg.wire_bytes() as u64,
            msg.wire_tuples(),
            msg.wire_stream_label(),
        );
    }

    /// [`Fabric::meter`] with the wire accounting pre-extracted, for call
    /// sites where the message has already moved into the channel.
    fn meter_raw(
        &self,
        from: Endpoint,
        to: Endpoint,
        bytes: u64,
        tuples: u64,
        label: Option<&'static str>,
    ) {
        let class = LinkClass::classify(from, to);
        let m = &self.inner.metrics;
        let counters = self.inner.class_counters[class.index()];
        m.add_id(counters.bytes, bytes);
        m.incr_id(counters.msgs);
        m.add_id(counters.tuples, tuples);
        if let Some(label) = label {
            let sc = self.stream_counters(class, label);
            m.add_id(sc.bytes, bytes);
            m.add_id(sc.tuples, tuples);
        }
        if class == LinkClass::Cross {
            // Direction matters across the switch: "DB tuples sent" in
            // Table 1 is exactly the db_to_jen tuple counter.
            let dir = self.inner.dir_counters[match from {
                Endpoint::Db(_) => 0,
                _ => 1,
            }];
            m.add_id(dir.bytes, bytes);
            m.add_id(dir.tuples, tuples);
        }
    }

    /// Send `msg` from `from` to `to`, metering it on the appropriate link.
    /// Blocks while a bounded inbox is full.
    pub fn send(&self, from: Endpoint, to: Endpoint, msg: M) -> Result<()> {
        if self.inner.disconnected.lock().contains(&to) {
            return Err(Self::disconnected_error(to, msg.wire_stream_label()));
        }
        let (tx, _) = self
            .inner
            .inboxes
            .get(&to)
            .ok_or_else(|| HybridError::Net(format!("unknown endpoint {to}")))?;
        self.meter(from, to, &msg);
        tx.send(Delivery { from, msg })
            .map_err(|_| HybridError::Net(format!("{to} inbox closed")))
    }

    /// Non-blocking send: `Ok(None)` means delivered (and metered);
    /// `Ok(Some(msg))` hands the message back because the bounded inbox is
    /// full — drain your own inbox and retry. Worker tasks use this instead
    /// of [`Fabric::send`] so an all-to-all shuffle over bounded channels
    /// cannot deadlock on a cycle of full inboxes.
    pub fn try_send(&self, from: Endpoint, to: Endpoint, msg: M) -> Result<Option<M>> {
        if self.inner.disconnected.lock().contains(&to) {
            return Err(Self::disconnected_error(to, msg.wire_stream_label()));
        }
        let (tx, _) = self
            .inner
            .inboxes
            .get(&to)
            .ok_or_else(|| HybridError::Net(format!("unknown endpoint {to}")))?;
        // Snapshot the wire accounting before the message moves into the
        // channel; metered only if the enqueue succeeds, so a Full retry
        // never double-counts.
        let (bytes, tuples, label) = (
            msg.wire_bytes() as u64,
            msg.wire_tuples(),
            msg.wire_stream_label(),
        );
        match tx.try_send(Delivery { from, msg }) {
            Ok(()) => {
                self.meter_raw(from, to, bytes, tuples, label);
                Ok(None)
            }
            Err(TrySendError::Full(d)) => Ok(Some(d.msg)),
            Err(TrySendError::Disconnected(_)) => {
                Err(HybridError::Net(format!("{to} inbox closed")))
            }
        }
    }

    /// Send clones of `msg` to every endpoint in `tos` (broadcast /
    /// multicast — each clone is metered on its own link).
    pub fn send_all(&self, from: Endpoint, tos: &[Endpoint], msg: &M) -> Result<()>
    where
        M: Clone,
    {
        for &to in tos {
            self.send(from, to, msg.clone())?;
        }
        Ok(())
    }

    /// The receiving half of `endpoint`'s inbox.
    pub fn receiver(&self, endpoint: Endpoint) -> Result<Receiver<Delivery<M>>> {
        self.inner
            .inboxes
            .get(&endpoint)
            .map(|(_, rx)| rx.clone())
            .ok_or_else(|| HybridError::Net(format!("unknown endpoint {endpoint}")))
    }

    /// Blocking receive with a deadline — the engines use this instead of a
    /// bare `recv()` so a lost peer surfaces as an error, not a hang.
    /// Receiving *as* a disconnected endpoint fails with the typed
    /// [`HybridError::Disconnected`] (a dead worker cannot make progress),
    /// while an empty inbox at the deadline stays a generic timeout.
    pub fn recv_timeout(&self, endpoint: Endpoint, timeout: Duration) -> Result<Delivery<M>> {
        if self.is_disconnected(endpoint) {
            return Err(Self::disconnected_error(endpoint, None));
        }
        let rx = self.receiver(endpoint)?;
        rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => {
                HybridError::Net(format!("{endpoint} timed out waiting for a message"))
            }
            RecvTimeoutError::Disconnected => HybridError::Net(format!("{endpoint} inbox closed")),
        })
    }

    /// Whether failure injection has cut `endpoint` off the fabric.
    pub fn is_disconnected(&self, endpoint: Endpoint) -> bool {
        self.inner.disconnected.lock().contains(&endpoint)
    }

    /// The per-endpoint inbox bound this fabric was built with.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Drop every undelivered message in every inbox. Queries run over
    /// fresh connections in the paper's implementation; the algorithm
    /// runner purges before each run so a previously *failed* run's
    /// in-flight messages can never leak into the next query's streams.
    pub fn purge(&self) {
        for (_, rx) in self.inner.inboxes.values() {
            while rx.try_recv().is_ok() {}
        }
    }

    /// Failure injection: future sends to `endpoint` fail.
    pub fn disconnect(&self, endpoint: Endpoint) {
        self.inner.disconnected.lock().insert(endpoint);
    }

    /// Undo [`Fabric::disconnect`].
    pub fn reconnect(&self, endpoint: Endpoint) {
        self.inner.disconnected.lock().remove(&endpoint);
    }

    /// All JEN worker endpoints of this fabric, in id order.
    pub fn jen_endpoints(&self) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> = self
            .inner
            .inboxes
            .keys()
            .filter(|e| matches!(e, Endpoint::Jen(_)))
            .copied()
            .collect();
        v.sort();
        v
    }

    /// All DB worker endpoints of this fabric, in id order.
    pub fn db_endpoints(&self) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> = self
            .inner
            .inboxes
            .keys()
            .filter(|e| matches!(e, Endpoint::Db(_)))
            .copied()
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg {
        bytes: usize,
        tuples: u64,
    }

    impl Wire for Msg {
        fn wire_bytes(&self) -> usize {
            self.bytes
        }
        fn wire_tuples(&self) -> u64 {
            self.tuples
        }
    }

    fn fabric() -> Fabric<Msg> {
        Fabric::new(2, 3, Metrics::new())
    }

    #[test]
    fn classify_links() {
        use Endpoint::*;
        let db0 = Db(DbWorkerId(0));
        let db1 = Db(DbWorkerId(1));
        let j0 = Jen(JenWorkerId(0));
        let j1 = Jen(JenWorkerId(1));
        assert_eq!(LinkClass::classify(db0, db1), LinkClass::IntraDb);
        assert_eq!(LinkClass::classify(j0, j1), LinkClass::IntraHdfs);
        assert_eq!(
            LinkClass::classify(j0, JenCoordinator),
            LinkClass::IntraHdfs
        );
        assert_eq!(LinkClass::classify(db0, j0), LinkClass::Cross);
        assert_eq!(LinkClass::classify(j0, db0), LinkClass::Cross);
        assert_eq!(LinkClass::classify(db0, JenCoordinator), LinkClass::Cross);
    }

    #[test]
    fn send_receive_and_meter() {
        let f = fabric();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j1 = Endpoint::Jen(JenWorkerId(1));
        f.send(
            db0,
            j1,
            Msg {
                bytes: 100,
                tuples: 10,
            },
        )
        .unwrap();
        let d = f.recv_timeout(j1, Duration::from_secs(1)).unwrap();
        assert_eq!(d.from, db0);
        assert_eq!(
            d.msg,
            Msg {
                bytes: 100,
                tuples: 10
            }
        );
        let m = f.metrics();
        assert_eq!(m.get("net.cross.bytes"), 100);
        assert_eq!(m.get("net.cross.tuples"), 10);
        assert_eq!(m.get("net.cross.db_to_jen.tuples"), 10);
        assert_eq!(m.get("net.cross.jen_to_db.tuples"), 0);
        assert_eq!(m.get("net.intra_hdfs.bytes"), 0);
    }

    #[test]
    fn intra_links_metered_separately() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let j2 = Endpoint::Jen(JenWorkerId(2));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let db1 = Endpoint::Db(DbWorkerId(1));
        f.send(
            j0,
            j2,
            Msg {
                bytes: 7,
                tuples: 1,
            },
        )
        .unwrap();
        f.send(
            db0,
            db1,
            Msg {
                bytes: 9,
                tuples: 2,
            },
        )
        .unwrap();
        assert_eq!(f.metrics().get("net.intra_hdfs.bytes"), 7);
        assert_eq!(f.metrics().get("net.intra_db.bytes"), 9);
        assert_eq!(f.metrics().get("net.cross.bytes"), 0);
    }

    #[test]
    fn control_messages_do_not_count_tuples() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.send(
            Endpoint::JenCoordinator,
            j0,
            Msg {
                bytes: 4,
                tuples: 0,
            },
        )
        .unwrap();
        assert_eq!(f.metrics().get("net.intra_hdfs.msgs"), 1);
        assert_eq!(f.metrics().get("net.intra_hdfs.tuples"), 0);
    }

    #[test]
    fn broadcast_meters_each_copy() {
        let f = fabric();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let targets = f.jen_endpoints();
        assert_eq!(targets.len(), 3);
        f.send_all(
            db0,
            &targets,
            &Msg {
                bytes: 10,
                tuples: 5,
            },
        )
        .unwrap();
        assert_eq!(f.metrics().get("net.cross.bytes"), 30);
        assert_eq!(f.metrics().get("net.cross.tuples"), 15);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let f = fabric();
        let ghost = Endpoint::Jen(JenWorkerId(99));
        assert!(f
            .send(
                ghost,
                ghost,
                Msg {
                    bytes: 1,
                    tuples: 0
                }
            )
            .is_err());
        assert!(f.receiver(ghost).is_err());
    }

    #[test]
    fn disconnect_blocks_sends_until_reconnect() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let db0 = Endpoint::Db(DbWorkerId(0));
        f.disconnect(j0);
        let err = f
            .send(
                db0,
                j0,
                Msg {
                    bytes: 1,
                    tuples: 0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HybridError::Disconnected { .. }));
        assert!(f.is_disconnected(j0));
        f.reconnect(j0);
        assert!(!f.is_disconnected(j0));
        assert!(f
            .send(
                db0,
                j0,
                Msg {
                    bytes: 1,
                    tuples: 0
                }
            )
            .is_ok());
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Tagged;

    impl Wire for Tagged {
        fn wire_bytes(&self) -> usize {
            8
        }
        fn wire_stream_label(&self) -> Option<&'static str> {
            Some("hdfs_shuffle")
        }
    }

    #[test]
    fn disconnected_send_carries_stream_label() {
        let f: Fabric<Tagged> = Fabric::new(1, 1, Metrics::new());
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.disconnect(j0);
        let err = f.send(Endpoint::Db(DbWorkerId(0)), j0, Tagged).unwrap_err();
        match err {
            HybridError::Disconnected { endpoint, stream } => {
                assert_eq!(endpoint, "jen-worker-0");
                assert_eq!(stream.as_deref(), Some("hdfs_shuffle"));
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn recv_as_disconnected_endpoint_is_typed() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.disconnect(j0);
        let err = f.recv_timeout(j0, Duration::from_millis(10)).unwrap_err();
        assert!(
            matches!(err, HybridError::Disconnected { ref endpoint, stream: None } if endpoint == "jen-worker-0")
        );
    }

    #[test]
    fn try_send_hands_message_back_when_full() {
        let f: Fabric<Msg> = Fabric::with_capacity(1, 1, Metrics::new(), Some(1));
        assert_eq!(f.capacity(), Some(1));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let msg = Msg {
            bytes: 10,
            tuples: 1,
        };
        assert!(f.try_send(db0, j0, msg.clone()).unwrap().is_none());
        // inbox full: message comes back and is NOT metered
        let back = f.try_send(db0, j0, msg.clone()).unwrap();
        assert_eq!(back, Some(msg.clone()));
        assert_eq!(f.metrics().get("net.cross.msgs"), 1);
        f.recv_timeout(j0, Duration::from_secs(1)).unwrap();
        assert!(f.try_send(db0, j0, msg).unwrap().is_none());
        assert_eq!(f.metrics().get("net.cross.msgs"), 2);
    }

    #[test]
    fn bounded_fabric_applies_backpressure_across_threads() {
        let f: Fabric<Msg> = Fabric::with_capacity(1, 1, Metrics::new(), Some(2));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let f2 = f.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..200 {
                f2.send(
                    db0,
                    j0,
                    Msg {
                        bytes: i,
                        tuples: 1,
                    },
                )
                .unwrap();
            }
        });
        let rx = f.receiver(j0).unwrap();
        for i in 0..200 {
            let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(d.msg.bytes, i);
            // the bound caps what can ever be queued ahead of the reader
            assert!(rx.len() <= 2);
        }
        producer.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let err = f.recv_timeout(j0, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, HybridError::Net(_)));
    }

    #[test]
    fn endpoints_listed_in_order() {
        let f = fabric();
        assert_eq!(
            f.db_endpoints(),
            vec![Endpoint::Db(DbWorkerId(0)), Endpoint::Db(DbWorkerId(1))]
        );
        assert_eq!(f.jen_endpoints().len(), 3);
    }

    #[test]
    fn cross_thread_delivery() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let f2 = f.clone();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                f2.send(
                    db0,
                    j0,
                    Msg {
                        bytes: i,
                        tuples: 1,
                    },
                )
                .unwrap();
            }
        });
        let rx = f.receiver(j0).unwrap();
        let mut got = 0;
        while got < 100 {
            rx.recv_timeout(Duration::from_secs(1)).unwrap();
            got += 1;
        }
        t.join().unwrap();
        assert_eq!(f.metrics().get("net.cross.tuples"), 100);
    }
}
