//! The instrumented communication fabric between DB2 workers and JEN
//! workers.
//!
//! The paper's implementation connects every pair of cooperating workers
//! with TCP/IP sockets (§4.1) and its conclusions hinge on *how many bytes
//! cross which link*: the 1 GbE intra-HDFS network, the DB's internal
//! interconnect, and the 20 Gbit inter-cluster switch. This crate provides
//! the simulated equivalent:
//!
//! * [`Endpoint`] — addresses for DB workers, JEN workers, and the JEN
//!   coordinator;
//! * [`LinkClass`] — the three link categories ([`LinkClass::IntraDb`],
//!   [`LinkClass::IntraHdfs`], [`LinkClass::Cross`]), derived from the two
//!   endpoints of a transfer;
//! * [`Fabric`] — per-endpoint inboxes over crossbeam channels. Every
//!   [`Fabric::send`] meters bytes, messages and tuples on its link class
//!   (plus direction for cross-cluster traffic), feeding both Table 1 and
//!   the cost model;
//! * failure injection: [`Fabric::disconnect`] makes an endpoint
//!   unreachable, letting tests verify clean error propagation when a JEN
//!   worker dies mid-shuffle.
//!
//! Message payloads are generic: anything implementing [`Wire`] (a byte/tuple
//! size report) can travel, so the engines define their own message enums
//! without this crate depending on them.

pub mod fault;
pub mod message;

pub use fault::{FaultPlan, FaultSpec, FaultTarget, RetryPolicy, Straggler, WorkerKill};
pub use message::{Message, StreamTag};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::metrics::{CounterId, Metrics};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// An addressable party on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A shared-nothing database worker (DB2 DPF agent).
    Db(DbWorkerId),
    /// A JEN worker (one per HDFS DataNode).
    Jen(JenWorkerId),
    /// The JEN coordinator (runs on the NameNode in the paper's setup).
    JenCoordinator,
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Db(w) => write!(f, "{w}"),
            Endpoint::Jen(w) => write!(f, "{w}"),
            Endpoint::JenCoordinator => write!(f, "jen-coordinator"),
        }
    }
}

/// Which physical network a transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Between DB workers (the warehouse's internal interconnect).
    IntraDb,
    /// Between JEN workers / coordinator (the HDFS cluster's 1 GbE).
    IntraHdfs,
    /// Across the inter-cluster switch (20 Gbit in the paper).
    Cross,
}

impl LinkClass {
    /// Classify a transfer by its endpoints. Coordinator traffic inside the
    /// HDFS cluster is intra-HDFS; DB ↔ anything-on-HDFS is cross-cluster.
    pub fn classify(from: Endpoint, to: Endpoint) -> LinkClass {
        use Endpoint::*;
        match (from, to) {
            (Db(_), Db(_)) => LinkClass::IntraDb,
            (Jen(_) | JenCoordinator, Jen(_) | JenCoordinator) => LinkClass::IntraHdfs,
            _ => LinkClass::Cross,
        }
    }

    /// Metric-name prefix for this class.
    pub fn metric_prefix(self) -> &'static str {
        match self {
            LinkClass::IntraDb => "net.intra_db",
            LinkClass::IntraHdfs => "net.intra_hdfs",
            LinkClass::Cross => "net.cross",
        }
    }

    /// All link classes, in `index()` order.
    pub const ALL: [LinkClass; 3] = [LinkClass::IntraDb, LinkClass::IntraHdfs, LinkClass::Cross];

    /// Dense index of this class (for per-class lookup tables).
    pub fn index(self) -> usize {
        match self {
            LinkClass::IntraDb => 0,
            LinkClass::IntraHdfs => 1,
            LinkClass::Cross => 2,
        }
    }
}

/// Pre-registered counter ids for one link class — the always-touched
/// counters of [`Fabric::send`], interned once at fabric construction so
/// the send hot path never formats a metric name or takes the registry's
/// name lock.
#[derive(Clone, Copy)]
struct LinkCounters {
    bytes: CounterId,
    msgs: CounterId,
    tuples: CounterId,
}

impl LinkCounters {
    fn register(metrics: &Metrics, class: LinkClass) -> LinkCounters {
        let prefix = class.metric_prefix();
        LinkCounters {
            bytes: metrics.register(&format!("{prefix}.bytes")),
            msgs: metrics.register(&format!("{prefix}.msgs")),
            tuples: metrics.register(&format!("{prefix}.tuples")),
        }
    }
}

/// Pre-registered per-direction counters for cross-cluster traffic.
#[derive(Clone, Copy)]
struct DirCounters {
    bytes: CounterId,
    tuples: CounterId,
}

impl DirCounters {
    fn register(metrics: &Metrics, dir: &str) -> DirCounters {
        DirCounters {
            bytes: metrics.register(&format!("net.cross.{dir}.bytes")),
            tuples: metrics.register(&format!("net.cross.{dir}.tuples")),
        }
    }
}

/// Anything that can be shipped over the fabric.
///
/// `wire_bytes` should reflect a realistic serialized size (the engines use
/// `Batch::serialized_bytes` and `BloomFilter::wire_bytes`); `wire_tuples`
/// is the row count for data payloads, 0 for control messages. These feed
/// the metrics that reproduce Table 1.
pub trait Wire: Send + 'static {
    fn wire_bytes(&self) -> usize;
    fn wire_tuples(&self) -> u64 {
        0
    }
    /// Short label of the logical stream this message belongs to, used to
    /// break metrics down per stream (e.g. Table 1 counts only the
    /// `hdfs_shuffle` stream, not partial-aggregate traffic).
    fn wire_stream_label(&self) -> Option<&'static str> {
        None
    }
    /// Whether this message is a stream barrier (an end-of-stream marker).
    /// The chaos layer never holds a barrier back for reordering, and
    /// flushes any held delivery on the same edge *before* it — so a
    /// receiver counting barriers can never conclude a stream is complete
    /// while one of its data messages is still held.
    fn wire_is_barrier(&self) -> bool {
        false
    }
    /// Whether swapping this message with the *next* message on the same
    /// `(sender, receiver, stream)` edge preserves correctness. Streams
    /// whose receivers fold arrivals into order-insensitive state (hash
    /// builds, aggregate merges, key sets) opt in; positionally decoded
    /// streams (PERF keys/bitmaps, final result chunks) must not.
    fn wire_reorderable(&self) -> bool {
        false
    }
}

/// An incoming message with its sender.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    pub from: Endpoint,
    pub msg: M,
    /// Per-`(namespace, sender, receiver, stream)` sequence number, stamped
    /// only when a fault plan is active (0 otherwise). A chaos-duplicated
    /// delivery carries its original's number, so receivers dedup by
    /// `(sender, stream, seq)` instead of re-applying the payload.
    pub seq: u64,
}

/// An endpoint's inbox: the producing and consuming halves of its channel.
type Inbox<M> = (Sender<Delivery<M>>, Receiver<Delivery<M>>);

/// One directed `(namespace, sender, receiver, stream)` edge — the unit
/// the chaos layer sequences deliveries over and holds reordered messages
/// on. Each edge has a single sending worker thread, so its sequence of
/// logical messages is deterministic regardless of thread schedule.
type EdgeKey = (u64, Endpoint, Endpoint, Option<&'static str>);

/// What one [`Fabric::try_send_attempt`] did with the message.
#[derive(Debug)]
pub enum SendAttempt<M> {
    /// Enqueued (and metered). An active fault plan may additionally have
    /// delayed the delivery, retransmitted it, or deferred it one slot —
    /// all invisible to the caller.
    Delivered,
    /// The bounded inbox is full — the message comes back; drain your own
    /// inbox and retry the *same* attempt number.
    Full(M),
    /// The fault plan dropped this attempt. Retry with `attempt + 1`
    /// (backing off per [`RetryPolicy`]) or surface the typed error.
    Dropped(M, HybridError),
}

/// One registry's worth of fabric counters: the metrics handle plus every
/// pre-registered id the send path touches. The root fabric owns one plane;
/// each query namespace adds its own, so concurrent queries meter into
/// isolated registries while the root plane keeps the global totals.
struct MeterPlane {
    metrics: Metrics,
    /// Per-class counters, indexed by `LinkClass::index()`.
    class_counters: [LinkCounters; 3],
    /// Cross-cluster per-direction counters: [db_to_jen, jen_to_db].
    dir_counters: [DirCounters; 2],
    /// Lazily interned per-(class, stream-label) counters. Labels come
    /// from the engines at send time, so they can't be pre-registered
    /// here; the cache makes each (class, label) pay the name-formatting
    /// cost exactly once.
    stream_counters: RwLock<HashMap<(usize, &'static str), DirCounters>>,
}

impl MeterPlane {
    fn new(metrics: Metrics) -> MeterPlane {
        let class_counters = LinkClass::ALL.map(|class| LinkCounters::register(&metrics, class));
        let dir_counters = [
            DirCounters::register(&metrics, "db_to_jen"),
            DirCounters::register(&metrics, "jen_to_db"),
        ];
        MeterPlane {
            metrics,
            class_counters,
            dir_counters,
            stream_counters: RwLock::new(HashMap::new()),
        }
    }

    /// Counter ids for a (link class, stream label) pair, interning the
    /// metric names on first use.
    fn stream_counters(&self, class: LinkClass, label: &'static str) -> DirCounters {
        let key = (class.index(), label);
        if let Some(c) = self.stream_counters.read().get(&key) {
            return *c;
        }
        let prefix = class.metric_prefix();
        let c = DirCounters {
            bytes: self
                .metrics
                .register(&format!("{prefix}.stream.{label}.bytes")),
            tuples: self
                .metrics
                .register(&format!("{prefix}.stream.{label}.tuples")),
        };
        self.stream_counters.write().insert(key, c);
        c
    }

    /// Meter one transfer on this plane's registry.
    fn meter(
        &self,
        from: Endpoint,
        to: Endpoint,
        bytes: u64,
        tuples: u64,
        label: Option<&'static str>,
    ) {
        let class = LinkClass::classify(from, to);
        let m = &self.metrics;
        let counters = self.class_counters[class.index()];
        m.add_id(counters.bytes, bytes);
        m.incr_id(counters.msgs);
        m.add_id(counters.tuples, tuples);
        if let Some(label) = label {
            let sc = self.stream_counters(class, label);
            m.add_id(sc.bytes, bytes);
            m.add_id(sc.tuples, tuples);
        }
        if class == LinkClass::Cross {
            // Direction matters across the switch: "DB tuples sent" in
            // Table 1 is exactly the db_to_jen tuple counter.
            let dir = self.dir_counters[match from {
                Endpoint::Db(_) => 0,
                _ => 1,
            }];
            m.add_id(dir.bytes, bytes);
            m.add_id(dir.tuples, tuples);
        }
    }
}

struct Inner<M> {
    /// Inboxes keyed by (namespace, endpoint). Namespace 0 is the root
    /// fabric created at construction; [`Fabric::namespace`] adds an
    /// identical endpoint set under a fresh namespace id so concurrent
    /// queries on one shared fabric can never receive each other's
    /// messages.
    inboxes: RwLock<HashMap<(u64, Endpoint), Inbox<M>>>,
    /// Endpoint-set shape, so every namespace gets the same topology.
    num_db: usize,
    num_jen: usize,
    /// Per-endpoint inbox bound (messages). `None` = unbounded, the
    /// sequential drivers' mode; parallel drivers run bounded so senders
    /// feel back-pressure instead of buffering a whole phase in memory.
    capacity: Option<usize>,
    /// Failure injection is physical, not per-query: a dead worker is dead
    /// for every namespace.
    disconnected: Mutex<HashSet<Endpoint>>,
    /// The root registry's plane — every transfer in every namespace also
    /// lands here, so global link totals stay exact under concurrency.
    root_plane: Arc<MeterPlane>,
    /// Seeded chaos plan shared by every namespace (the namespace id is
    /// part of every decision hash, so each session rolls fresh faults).
    /// `None` = fault-free: sends take the exact pre-chaos fast path and
    /// deliveries carry `seq` 0.
    faults: Option<FaultPlan>,
    /// Retry budget for [`Fabric::send`]'s internal drop recovery (the
    /// mailbox layer reads its own copy from `SystemConfig`).
    retry: RetryPolicy,
    /// Next sequence number per edge, 1-based. Only touched when `faults`
    /// is set.
    edge_seqs: Mutex<HashMap<EdgeKey, u64>>,
    /// At most one reorder-held delivery per edge, flushed by the edge's
    /// next send (before it if that next message is a barrier, after it
    /// otherwise).
    held: Mutex<HashMap<EdgeKey, Delivery<M>>>,
}

/// The fabric: a metered, all-to-all message network.
///
/// Cloning is cheap (a couple of `Arc`s); one clone is handed to each
/// worker thread. A handle is bound to one namespace: [`Fabric::namespace`]
/// derives a handle whose sends/receives use a private inbox set and whose
/// traffic is metered into a per-query registry *in addition to* the root
/// registry.
pub struct Fabric<M> {
    inner: Arc<Inner<M>>,
    ns: u64,
    /// The per-namespace plane (for the root handle this IS the root
    /// plane, and `extra_plane` is unset so nothing double-counts).
    plane: Arc<MeterPlane>,
    /// Set only on namespaced handles: the root plane, metered second.
    extra_root: bool,
}

impl<M> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: Arc::clone(&self.inner),
            ns: self.ns,
            plane: Arc::clone(&self.plane),
            extra_root: self.extra_root,
        }
    }
}

impl<M: Wire> Fabric<M> {
    /// Build a fabric with inboxes for `num_db` DB workers, `num_jen` JEN
    /// workers, and the JEN coordinator. Inboxes are unbounded; see
    /// [`Fabric::with_capacity`] for the back-pressured variant.
    pub fn new(num_db: usize, num_jen: usize, metrics: Metrics) -> Fabric<M> {
        Fabric::with_capacity(num_db, num_jen, metrics, None)
    }

    /// Build a fabric whose per-endpoint inboxes hold at most `capacity`
    /// messages (`None` = unbounded). With a bound, [`Fabric::send`] blocks
    /// while the target inbox is full and [`Fabric::try_send`] hands the
    /// message back — callers that both send and receive (all-to-all
    /// shuffles) must use `try_send` and drain their own inbox while the
    /// target is full, or a cycle of full inboxes deadlocks.
    pub fn with_capacity(
        num_db: usize,
        num_jen: usize,
        metrics: Metrics,
        capacity: Option<usize>,
    ) -> Fabric<M> {
        Fabric::with_options(
            num_db,
            num_jen,
            metrics,
            capacity,
            None,
            RetryPolicy::default(),
        )
    }

    /// [`Fabric::with_capacity`] plus an optional chaos plan and the retry
    /// policy used by [`Fabric::send`]'s drop recovery.
    pub fn with_options(
        num_db: usize,
        num_jen: usize,
        metrics: Metrics,
        capacity: Option<usize>,
        faults: Option<FaultSpec>,
        retry: RetryPolicy,
    ) -> Fabric<M> {
        let mut inboxes = HashMap::with_capacity(num_db + num_jen + 1);
        Self::insert_namespace_inboxes(&mut inboxes, 0, num_db, num_jen, capacity);
        let plane = Arc::new(MeterPlane::new(metrics));
        Fabric {
            inner: Arc::new(Inner {
                inboxes: RwLock::new(inboxes),
                num_db,
                num_jen,
                capacity,
                disconnected: Mutex::new(HashSet::new()),
                root_plane: Arc::clone(&plane),
                faults: faults.map(FaultPlan::new),
                retry,
                edge_seqs: Mutex::new(HashMap::new()),
                held: Mutex::new(HashMap::new()),
            }),
            ns: 0,
            plane,
            extra_root: false,
        }
    }

    fn insert_namespace_inboxes(
        inboxes: &mut HashMap<(u64, Endpoint), Inbox<M>>,
        ns: u64,
        num_db: usize,
        num_jen: usize,
        capacity: Option<usize>,
    ) {
        let channel = || match capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        for i in 0..num_db {
            inboxes.insert((ns, Endpoint::Db(DbWorkerId(i))), channel());
        }
        for i in 0..num_jen {
            inboxes.insert((ns, Endpoint::Jen(JenWorkerId(i))), channel());
        }
        inboxes.insert((ns, Endpoint::JenCoordinator), channel());
    }

    /// Derive a handle over the same physical fabric whose inbox set is
    /// private to namespace `ns` and whose traffic is metered into
    /// `metrics` (as well as the root registry, so global totals stay the
    /// sum of all namespaces). Fails if `ns` is 0 (the root) or already in
    /// use. Call [`Fabric::remove_namespace`] when the query finishes.
    pub fn namespace(&self, ns: u64, metrics: Metrics) -> Result<Fabric<M>> {
        if ns == 0 {
            return Err(HybridError::Net("namespace 0 is the root fabric".into()));
        }
        let mut inboxes = self.inner.inboxes.write();
        if inboxes.contains_key(&(ns, Endpoint::JenCoordinator)) {
            return Err(HybridError::Net(format!("fabric namespace {ns} in use")));
        }
        Self::insert_namespace_inboxes(
            &mut inboxes,
            ns,
            self.inner.num_db,
            self.inner.num_jen,
            self.inner.capacity,
        );
        Ok(Fabric {
            inner: Arc::clone(&self.inner),
            ns,
            plane: Arc::new(MeterPlane::new(metrics)),
            extra_root: true,
        })
    }

    /// Derive a handle over a *fresh* inbox namespace that keeps this
    /// handle's metering plane(s). Where [`Fabric::namespace`] opens a new
    /// accounting domain (fresh plane, always double-metered into the
    /// root), a subnamespace is the *same query continuing under a new
    /// stream identity*: traffic is metered exactly as it would be on the
    /// parent handle, so the conservation law (root totals = Σ sessions)
    /// holds across a mid-query restart. The fresh namespace still buys
    /// everything a restart needs — private inboxes (no cross-talk with
    /// the abandoned attempt's in-flight messages), fresh chaos fault
    /// rolls (the namespace is hashed into every decision), and a fresh
    /// dedup space. Call [`Fabric::remove_namespace`] on the returned
    /// handle when the restarted attempt finishes.
    pub fn subnamespace(&self, ns: u64) -> Result<Fabric<M>> {
        if ns == 0 {
            return Err(HybridError::Net("namespace 0 is the root fabric".into()));
        }
        if ns == self.ns {
            return Err(HybridError::Net(
                "a subnamespace must differ from its parent".into(),
            ));
        }
        let mut inboxes = self.inner.inboxes.write();
        if inboxes.contains_key(&(ns, Endpoint::JenCoordinator)) {
            return Err(HybridError::Net(format!("fabric namespace {ns} in use")));
        }
        Self::insert_namespace_inboxes(
            &mut inboxes,
            ns,
            self.inner.num_db,
            self.inner.num_jen,
            self.inner.capacity,
        );
        Ok(Fabric {
            inner: Arc::clone(&self.inner),
            ns,
            plane: Arc::clone(&self.plane),
            extra_root: self.extra_root,
        })
    }

    /// Drop this handle's namespace: its inboxes (and any undelivered
    /// messages in them) disappear from the fabric. No-op on the root.
    pub fn remove_namespace(&self) {
        if self.ns == 0 {
            return;
        }
        let mut inboxes = self.inner.inboxes.write();
        inboxes.retain(|(ns, _), _| *ns != self.ns);
        drop(inboxes);
        self.clear_chaos_state();
    }

    /// Drop this namespace's chaos bookkeeping (held deliveries, edge
    /// sequence counters) so a later run — or a retry in a fresh
    /// namespace reusing the id — starts from a clean, replayable state.
    fn clear_chaos_state(&self) {
        if self.inner.faults.is_none() {
            return;
        }
        self.inner.held.lock().retain(|(ns, ..), _| *ns != self.ns);
        self.inner
            .edge_seqs
            .lock()
            .retain(|(ns, ..), _| *ns != self.ns);
    }

    /// The namespace this handle is bound to (0 = root).
    pub fn ns(&self) -> u64 {
        self.ns
    }

    pub fn metrics(&self) -> &Metrics {
        &self.plane.metrics
    }

    /// The typed error for traffic involving a disconnected endpoint.
    fn disconnected_error(endpoint: Endpoint, stream: Option<&'static str>) -> HybridError {
        HybridError::Disconnected {
            endpoint: endpoint.to_string(),
            stream: stream.map(str::to_string),
        }
    }

    /// Meter `msg` on the link `from → to`. Called once per *successful*
    /// enqueue so retried `try_send`s never double-count.
    fn meter(&self, from: Endpoint, to: Endpoint, msg: &M) {
        self.meter_raw(
            from,
            to,
            msg.wire_bytes() as u64,
            msg.wire_tuples(),
            msg.wire_stream_label(),
        );
    }

    /// [`Fabric::meter`] with the wire accounting pre-extracted, for call
    /// sites where the message has already moved into the channel. Meters
    /// this handle's plane; namespaced handles additionally meter the root
    /// plane, so the root registry's `net.*` totals are always the exact
    /// sum of every namespace's.
    fn meter_raw(
        &self,
        from: Endpoint,
        to: Endpoint,
        bytes: u64,
        tuples: u64,
        label: Option<&'static str>,
    ) {
        self.plane.meter(from, to, bytes, tuples, label);
        if self.extra_root {
            self.inner.root_plane.meter(from, to, bytes, tuples, label);
        }
    }

    /// Sending half of `endpoint`'s inbox in this handle's namespace.
    fn sender(&self, endpoint: Endpoint) -> Result<Sender<Delivery<M>>> {
        self.inner
            .inboxes
            .read()
            .get(&(self.ns, endpoint))
            .map(|(tx, _)| tx.clone())
            .ok_or_else(|| HybridError::Net(format!("unknown endpoint {endpoint}")))
    }

    /// Whether a chaos fault plan is active on this fabric.
    pub fn has_faults(&self) -> bool {
        self.inner.faults.is_some()
    }

    /// The active chaos plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inner.faults.as_ref()
    }

    /// The retry policy [`Fabric::send`] recovers injected drops with.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.inner.retry
    }

    /// Bump a `net.chaos.*` counter on this handle's plane — and, for
    /// namespaced handles, the root plane, mirroring `Fabric::meter_raw`
    /// so the conservation law (root totals == sum over namespaces) holds
    /// for chaos accounting too. Public so receivers (mailboxes) can
    /// account their dedup drops on the same planes.
    pub fn chaos_incr(&self, name: &str) {
        self.plane.metrics.incr(name);
        if self.extra_root {
            self.inner.root_plane.metrics.incr(name);
        }
    }

    /// Raw non-blocking enqueue of an already-stamped delivery. Does NOT
    /// meter — callers meter exactly once per logical message.
    fn push(&self, to: Endpoint, d: Delivery<M>) -> Result<Option<Delivery<M>>> {
        let tx = self.sender(to)?;
        match tx.try_send(d) {
            Ok(()) => Ok(None),
            Err(TrySendError::Full(d)) => Ok(Some(d)),
            Err(TrySendError::Disconnected(d)) => {
                Err(Self::disconnected_error(to, d.msg.wire_stream_label()))
            }
        }
    }

    /// Send `msg` from `from` to `to`, metering it on the appropriate link.
    /// Blocks while a bounded inbox is full. Under an active fault plan,
    /// injected drops are retried internally per [`Fabric::retry_policy`];
    /// exhaustion surfaces the typed `FaultInjected` error.
    pub fn send(&self, from: Endpoint, to: Endpoint, msg: M) -> Result<()>
    where
        M: Clone,
    {
        if self.inner.faults.is_some() {
            let mut msg = msg;
            let mut attempt = 0u32;
            loop {
                match self.try_send_attempt(from, to, msg, attempt)? {
                    SendAttempt::Delivered => return Ok(()),
                    SendAttempt::Full(m) => {
                        // Blocking semantics over the chaos path: wait for
                        // the inbox to drain. Only the mailbox-free callers
                        // (tests, sequential helpers) land here.
                        msg = m;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    SendAttempt::Dropped(m, err) => {
                        attempt += 1;
                        if attempt >= self.inner.retry.attempts.max(1) {
                            return Err(err);
                        }
                        self.chaos_incr("net.chaos.send_retries");
                        std::thread::sleep(self.inner.retry.backoff(attempt));
                        msg = m;
                    }
                }
            }
        }
        if self.inner.disconnected.lock().contains(&to) {
            return Err(Self::disconnected_error(to, msg.wire_stream_label()));
        }
        let tx = self.sender(to)?;
        self.meter(from, to, &msg);
        let label = msg.wire_stream_label();
        tx.send(Delivery { from, msg, seq: 0 })
            .map_err(|_| Self::disconnected_error(to, label))
    }

    /// Non-blocking send: `Ok(None)` means delivered (and metered);
    /// `Ok(Some(msg))` hands the message back because the bounded inbox is
    /// full — drain your own inbox and retry. Worker tasks use this instead
    /// of [`Fabric::send`] so an all-to-all shuffle over bounded channels
    /// cannot deadlock on a cycle of full inboxes. Under an active fault
    /// plan an injected drop surfaces as the typed error immediately; use
    /// [`Fabric::try_send_attempt`] to drive retries.
    pub fn try_send(&self, from: Endpoint, to: Endpoint, msg: M) -> Result<Option<M>>
    where
        M: Clone,
    {
        match self.try_send_attempt(from, to, msg, 0)? {
            SendAttempt::Delivered => Ok(None),
            SendAttempt::Full(m) => Ok(Some(m)),
            SendAttempt::Dropped(_, err) => Err(err),
        }
    }

    /// One send attempt of a logical message. `attempt` distinguishes
    /// retries of the same message so the chaos plan re-rolls its drop
    /// decision (a `Full` hand-back is *not* a new attempt). The fault-free
    /// path is identical to the pre-chaos `try_send`.
    pub fn try_send_attempt(
        &self,
        from: Endpoint,
        to: Endpoint,
        msg: M,
        attempt: u32,
    ) -> Result<SendAttempt<M>>
    where
        M: Clone,
    {
        if self.inner.disconnected.lock().contains(&to) {
            return Err(Self::disconnected_error(to, msg.wire_stream_label()));
        }
        // Snapshot the wire accounting before the message moves into the
        // channel; metered only if the enqueue succeeds, so a Full retry
        // never double-counts.
        let (bytes, tuples, label) = (
            msg.wire_bytes() as u64,
            msg.wire_tuples(),
            msg.wire_stream_label(),
        );
        let Some(plan) = &self.inner.faults else {
            return Ok(match self.push(to, Delivery { from, msg, seq: 0 })? {
                None => {
                    self.meter_raw(from, to, bytes, tuples, label);
                    SendAttempt::Delivered
                }
                Some(d) => SendAttempt::Full(d.msg),
            });
        };

        let key: EdgeKey = (self.ns, from, to, label);
        // Peek (don't consume) this logical message's sequence number; a
        // Full hand-back or a dropped attempt re-derives the same value,
        // so decisions stay per-message, not per-call.
        let seq = self.inner.edge_seqs.lock().get(&key).copied().unwrap_or(0) + 1;
        if plan.should_drop(self.ns, from, to, label, seq, attempt) {
            self.chaos_incr("net.chaos.dropped");
            if attempt + 1 >= self.inner.retry.attempts.max(1) {
                // The retry budget is spent: the caller abandons this
                // message. Consume its sequence number so the edge's later
                // messages roll fresh decisions instead of replaying this
                // one's all-drop fate forever.
                self.inner.edge_seqs.lock().insert(key, seq);
            }
            let err = HybridError::FaultInjected {
                fault: "drop".to_string(),
                endpoint: to.to_string(),
                stream: label.map(str::to_string),
            };
            return Ok(SendAttempt::Dropped(msg, err));
        }
        if let Some(pause) = plan.delay(self.ns, from, to, label, seq) {
            self.chaos_incr("net.chaos.delayed");
            std::thread::sleep(pause);
        }

        let barrier = msg.wire_is_barrier();
        let mut held = self.inner.held.lock();
        if let Some(h) = held.remove(&key) {
            if barrier {
                // Flush the held data delivery BEFORE the end-of-stream
                // marker, so the receiver's barrier count can never run
                // ahead of the data. The held message was metered when it
                // was deferred.
                if let Some(back) = self.push(to, h)? {
                    held.insert(key, back);
                    return Ok(SendAttempt::Full(msg));
                }
                return Ok(match self.push(to, Delivery { from, msg, seq })? {
                    None => {
                        self.inner.edge_seqs.lock().insert(key, seq);
                        self.meter_raw(from, to, bytes, tuples, label);
                        SendAttempt::Delivered
                    }
                    Some(d) => SendAttempt::Full(d.msg),
                });
            }
            // The swap: the current message overtakes the held one.
            match self.push(to, Delivery { from, msg, seq })? {
                None => {
                    self.inner.edge_seqs.lock().insert(key, seq);
                    self.meter_raw(from, to, bytes, tuples, label);
                    match self.push(to, h)? {
                        None => {}
                        // Inbox refilled before the held half landed: keep
                        // holding; the edge's next send (at latest its
                        // barrier) retries the flush.
                        Some(back) => {
                            held.insert(key, back);
                        }
                    }
                    return Ok(SendAttempt::Delivered);
                }
                Some(d) => {
                    held.insert(key, h);
                    return Ok(SendAttempt::Full(d.msg));
                }
            }
        }
        if !barrier && msg.wire_reorderable() && plan.should_reorder(self.ns, from, to, label, seq)
        {
            // Defer this delivery one slot. It counts as sent (metered
            // now); the edge's next message flushes it, and barriers are
            // never deferred, so it always lands before the stream closes.
            self.inner.edge_seqs.lock().insert(key, seq);
            self.meter_raw(from, to, bytes, tuples, label);
            self.chaos_incr("net.chaos.reordered");
            held.insert(key, Delivery { from, msg, seq });
            return Ok(SendAttempt::Delivered);
        }
        drop(held);

        let copy = plan
            .should_duplicate(self.ns, from, to, label, seq)
            .then(|| msg.clone());
        match self.push(to, Delivery { from, msg, seq })? {
            None => {
                self.inner.edge_seqs.lock().insert(key, seq);
                self.meter_raw(from, to, bytes, tuples, label);
                if let Some(copy) = copy {
                    // Retransmission: same payload, same sequence number —
                    // the receiver's dedup must absorb it, not re-apply it.
                    // Metered like any other delivery so the conservation
                    // law still balances; best-effort if the inbox refilled
                    // meanwhile.
                    if self
                        .push(
                            to,
                            Delivery {
                                from,
                                msg: copy,
                                seq,
                            },
                        )?
                        .is_none()
                    {
                        self.meter_raw(from, to, bytes, tuples, label);
                        self.chaos_incr("net.chaos.duplicated");
                    }
                }
                Ok(SendAttempt::Delivered)
            }
            Some(d) => Ok(SendAttempt::Full(d.msg)),
        }
    }

    /// Send clones of `msg` to every endpoint in `tos` (broadcast /
    /// multicast — each clone is metered on its own link).
    pub fn send_all(&self, from: Endpoint, tos: &[Endpoint], msg: &M) -> Result<()>
    where
        M: Clone,
    {
        for &to in tos {
            self.send(from, to, msg.clone())?;
        }
        Ok(())
    }

    /// The receiving half of `endpoint`'s inbox in this handle's namespace.
    pub fn receiver(&self, endpoint: Endpoint) -> Result<Receiver<Delivery<M>>> {
        self.inner
            .inboxes
            .read()
            .get(&(self.ns, endpoint))
            .map(|(_, rx)| rx.clone())
            .ok_or_else(|| HybridError::Net(format!("unknown endpoint {endpoint}")))
    }

    /// Blocking receive with a deadline — the engines use this instead of a
    /// bare `recv()` so a lost peer surfaces as an error, not a hang.
    /// Receiving *as* a disconnected endpoint fails with the typed
    /// [`HybridError::Disconnected`] (a dead worker cannot make progress),
    /// while an empty inbox at the deadline stays a generic timeout.
    pub fn recv_timeout(&self, endpoint: Endpoint, timeout: Duration) -> Result<Delivery<M>> {
        if self.is_disconnected(endpoint) {
            return Err(Self::disconnected_error(endpoint, None));
        }
        let rx = self.receiver(endpoint)?;
        rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => {
                HybridError::Net(format!("{endpoint} timed out waiting for a message"))
            }
            // A closed inbox means the endpoint is gone from the fabric —
            // the typed shape, so callers (and chaos assertions) never
            // have to string-match.
            RecvTimeoutError::Disconnected => Self::disconnected_error(endpoint, None),
        })
    }

    /// Whether failure injection has cut `endpoint` off the fabric.
    pub fn is_disconnected(&self, endpoint: Endpoint) -> bool {
        self.inner.disconnected.lock().contains(&endpoint)
    }

    /// The per-endpoint inbox bound this fabric was built with.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Drop every undelivered message in every inbox of *this handle's
    /// namespace*. Queries run over fresh connections in the paper's
    /// implementation; the algorithm runner purges before each run so a
    /// previously *failed* run's in-flight messages can never leak into
    /// the next query's streams. Other namespaces' in-flight queries are
    /// untouched.
    pub fn purge(&self) {
        let receivers: Vec<Receiver<Delivery<M>>> = self
            .inner
            .inboxes
            .read()
            .iter()
            .filter(|((ns, _), _)| *ns == self.ns)
            .map(|(_, (_, rx))| rx.clone())
            .collect();
        for rx in receivers {
            while rx.try_recv().is_ok() {}
        }
        self.clear_chaos_state();
    }

    /// Failure injection: future sends to `endpoint` fail.
    pub fn disconnect(&self, endpoint: Endpoint) {
        self.inner.disconnected.lock().insert(endpoint);
    }

    /// Undo [`Fabric::disconnect`].
    pub fn reconnect(&self, endpoint: Endpoint) {
        self.inner.disconnected.lock().remove(&endpoint);
    }

    /// All JEN worker endpoints of this fabric, in id order (identical in
    /// every namespace).
    pub fn jen_endpoints(&self) -> Vec<Endpoint> {
        (0..self.inner.num_jen)
            .map(|i| Endpoint::Jen(JenWorkerId(i)))
            .collect()
    }

    /// All DB worker endpoints of this fabric, in id order (identical in
    /// every namespace).
    pub fn db_endpoints(&self) -> Vec<Endpoint> {
        (0..self.inner.num_db)
            .map(|i| Endpoint::Db(DbWorkerId(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg {
        bytes: usize,
        tuples: u64,
    }

    impl Wire for Msg {
        fn wire_bytes(&self) -> usize {
            self.bytes
        }
        fn wire_tuples(&self) -> u64 {
            self.tuples
        }
    }

    fn fabric() -> Fabric<Msg> {
        Fabric::new(2, 3, Metrics::new())
    }

    #[test]
    fn classify_links() {
        use Endpoint::*;
        let db0 = Db(DbWorkerId(0));
        let db1 = Db(DbWorkerId(1));
        let j0 = Jen(JenWorkerId(0));
        let j1 = Jen(JenWorkerId(1));
        assert_eq!(LinkClass::classify(db0, db1), LinkClass::IntraDb);
        assert_eq!(LinkClass::classify(j0, j1), LinkClass::IntraHdfs);
        assert_eq!(
            LinkClass::classify(j0, JenCoordinator),
            LinkClass::IntraHdfs
        );
        assert_eq!(LinkClass::classify(db0, j0), LinkClass::Cross);
        assert_eq!(LinkClass::classify(j0, db0), LinkClass::Cross);
        assert_eq!(LinkClass::classify(db0, JenCoordinator), LinkClass::Cross);
    }

    #[test]
    fn send_receive_and_meter() {
        let f = fabric();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j1 = Endpoint::Jen(JenWorkerId(1));
        f.send(
            db0,
            j1,
            Msg {
                bytes: 100,
                tuples: 10,
            },
        )
        .unwrap();
        let d = f.recv_timeout(j1, Duration::from_secs(1)).unwrap();
        assert_eq!(d.from, db0);
        assert_eq!(
            d.msg,
            Msg {
                bytes: 100,
                tuples: 10
            }
        );
        let m = f.metrics();
        assert_eq!(m.get("net.cross.bytes"), 100);
        assert_eq!(m.get("net.cross.tuples"), 10);
        assert_eq!(m.get("net.cross.db_to_jen.tuples"), 10);
        assert_eq!(m.get("net.cross.jen_to_db.tuples"), 0);
        assert_eq!(m.get("net.intra_hdfs.bytes"), 0);
    }

    #[test]
    fn intra_links_metered_separately() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let j2 = Endpoint::Jen(JenWorkerId(2));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let db1 = Endpoint::Db(DbWorkerId(1));
        f.send(
            j0,
            j2,
            Msg {
                bytes: 7,
                tuples: 1,
            },
        )
        .unwrap();
        f.send(
            db0,
            db1,
            Msg {
                bytes: 9,
                tuples: 2,
            },
        )
        .unwrap();
        assert_eq!(f.metrics().get("net.intra_hdfs.bytes"), 7);
        assert_eq!(f.metrics().get("net.intra_db.bytes"), 9);
        assert_eq!(f.metrics().get("net.cross.bytes"), 0);
    }

    #[test]
    fn control_messages_do_not_count_tuples() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.send(
            Endpoint::JenCoordinator,
            j0,
            Msg {
                bytes: 4,
                tuples: 0,
            },
        )
        .unwrap();
        assert_eq!(f.metrics().get("net.intra_hdfs.msgs"), 1);
        assert_eq!(f.metrics().get("net.intra_hdfs.tuples"), 0);
    }

    #[test]
    fn broadcast_meters_each_copy() {
        let f = fabric();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let targets = f.jen_endpoints();
        assert_eq!(targets.len(), 3);
        f.send_all(
            db0,
            &targets,
            &Msg {
                bytes: 10,
                tuples: 5,
            },
        )
        .unwrap();
        assert_eq!(f.metrics().get("net.cross.bytes"), 30);
        assert_eq!(f.metrics().get("net.cross.tuples"), 15);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let f = fabric();
        let ghost = Endpoint::Jen(JenWorkerId(99));
        assert!(f
            .send(
                ghost,
                ghost,
                Msg {
                    bytes: 1,
                    tuples: 0
                }
            )
            .is_err());
        assert!(f.receiver(ghost).is_err());
    }

    #[test]
    fn disconnect_blocks_sends_until_reconnect() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let db0 = Endpoint::Db(DbWorkerId(0));
        f.disconnect(j0);
        let err = f
            .send(
                db0,
                j0,
                Msg {
                    bytes: 1,
                    tuples: 0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HybridError::Disconnected { .. }));
        assert!(f.is_disconnected(j0));
        f.reconnect(j0);
        assert!(!f.is_disconnected(j0));
        assert!(f
            .send(
                db0,
                j0,
                Msg {
                    bytes: 1,
                    tuples: 0
                }
            )
            .is_ok());
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Tagged;

    impl Wire for Tagged {
        fn wire_bytes(&self) -> usize {
            8
        }
        fn wire_stream_label(&self) -> Option<&'static str> {
            Some("hdfs_shuffle")
        }
    }

    #[test]
    fn disconnected_send_carries_stream_label() {
        let f: Fabric<Tagged> = Fabric::new(1, 1, Metrics::new());
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.disconnect(j0);
        let err = f.send(Endpoint::Db(DbWorkerId(0)), j0, Tagged).unwrap_err();
        match err {
            HybridError::Disconnected { endpoint, stream } => {
                assert_eq!(endpoint, "jen-worker-0");
                assert_eq!(stream.as_deref(), Some("hdfs_shuffle"));
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn recv_as_disconnected_endpoint_is_typed() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.disconnect(j0);
        let err = f.recv_timeout(j0, Duration::from_millis(10)).unwrap_err();
        assert!(
            matches!(err, HybridError::Disconnected { ref endpoint, stream: None } if endpoint == "jen-worker-0")
        );
    }

    #[test]
    fn try_send_hands_message_back_when_full() {
        let f: Fabric<Msg> = Fabric::with_capacity(1, 1, Metrics::new(), Some(1));
        assert_eq!(f.capacity(), Some(1));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let msg = Msg {
            bytes: 10,
            tuples: 1,
        };
        assert!(f.try_send(db0, j0, msg.clone()).unwrap().is_none());
        // inbox full: message comes back and is NOT metered
        let back = f.try_send(db0, j0, msg.clone()).unwrap();
        assert_eq!(back, Some(msg.clone()));
        assert_eq!(f.metrics().get("net.cross.msgs"), 1);
        f.recv_timeout(j0, Duration::from_secs(1)).unwrap();
        assert!(f.try_send(db0, j0, msg).unwrap().is_none());
        assert_eq!(f.metrics().get("net.cross.msgs"), 2);
    }

    #[test]
    fn bounded_fabric_applies_backpressure_across_threads() {
        let f: Fabric<Msg> = Fabric::with_capacity(1, 1, Metrics::new(), Some(2));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let f2 = f.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..200 {
                f2.send(
                    db0,
                    j0,
                    Msg {
                        bytes: i,
                        tuples: 1,
                    },
                )
                .unwrap();
            }
        });
        let rx = f.receiver(j0).unwrap();
        for i in 0..200 {
            let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(d.msg.bytes, i);
            // the bound caps what can ever be queued ahead of the reader
            assert!(rx.len() <= 2);
        }
        producer.join().unwrap();
    }

    #[test]
    fn namespaces_do_not_cross_talk() {
        let f = fabric();
        let ns_metrics = Metrics::new();
        let g = f.namespace(7, ns_metrics.clone()).unwrap();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        // a message sent in namespace 7 is invisible to the root inbox
        g.send(
            db0,
            j0,
            Msg {
                bytes: 11,
                tuples: 2,
            },
        )
        .unwrap();
        assert!(f.recv_timeout(j0, Duration::from_millis(20)).is_err());
        let d = g.recv_timeout(j0, Duration::from_secs(1)).unwrap();
        assert_eq!(d.msg.bytes, 11);
        // and vice versa
        f.send(
            db0,
            j0,
            Msg {
                bytes: 5,
                tuples: 1,
            },
        )
        .unwrap();
        assert!(g.recv_timeout(j0, Duration::from_millis(20)).is_err());
        assert!(f.recv_timeout(j0, Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn namespace_traffic_meters_both_planes() {
        let root_metrics = Metrics::new();
        let f: Fabric<Msg> = Fabric::new(1, 1, root_metrics.clone());
        let a_metrics = Metrics::new();
        let b_metrics = Metrics::new();
        let a = f.namespace(1, a_metrics.clone()).unwrap();
        let b = f.namespace(2, b_metrics.clone()).unwrap();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let msg = |bytes| Msg { bytes, tuples: 1 };
        a.send(db0, j0, msg(100)).unwrap();
        b.send(db0, j0, msg(40)).unwrap();
        b.send(db0, j0, msg(2)).unwrap();
        assert_eq!(a_metrics.get("net.cross.bytes"), 100);
        assert_eq!(b_metrics.get("net.cross.bytes"), 42);
        // the root registry holds the exact sum of every namespace
        assert_eq!(root_metrics.get("net.cross.bytes"), 142);
        assert_eq!(root_metrics.get("net.cross.msgs"), 3);
    }

    #[test]
    fn purge_is_namespace_scoped() {
        let f = fabric();
        let g = f.namespace(3, Metrics::new()).unwrap();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let msg = Msg {
            bytes: 1,
            tuples: 0,
        };
        f.send(db0, j0, msg.clone()).unwrap();
        g.send(db0, j0, msg).unwrap();
        g.purge();
        // namespace 3 is drained, the root message survives
        assert!(g.recv_timeout(j0, Duration::from_millis(20)).is_err());
        assert!(f.recv_timeout(j0, Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn namespace_lifecycle() {
        let f = fabric();
        assert_eq!(f.ns(), 0);
        assert!(f.namespace(0, Metrics::new()).is_err(), "0 is the root");
        let g = f.namespace(9, Metrics::new()).unwrap();
        assert_eq!(g.ns(), 9);
        assert!(f.namespace(9, Metrics::new()).is_err(), "9 is in use");
        g.remove_namespace();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        assert!(g.receiver(j0).is_err(), "inboxes are gone");
        // the id is free again, and the root was never affected
        assert!(f.namespace(9, Metrics::new()).is_ok());
        assert!(f.receiver(j0).is_ok());
    }

    #[test]
    fn subnamespace_keeps_parent_metering_plane() {
        let root_metrics = Metrics::new();
        let f: Fabric<Msg> = Fabric::new(1, 1, root_metrics.clone());
        let session_metrics = Metrics::new();
        let session = f.namespace(1, session_metrics.clone()).unwrap();
        let replan = session.subnamespace((1 << 48) | (1 << 8) | 1).unwrap();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let msg = |bytes| Msg { bytes, tuples: 1 };
        session.send(db0, j0, msg(100)).unwrap();
        replan.send(db0, j0, msg(40)).unwrap();
        // replan traffic lands in the session's plane (once) and the root
        // plane (once) — exactly like the parent handle, so the
        // conservation law (root = Σ sessions) survives a restart
        assert_eq!(session_metrics.get("net.cross.bytes"), 140);
        assert_eq!(root_metrics.get("net.cross.bytes"), 140);
        // inboxes are still private per namespace
        assert!(session.recv_timeout(j0, Duration::from_millis(20)).is_ok());
        assert!(replan.recv_timeout(j0, Duration::from_secs(1)).is_ok());
        replan.remove_namespace();
        assert!(replan.receiver(j0).is_err(), "replan inboxes are gone");
        assert!(session.receiver(j0).is_ok(), "parent namespace survives");
    }

    #[test]
    fn subnamespace_from_root_meters_once() {
        let root_metrics = Metrics::new();
        let f: Fabric<Msg> = Fabric::new(1, 1, root_metrics.clone());
        let replan = f.subnamespace(1 << 48).unwrap();
        replan
            .send(
                Endpoint::Db(DbWorkerId(0)),
                Endpoint::Jen(JenWorkerId(0)),
                Msg {
                    bytes: 7,
                    tuples: 1,
                },
            )
            .unwrap();
        assert_eq!(root_metrics.get("net.cross.bytes"), 7);
        assert_eq!(root_metrics.get("net.cross.msgs"), 1);
        replan.remove_namespace();
    }

    #[test]
    fn subnamespace_rejects_root_parent_and_in_use_ids() {
        let f = fabric();
        assert!(f.subnamespace(0).is_err(), "0 is the root");
        let session = f.namespace(5, Metrics::new()).unwrap();
        assert!(session.subnamespace(5).is_err(), "parent id");
        let replan = session.subnamespace(6).unwrap();
        assert!(session.subnamespace(6).is_err(), "6 is in use");
        replan.remove_namespace();
        assert!(session.subnamespace(6).is_ok(), "id free after removal");
    }

    #[test]
    fn disconnect_applies_across_namespaces() {
        let f = fabric();
        let g = f.namespace(4, Metrics::new()).unwrap();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.disconnect(j0);
        let err = g
            .send(
                Endpoint::Db(DbWorkerId(0)),
                j0,
                Msg {
                    bytes: 1,
                    tuples: 0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HybridError::Disconnected { .. }));
        f.reconnect(j0);
    }

    #[test]
    fn recv_timeout_expires() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let err = f.recv_timeout(j0, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, HybridError::Net(_)));
    }

    #[test]
    fn endpoints_listed_in_order() {
        let f = fabric();
        assert_eq!(
            f.db_endpoints(),
            vec![Endpoint::Db(DbWorkerId(0)), Endpoint::Db(DbWorkerId(1))]
        );
        assert_eq!(f.jen_endpoints().len(), 3);
    }

    fn chaos_fabric(spec: FaultSpec) -> (Fabric<Msg>, Metrics) {
        let metrics = Metrics::new();
        let f = Fabric::with_options(
            2,
            3,
            metrics.clone(),
            None,
            Some(spec),
            RetryPolicy::default(),
        );
        (f, metrics)
    }

    #[test]
    fn injected_drop_surfaces_typed_fault() {
        let (f, m) = chaos_fabric(FaultSpec::quiet(1).with_drops(1.0));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let msg = Msg {
            bytes: 4,
            tuples: 1,
        };
        let err = f.try_send(db0, j0, msg.clone()).unwrap_err();
        assert!(
            matches!(err, HybridError::FaultInjected { ref fault, .. } if fault == "drop"),
            "got {err:?}"
        );
        // blocking send exhausts the full retry budget, then fails typed
        let err = f.send(db0, j0, msg).unwrap_err();
        assert!(matches!(err, HybridError::FaultInjected { .. }));
        let retries = RetryPolicy::default().attempts as u64 - 1;
        assert_eq!(m.get("net.chaos.send_retries"), retries);
        assert!(m.get("net.chaos.dropped") > retries);
        assert_eq!(m.get("net.cross.msgs"), 0, "dropped sends are not metered");
    }

    #[test]
    fn retried_attempts_can_survive_partial_drop_rates() {
        let (f, _) = chaos_fabric(FaultSpec::quiet(17).with_drops(0.5));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        // At 50% drop a message survives its 4-attempt budget with
        // probability 1 − 0.5⁴ ≈ 94%: most messages land (some after a
        // retry), and the ones that don't must fail with the typed error —
        // never silently.
        let mut delivered = 0;
        let mut exhausted = 0;
        let mut needed_retry = false;
        for i in 0..32 {
            let mut attempt = 0;
            loop {
                match f
                    .try_send_attempt(
                        db0,
                        j0,
                        Msg {
                            bytes: i,
                            tuples: 1,
                        },
                        attempt,
                    )
                    .unwrap()
                {
                    SendAttempt::Delivered => {
                        delivered += 1;
                        if attempt > 0 {
                            needed_retry = true;
                        }
                        break;
                    }
                    SendAttempt::Full(_) => unreachable!("unbounded"),
                    SendAttempt::Dropped(_, err) => {
                        attempt += 1;
                        if attempt >= 4 {
                            assert!(matches!(err, HybridError::FaultInjected { .. }));
                            exhausted += 1;
                            break;
                        }
                    }
                }
            }
        }
        assert_eq!(delivered + exhausted, 32, "every message is accounted for");
        assert!(delivered >= 24, "most messages should survive the budget");
        assert!(
            needed_retry,
            "seed 17 at 50% must drop at least one attempt"
        );
    }

    #[test]
    fn duplicate_carries_the_original_sequence_number() {
        let (f, m) = chaos_fabric(FaultSpec::quiet(2).with_dups(1.0));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.try_send(
            db0,
            j0,
            Msg {
                bytes: 9,
                tuples: 3,
            },
        )
        .unwrap();
        let a = f.recv_timeout(j0, Duration::from_secs(1)).unwrap();
        let b = f.recv_timeout(j0, Duration::from_secs(1)).unwrap();
        assert_eq!(a.seq, b.seq, "retransmission must reuse the seq");
        assert!(a.seq > 0, "chaos-stamped deliveries are 1-based");
        assert_eq!(a.msg, b.msg);
        assert_eq!(m.get("net.chaos.duplicated"), 1);
        assert_eq!(m.get("net.cross.msgs"), 2, "both copies are metered");
    }

    #[test]
    fn deliveries_are_unstamped_without_a_plan() {
        let f = fabric();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        f.send(
            db0,
            j0,
            Msg {
                bytes: 1,
                tuples: 0,
            },
        )
        .unwrap();
        f.try_send(
            db0,
            j0,
            Msg {
                bytes: 1,
                tuples: 0,
            },
        )
        .unwrap();
        for _ in 0..2 {
            assert_eq!(f.recv_timeout(j0, Duration::from_secs(1)).unwrap().seq, 0);
        }
    }

    /// A stream-shaped test message: data records opt into reordering,
    /// the end-of-stream marker is a barrier.
    #[derive(Debug, Clone, PartialEq)]
    enum StreamMsg {
        Data(usize),
        Eos,
    }

    impl Wire for StreamMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
        fn wire_stream_label(&self) -> Option<&'static str> {
            Some("hdfs_shuffle")
        }
        fn wire_is_barrier(&self) -> bool {
            matches!(self, StreamMsg::Eos)
        }
        fn wire_reorderable(&self) -> bool {
            matches!(self, StreamMsg::Data(_))
        }
    }

    #[test]
    fn reordering_swaps_data_but_never_crosses_the_barrier() {
        let metrics = Metrics::new();
        let f: Fabric<StreamMsg> = Fabric::with_options(
            1,
            1,
            metrics.clone(),
            None,
            Some(FaultSpec::quiet(3).with_reorders(1.0)),
            RetryPolicy::default(),
        );
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        for i in 0..5 {
            f.try_send(db0, j0, StreamMsg::Data(i)).unwrap();
        }
        f.try_send(db0, j0, StreamMsg::Eos).unwrap();
        let mut order = Vec::new();
        let mut eos_at = None;
        for pos in 0..6 {
            match f.recv_timeout(j0, Duration::from_secs(1)).unwrap().msg {
                StreamMsg::Data(i) => order.push(i),
                StreamMsg::Eos => eos_at = Some(pos),
            }
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "no delivery may be lost");
        assert_eq!(eos_at, Some(5), "the barrier must arrive last");
        assert_ne!(order, vec![0, 1, 2, 3, 4], "rate 1.0 must actually swap");
        assert!(metrics.get("net.chaos.reordered") > 0);
    }

    #[test]
    fn chaos_counters_obey_the_conservation_law() {
        let root_metrics = Metrics::new();
        let f: Fabric<Msg> = Fabric::with_options(
            1,
            1,
            root_metrics.clone(),
            None,
            Some(FaultSpec::quiet(8).with_dups(1.0)),
            RetryPolicy::default(),
        );
        let a_metrics = Metrics::new();
        let b_metrics = Metrics::new();
        let a = f.namespace(1, a_metrics.clone()).unwrap();
        let b = f.namespace(2, b_metrics.clone()).unwrap();
        let db0 = Endpoint::Db(DbWorkerId(0));
        let j0 = Endpoint::Jen(JenWorkerId(0));
        a.try_send(
            db0,
            j0,
            Msg {
                bytes: 10,
                tuples: 1,
            },
        )
        .unwrap();
        b.try_send(
            db0,
            j0,
            Msg {
                bytes: 20,
                tuples: 2,
            },
        )
        .unwrap();
        b.try_send(
            db0,
            j0,
            Msg {
                bytes: 30,
                tuples: 3,
            },
        )
        .unwrap();
        for (name, root) in [("net.cross.bytes", 120), ("net.chaos.duplicated", 3)] {
            assert_eq!(
                root_metrics.get(name),
                root,
                "{name} root total (duplicates included)"
            );
            assert_eq!(
                a_metrics.get(name) + b_metrics.get(name),
                root,
                "{name}: root == sum of namespaces"
            );
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let f = fabric();
        let j0 = Endpoint::Jen(JenWorkerId(0));
        let db0 = Endpoint::Db(DbWorkerId(0));
        let f2 = f.clone();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                f2.send(
                    db0,
                    j0,
                    Msg {
                        bytes: i,
                        tuples: 1,
                    },
                )
                .unwrap();
            }
        });
        let rx = f.receiver(j0).unwrap();
        let mut got = 0;
        while got < 100 {
            rx.recv_timeout(Duration::from_secs(1)).unwrap();
            got += 1;
        }
        t.join().unwrap();
        assert_eq!(f.metrics().get("net.cross.tuples"), 100);
    }
}
