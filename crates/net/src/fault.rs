//! Seeded, deterministic fault injection for the fabric and driver.
//!
//! A [`FaultPlan`] is built from a [`FaultSpec`] — a `u64` seed plus
//! per-fault rates — and decides, for every delivery, whether to drop,
//! delay, duplicate, or reorder it, and (via the driver) whether to kill
//! or slow a worker mid-phase. Decisions are **schedule-independent**:
//! each one is a pure hash of `(seed, namespace, sender, receiver, stream,
//! per-edge sequence number, attempt)`, never of wall-clock time or a
//! shared RNG stream, so a run with the same seed injects exactly the
//! same faults no matter how the OS schedules the worker threads. That is
//! what makes a failing chaos seed replayable from the printed seed
//! alone.
//!
//! The seed feeds the in-workspace `rand` shim once, at plan
//! construction, to derive independent per-fault salts; after that every
//! decision is a stateless splitmix chain, so concurrent senders never
//! contend on (or perturb) an RNG stream.

use crate::Endpoint;
use hybrid_common::hash::{hash_bytes, splitmix64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Bounded retry-with-backoff for fabric sends. An injected drop fails
/// one *attempt*; the mailbox retries the same logical message up to
/// `attempts` times total, sleeping an exponentially growing backoff
/// between tries, and surfaces the typed
/// [`hybrid_common::error::HybridError::FaultInjected`] only when the
/// budget is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts per logical message (≥ 1).
    pub attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Sleep before retry number `retry` (1-based): `base · 2^(retry-1)`,
    /// capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Which cluster a worker-targeted fault applies to. Matches the driver's
/// `TaskSet` labels ("db" / "jen").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    Db,
    Jen,
}

impl FaultTarget {
    pub fn label(self) -> &'static str {
        match self {
            FaultTarget::Db => "db",
            FaultTarget::Jen => "jen",
        }
    }

    /// The endpoint name of `worker` in this cluster, matching
    /// [`Endpoint`]'s `Display` form.
    pub fn endpoint_name(self, worker: usize) -> String {
        match self {
            FaultTarget::Db => format!("db-worker-{worker}"),
            FaultTarget::Jen => format!("jen-worker-{worker}"),
        }
    }
}

/// Kill one worker immediately before it would execute its `step`-th step
/// (0-based, counted per worker). A kill past the worker's last step
/// never fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    pub target: FaultTarget,
    pub worker: usize,
    pub step: usize,
}

/// Slow one worker into a straggler: it sleeps `delay` before every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Straggler {
    pub target: FaultTarget,
    pub worker: usize,
    pub delay: Duration,
}

/// The requested fault mix. Rates are per-delivery probabilities in
/// `[0, 1]`; `drop_rate` is per *attempt* (retries re-roll with a fresh
/// attempt index, so a message survives unless every attempt drops).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub seed: u64,
    pub drop_rate: f64,
    pub dup_rate: f64,
    pub delay_rate: f64,
    pub reorder_rate: f64,
    /// Cap on one injected delivery delay.
    pub max_delay: Duration,
    pub kill: Option<WorkerKill>,
    pub straggler: Option<Straggler>,
}

impl FaultSpec {
    /// A plan that injects nothing but still stamps sequence numbers —
    /// the base the builder methods start from.
    pub fn quiet(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            reorder_rate: 0.0,
            max_delay: Duration::from_millis(1),
            kill: None,
            straggler: None,
        }
    }

    pub fn with_drops(mut self, rate: f64) -> FaultSpec {
        self.drop_rate = rate;
        self
    }

    pub fn with_dups(mut self, rate: f64) -> FaultSpec {
        self.dup_rate = rate;
        self
    }

    pub fn with_delays(mut self, rate: f64, max: Duration) -> FaultSpec {
        self.delay_rate = rate;
        self.max_delay = max;
        self
    }

    pub fn with_reorders(mut self, rate: f64) -> FaultSpec {
        self.reorder_rate = rate;
        self
    }

    pub fn with_kill(mut self, target: FaultTarget, worker: usize, step: usize) -> FaultSpec {
        self.kill = Some(WorkerKill {
            target,
            worker,
            step,
        });
        self
    }

    pub fn with_straggler(
        mut self,
        target: FaultTarget,
        worker: usize,
        delay: Duration,
    ) -> FaultSpec {
        self.straggler = Some(Straggler {
            target,
            worker,
            delay,
        });
        self
    }

    /// A seed-derived fault mix at intensity `rate` — what the bench
    /// `--chaos-seed`/`--fault-rate` flags and the soak suite use. The
    /// seed picks one of four mix classes so a seed sweep exercises
    /// drops, duplication + reordering, delays, and the combined mix.
    pub fn from_seed(seed: u64, rate: f64) -> FaultSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let class = rng.gen_range(0u32..4);
        let spec = FaultSpec::quiet(seed);
        match class {
            0 => spec.with_drops(rate),
            1 => spec.with_dups(rate).with_reorders(rate),
            2 => spec.with_delays(rate, Duration::from_millis(1)),
            _ => spec
                .with_drops(rate / 2.0)
                .with_dups(rate / 2.0)
                .with_reorders(rate / 2.0)
                .with_delays(rate / 2.0, Duration::from_millis(1)),
        }
    }

    /// All rates must be probabilities.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("delay_rate", self.delay_rate),
            ("reorder_rate", self.reorder_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("fault {name} {rate} is not a probability"));
            }
        }
        Ok(())
    }
}

/// Salt indices into [`FaultPlan::salts`] — one independent decision
/// stream per fault kind.
const SALT_DROP: usize = 0;
const SALT_DUP: usize = 1;
const SALT_DELAY: usize = 2;
const SALT_REORDER: usize = 3;

/// A compiled [`FaultSpec`]: the spec plus per-fault salts drawn once
/// from the seeded `rand` shim. All decision methods are pure functions
/// of their arguments.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    salts: [u64; 4],
}

/// One splitmix step folding `v` into the running hash `h`.
fn chain(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Dense, collision-free key for an endpoint.
fn endpoint_key(e: Endpoint) -> u64 {
    match e {
        Endpoint::Db(w) => (1 << 32) | w.index() as u64,
        Endpoint::Jen(w) => (2 << 32) | w.index() as u64,
        Endpoint::JenCoordinator => 3 << 32,
    }
}

fn label_key(label: Option<&str>) -> u64 {
    match label {
        Some(l) => hash_bytes(l.as_bytes(), 0x5eed),
        None => 0,
    }
}

/// Map a hash to a uniform chance in `[0, 1)` (top 53 bits).
fn chance(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    pub fn new(spec: FaultSpec) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut salts = [0u64; 4];
        for s in &mut salts {
            *s = rng.next_u64();
        }
        FaultPlan { spec, salts }
    }

    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The decision hash for one (fault kind, delivery) pair.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        salt: usize,
        ns: u64,
        from: Endpoint,
        to: Endpoint,
        label: Option<&str>,
        seq: u64,
        attempt: u64,
    ) -> u64 {
        let mut h = self.salts[salt];
        for v in [
            ns,
            endpoint_key(from),
            endpoint_key(to),
            label_key(label),
            seq,
            attempt,
        ] {
            h = chain(h, v);
        }
        h
    }

    /// Drop this send attempt? Re-rolls per `attempt` so retries can
    /// succeed.
    pub fn should_drop(
        &self,
        ns: u64,
        from: Endpoint,
        to: Endpoint,
        label: Option<&str>,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.spec.drop_rate > 0.0
            && chance(self.decide(SALT_DROP, ns, from, to, label, seq, attempt as u64))
                < self.spec.drop_rate
    }

    /// Retransmit this delivery (same sequence number) after it lands?
    pub fn should_duplicate(
        &self,
        ns: u64,
        from: Endpoint,
        to: Endpoint,
        label: Option<&str>,
        seq: u64,
    ) -> bool {
        self.spec.dup_rate > 0.0
            && chance(self.decide(SALT_DUP, ns, from, to, label, seq, 0)) < self.spec.dup_rate
    }

    /// Hold this delivery one slot so it lands after the edge's next
    /// message?
    pub fn should_reorder(
        &self,
        ns: u64,
        from: Endpoint,
        to: Endpoint,
        label: Option<&str>,
        seq: u64,
    ) -> bool {
        self.spec.reorder_rate > 0.0
            && chance(self.decide(SALT_REORDER, ns, from, to, label, seq, 0))
                < self.spec.reorder_rate
    }

    /// Deterministic delivery delay, if any: 1..=`max_delay` derived from
    /// the same decision hash.
    pub fn delay(
        &self,
        ns: u64,
        from: Endpoint,
        to: Endpoint,
        label: Option<&str>,
        seq: u64,
    ) -> Option<Duration> {
        if self.spec.delay_rate <= 0.0 {
            return None;
        }
        let h = self.decide(SALT_DELAY, ns, from, to, label, seq, 0);
        if chance(h) >= self.spec.delay_rate {
            return None;
        }
        let cap = self.spec.max_delay.as_micros().max(1) as u64;
        Some(Duration::from_micros(1 + splitmix64(h) % cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::ids::{DbWorkerId, JenWorkerId};

    fn edge() -> (Endpoint, Endpoint) {
        (Endpoint::Db(DbWorkerId(0)), Endpoint::Jen(JenWorkerId(1)))
    }

    #[test]
    fn decisions_replay_exactly_by_seed() {
        let (from, to) = edge();
        let a = FaultPlan::new(FaultSpec::quiet(7).with_drops(0.3).with_dups(0.3));
        let b = FaultPlan::new(FaultSpec::quiet(7).with_drops(0.3).with_dups(0.3));
        for seq in 1..500 {
            assert_eq!(
                a.should_drop(1, from, to, Some("db_data"), seq, 0),
                b.should_drop(1, from, to, Some("db_data"), seq, 0)
            );
            assert_eq!(
                a.should_duplicate(1, from, to, Some("db_data"), seq),
                b.should_duplicate(1, from, to, Some("db_data"), seq)
            );
        }
    }

    #[test]
    fn decisions_vary_with_namespace_and_seed() {
        let (from, to) = edge();
        let plan = FaultPlan::new(FaultSpec::quiet(11).with_drops(0.5));
        let other = FaultPlan::new(FaultSpec::quiet(12).with_drops(0.5));
        let differs_by_ns = (1..200).any(|seq| {
            plan.should_drop(1, from, to, None, seq, 0)
                != plan.should_drop(2, from, to, None, seq, 0)
        });
        let differs_by_seed = (1..200).any(|seq| {
            plan.should_drop(1, from, to, None, seq, 0)
                != other.should_drop(1, from, to, None, seq, 0)
        });
        assert!(differs_by_ns, "namespace must re-roll the decisions");
        assert!(differs_by_seed, "seed must re-roll the decisions");
    }

    #[test]
    fn rates_zero_and_one_are_absolute() {
        let (from, to) = edge();
        let none = FaultPlan::new(FaultSpec::quiet(3));
        let all = FaultPlan::new(FaultSpec::quiet(3).with_drops(1.0).with_dups(1.0));
        for seq in 1..100 {
            assert!(!none.should_drop(0, from, to, None, seq, 0));
            assert!(!none.should_duplicate(0, from, to, None, seq));
            assert!(none.delay(0, from, to, None, seq).is_none());
            assert!(all.should_drop(0, from, to, None, seq, 0));
            assert!(all.should_duplicate(0, from, to, None, seq));
        }
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let (from, to) = edge();
        let plan = FaultPlan::new(FaultSpec::quiet(21).with_drops(0.2));
        let drops = (1..=10_000)
            .filter(|&seq| plan.should_drop(0, from, to, Some("hdfs_shuffle"), seq, 0))
            .count();
        assert!(
            (1_600..2_400).contains(&drops),
            "20% of 10k deliveries should drop, got {drops}"
        );
    }

    #[test]
    fn retries_reroll_the_drop_decision() {
        let (from, to) = edge();
        let plan = FaultPlan::new(FaultSpec::quiet(5).with_drops(0.5));
        let survives = (1..100).any(|seq| {
            plan.should_drop(0, from, to, None, seq, 0)
                && !plan.should_drop(0, from, to, None, seq, 1)
        });
        assert!(
            survives,
            "a retry must be able to succeed where attempt 0 dropped"
        );
    }

    #[test]
    fn delay_is_bounded_and_deterministic() {
        let (from, to) = edge();
        let max = Duration::from_micros(750);
        let plan = FaultPlan::new(FaultSpec::quiet(9).with_delays(1.0, max));
        for seq in 1..200 {
            let d = plan.delay(4, from, to, Some("db_data"), seq).unwrap();
            assert!(d >= Duration::from_micros(1) && d <= max, "delay {d:?}");
            assert_eq!(plan.delay(4, from, to, Some("db_data"), seq), Some(d));
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(350),
        };
        assert_eq!(p.backoff(1), Duration::from_micros(100));
        assert_eq!(p.backoff(2), Duration::from_micros(200));
        assert_eq!(p.backoff(3), Duration::from_micros(350), "capped");
        assert_eq!(p.backoff(40), Duration::from_micros(350), "no overflow");
    }

    #[test]
    fn from_seed_covers_every_mix_class() {
        let mut saw_drop = false;
        let mut saw_dup = false;
        let mut saw_delay = false;
        for seed in 0..64 {
            let spec = FaultSpec::from_seed(seed, 0.1);
            spec.validate().unwrap();
            saw_drop |= spec.drop_rate > 0.0;
            saw_dup |= spec.dup_rate > 0.0;
            saw_delay |= spec.delay_rate > 0.0;
        }
        assert!(saw_drop && saw_dup && saw_delay);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultSpec::quiet(0).with_drops(1.5).validate().is_err());
        assert!(FaultSpec::quiet(0).with_dups(-0.1).validate().is_err());
        assert!(FaultSpec::quiet(0).with_drops(1.0).validate().is_ok());
    }
}
