//! The wire protocol spoken by DB workers, JEN workers, and the JEN
//! coordinator.
//!
//! One message enum covers every transfer of Figures 1–6 of the paper:
//! tuple batches (tagged with which logical stream they belong to),
//! end-of-stream markers so receivers can count down their expected
//! senders, serialized Bloom filters, and small control payloads.

use crate::Wire;
use hybrid_common::batch::Batch;

/// Which logical data flow a message belongs to.
///
/// A JEN worker in the zigzag join simultaneously receives shuffled HDFS
/// tuples from its peers *and* (later) database tuples from DB workers;
/// stream tags let it demultiplex and know when each flow is complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamTag {
    /// Filtered HDFS tuples shuffled between JEN workers (repartition /
    /// zigzag step 3c).
    HdfsShuffle,
    /// Database tuples shipped to JEN workers (broadcast step 2,
    /// repartition step 2, zigzag step 6).
    DbData,
    /// Filtered HDFS tuples shipped to DB workers (DB-side join step 4).
    HdfsData,
    /// A database-side Bloom filter (`BF_DB`).
    DbBloom,
    /// An HDFS-side Bloom filter (`BF_H`, zigzag step 4).
    HdfsBloom,
    /// Per-worker partial aggregates sent to the designated worker.
    PartialAgg,
    /// The final aggregated result returned to the database.
    FinalResult,
    /// An exact distinct-join-key set (the semi-join baseline ships this
    /// instead of a Bloom filter).
    DbKeySet,
    /// Ordered (duplicate-preserving) join keys of `T'` (PERF join phase 1).
    PerfKeys,
    /// A positional match bitmap replied to the database (PERF join
    /// phase 2 — Li & Ross's alternative to shipping values back).
    PerfBitmap,
    /// Dimension-table tuples shipped DB → JEN during multiway step 0 /
    /// hypercube axis 0. EOS counts accumulate per tag for a whole run, so
    /// each cascade step needs its own tag — hence one tag per dimension
    /// slot rather than a reusable one.
    DimData0,
    /// Dimension tuples for cascade step 1 / hypercube axis 1.
    DimData1,
    /// Dimension tuples for cascade step 2 / hypercube axis 2.
    DimData2,
    /// The intermediate-result reshuffle between JEN workers ahead of
    /// cascade step 0 (step 1 and 2 use the sibling tags below).
    CascadeShuffle0,
    CascadeShuffle1,
    CascadeShuffle2,
}

impl StreamTag {
    /// The short label used in per-stream metric names and in
    /// [`hybrid_common::error::HybridError::Disconnected`] contexts.
    pub fn label(self) -> &'static str {
        match self {
            StreamTag::HdfsShuffle => "hdfs_shuffle",
            StreamTag::DbData => "db_data",
            StreamTag::HdfsData => "hdfs_data",
            StreamTag::DbBloom => "db_bloom",
            StreamTag::HdfsBloom => "hdfs_bloom",
            StreamTag::PartialAgg => "partial_agg",
            StreamTag::FinalResult => "final_result",
            StreamTag::DbKeySet => "db_keyset",
            StreamTag::PerfKeys => "perf_keys",
            StreamTag::PerfBitmap => "perf_bitmap",
            StreamTag::DimData0 => "dim_data_0",
            StreamTag::DimData1 => "dim_data_1",
            StreamTag::DimData2 => "dim_data_2",
            StreamTag::CascadeShuffle0 => "cascade_shuffle_0",
            StreamTag::CascadeShuffle1 => "cascade_shuffle_1",
            StreamTag::CascadeShuffle2 => "cascade_shuffle_2",
        }
    }

    /// The dimension-data tag of cascade step / hypercube axis `i`.
    pub fn dim_data(i: usize) -> StreamTag {
        match i {
            0 => StreamTag::DimData0,
            1 => StreamTag::DimData1,
            2 => StreamTag::DimData2,
            _ => panic!("dimension slot {i} beyond the 3-dim cap"),
        }
    }

    /// The intermediate-reshuffle tag of cascade step `i`.
    pub fn cascade_shuffle(i: usize) -> StreamTag {
        match i {
            0 => StreamTag::CascadeShuffle0,
            1 => StreamTag::CascadeShuffle1,
            2 => StreamTag::CascadeShuffle2,
            _ => panic!("cascade step {i} beyond the 3-dim cap"),
        }
    }

    /// Whether two adjacent data messages from the *same sender* on this
    /// stream may swap without changing the query result. Receivers of
    /// these streams fold arrivals into order-insensitive state — hash
    /// join builds, aggregate merges, exact key sets — so the chaos
    /// layer's reordering may target them. `PerfKeys`/`PerfBitmap` are
    /// positionally decoded (bitmap bit *i* answers key *i* in send
    /// order) and `FinalResult` chunks concatenate in order, so those
    /// must never swap; Bloom streams carry one message per edge, so
    /// reordering them is moot.
    pub fn reorder_safe(self) -> bool {
        matches!(
            self,
            StreamTag::HdfsShuffle
                | StreamTag::DbData
                | StreamTag::HdfsData
                | StreamTag::PartialAgg
                | StreamTag::DbKeySet
                | StreamTag::DimData0
                | StreamTag::DimData1
                | StreamTag::DimData2
                | StreamTag::CascadeShuffle0
                | StreamTag::CascadeShuffle1
                | StreamTag::CascadeShuffle2
        )
    }
}

/// A fabric message.
#[derive(Debug, Clone)]
pub enum Message {
    /// A batch of tuples on a tagged stream.
    Data { stream: StreamTag, batch: Batch },
    /// The sender has no more data on this stream.
    Eos { stream: StreamTag },
    /// A serialized Bloom filter (see `hybrid_bloom::BloomFilter::to_bytes`).
    Bloom { stream: StreamTag, bytes: Vec<u8> },
}

impl Message {
    pub fn stream(&self) -> StreamTag {
        match self {
            Message::Data { stream, .. }
            | Message::Eos { stream }
            | Message::Bloom { stream, .. } => *stream,
        }
    }
}

impl Wire for Message {
    fn wire_bytes(&self) -> usize {
        match self {
            // 8-byte frame header on every message.
            Message::Data { batch, .. } => 8 + batch.serialized_bytes(),
            Message::Eos { .. } => 8,
            Message::Bloom { bytes, .. } => 8 + bytes.len(),
        }
    }

    fn wire_tuples(&self) -> u64 {
        match self {
            Message::Data { batch, .. } => batch.num_rows() as u64,
            _ => 0,
        }
    }

    fn wire_stream_label(&self) -> Option<&'static str> {
        Some(self.stream().label())
    }

    fn wire_is_barrier(&self) -> bool {
        matches!(self, Message::Eos { .. })
    }

    fn wire_reorderable(&self) -> bool {
        matches!(self, Message::Data { stream, .. } if stream.reorder_safe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;

    fn batch(n: usize) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("k", DataType::I32)]),
            vec![Column::I32((0..n as i32).collect())],
        )
        .unwrap()
    }

    #[test]
    fn wire_accounting() {
        let m = Message::Data {
            stream: StreamTag::HdfsShuffle,
            batch: batch(10),
        };
        assert_eq!(m.wire_bytes(), 8 + 40);
        assert_eq!(m.wire_tuples(), 10);

        let e = Message::Eos {
            stream: StreamTag::DbData,
        };
        assert_eq!(e.wire_bytes(), 8);
        assert_eq!(e.wire_tuples(), 0);

        let b = Message::Bloom {
            stream: StreamTag::DbBloom,
            bytes: vec![0; 100],
        };
        assert_eq!(b.wire_bytes(), 108);
        assert_eq!(b.wire_tuples(), 0);
    }

    #[test]
    fn stream_tags_roundtrip() {
        for (m, tag) in [
            (
                Message::Data {
                    stream: StreamTag::HdfsShuffle,
                    batch: batch(1),
                },
                StreamTag::HdfsShuffle,
            ),
            (
                Message::Eos {
                    stream: StreamTag::FinalResult,
                },
                StreamTag::FinalResult,
            ),
            (
                Message::Bloom {
                    stream: StreamTag::HdfsBloom,
                    bytes: vec![],
                },
                StreamTag::HdfsBloom,
            ),
        ] {
            assert_eq!(m.stream(), tag);
        }
    }
}
