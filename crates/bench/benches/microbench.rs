//! Criterion microbenchmarks for the performance-critical substrates:
//! Bloom filters (standard vs register-blocked — the ablation called out in
//! DESIGN.md), the hash join, storage format encode/decode with projection
//! pushdown, the shuffle partitioner, and the metrics registry (sharded
//! lock-free vs the old mutexed map, across thread counts).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrid_bloom::{ApproxMembership, BlockedBloomFilter, BloomFilter, BloomParams};
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::metrics::{Metrics, MutexMetrics};
use hybrid_common::ops::{partition_by_key, HashJoiner};
use hybrid_common::schema::Schema;
use hybrid_storage::{decode, encode, FileFormat};

const N_KEYS: usize = 100_000;

fn bloom_benches(c: &mut Criterion) {
    let keys: Vec<i64> = (0..N_KEYS as i64).map(|i| i * 2654435761).collect();
    let params = BloomParams::new(N_KEYS * 8, 2).unwrap();

    let mut g = c.benchmark_group("bloom_insert");
    g.bench_function("standard", |b| {
        b.iter(|| {
            let mut f = BloomFilter::new(params);
            f.insert_all(black_box(&keys));
            f
        })
    });
    g.bench_function("blocked", |b| {
        b.iter(|| {
            let mut f = BlockedBloomFilter::new(params);
            f.insert_all(black_box(&keys));
            f
        })
    });
    g.finish();

    let mut standard = BloomFilter::new(params);
    standard.insert_all(&keys);
    let mut blocked = BlockedBloomFilter::new(params);
    blocked.insert_all(&keys);
    let probes: Vec<i64> = (0..N_KEYS as i64).map(|i| i * 7919 + 13).collect();

    let mut g = c.benchmark_group("bloom_probe");
    g.bench_function("standard", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| standard.may_contain(black_box(k)))
                .count()
        })
    });
    g.bench_function("blocked", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| blocked.may_contain(black_box(k)))
                .count()
        })
    });
    g.finish();

    c.bench_function("bloom_merge_30_workers", |b| {
        // the combine_filter UDF: merge 30 per-worker filters
        let locals: Vec<BloomFilter> = (0..30)
            .map(|w| {
                let mut f = BloomFilter::new(params);
                for k in keys.iter().skip(w).step_by(30) {
                    f.insert(*k);
                }
                f
            })
            .collect();
        b.iter(|| {
            let mut global = BloomFilter::new(params);
            for l in &locals {
                global.merge(black_box(l)).unwrap();
            }
            global
        })
    });
}

fn join_benches(c: &mut Criterion) {
    let build_schema = Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)]);
    let build = Batch::new(
        build_schema.clone(),
        vec![
            Column::I32((0..50_000).map(|i| i % 10_000).collect()),
            Column::I64((0..50_000).collect()),
        ],
    )
    .unwrap();
    let probe = Batch::new(
        Schema::from_pairs(&[("k", DataType::I32)]),
        vec![Column::I32((0..20_000).map(|i| (i * 7) % 20_000).collect())],
    )
    .unwrap();

    c.bench_function("hash_join_build_50k", |b| {
        b.iter(|| {
            let mut j = HashJoiner::new(build_schema.clone(), 0);
            j.build(black_box(build.clone())).unwrap();
            j
        })
    });
    let mut joiner = HashJoiner::new(build_schema, 0);
    joiner.build(build).unwrap();
    c.bench_function("hash_join_probe_20k", |b| {
        b.iter(|| joiner.probe(black_box(&probe), 0).unwrap())
    });
}

fn storage_benches(c: &mut Criterion) {
    let schema = Schema::from_pairs(&[
        ("joinKey", DataType::I32),
        ("corPred", DataType::I32),
        ("date", DataType::Date),
        ("url", DataType::Utf8),
    ]);
    let batch = Batch::new(
        schema.clone(),
        vec![
            Column::I32((0..20_000).collect()),
            Column::I32((0..20_000).map(|i| i % 1024).collect()),
            Column::Date((0..20_000).map(|i| i % 32).collect()),
            Column::Utf8(
                (0..20_000)
                    .map(|i| format!("url_{}/pages/item{i}", i % 64))
                    .collect(),
            ),
        ],
    )
    .unwrap();

    let mut g = c.benchmark_group("storage_encode");
    for fmt in [FileFormat::Text, FileFormat::Columnar] {
        g.bench_with_input(BenchmarkId::from_parameter(fmt), &fmt, |b, &fmt| {
            b.iter(|| encode(fmt, black_box(&batch)))
        });
    }
    g.finish();

    let text = encode(FileFormat::Text, &batch);
    let col = encode(FileFormat::Columnar, &batch);
    let mut g = c.benchmark_group("storage_decode_projected");
    g.bench_function("text_full_parse", |b| {
        b.iter(|| decode(FileFormat::Text, &schema, black_box(&text), Some(&[0, 2])).unwrap())
    });
    g.bench_function("columnar_pushdown", |b| {
        b.iter(|| {
            decode(
                FileFormat::Columnar,
                &schema,
                black_box(&col),
                Some(&[0, 2]),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn shuffle_benches(c: &mut Criterion) {
    let batch = Batch::new(
        Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)]),
        vec![
            Column::I32((0..50_000).collect()),
            Column::I64((0..50_000).collect()),
        ],
    )
    .unwrap();
    c.bench_function("partition_50k_rows_30_ways", |b| {
        b.iter(|| partition_by_key(black_box(&batch), 0, 30, agreed_shuffle_partition).unwrap())
    });
}

/// Sharded registry vs the old mutexed map under counter contention — the
/// workload every `Fabric::send` and block read generates. The sharded
/// registry must win at ≥8 threads (the acceptance bar for replacing the
/// mutex; the `metrics_registry_contended` ignored test asserts it).
fn metrics_benches(c: &mut Criterion) {
    const OPS_PER_THREAD: usize = 5_000;
    const COUNTERS: usize = 8;
    let names: Vec<String> = (0..COUNTERS).map(|i| format!("bench.ctr{i}")).collect();

    let mut g = c.benchmark_group("metrics_contended_add");
    for threads in [1usize, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                let m = Metrics::new();
                let ids: Vec<_> = names.iter().map(|n| m.register(n)).collect();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let m = m.clone();
                            let ids = &ids;
                            s.spawn(move || {
                                for i in 0..OPS_PER_THREAD {
                                    m.add_id(ids[(t + i) % COUNTERS], 1);
                                }
                            });
                        }
                    })
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                let m = MutexMetrics::new();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let m = m.clone();
                            let names = &names;
                            s.spawn(move || {
                                for i in 0..OPS_PER_THREAD {
                                    m.add(&names[(t + i) % COUNTERS], 1);
                                }
                            });
                        }
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bloom_benches,
    join_benches,
    storage_benches,
    shuffle_benches,
    metrics_benches
);
criterion_main!(benches);
