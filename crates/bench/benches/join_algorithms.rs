//! End-to-end Criterion bench: every join algorithm on the tiny workload.
//!
//! This measures the *simulator's* wall-clock, not the paper's cluster
//! times (those come from the cost-model harness binaries); its purpose is
//! regression tracking of the engines themselves, plus the Bloom-vs-
//! semijoin ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrid_core::{run, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn system() -> (HybridSystem, hybrid_datagen::Workload) {
    let workload = WorkloadSpec::tiny().generate().unwrap();
    let mut cfg = SystemConfig::paper_shape(4, 4);
    cfg.rows_per_block = 1_000;
    let mut sys = HybridSystem::new(cfg).unwrap();
    workload.load_into(&mut sys, FileFormat::Columnar).unwrap();
    (sys, workload)
}

fn algorithms(c: &mut Criterion) {
    let (mut sys, workload) = system();
    let query = workload.query();
    let mut g = c.benchmark_group("join_algorithms_tiny");
    g.sample_size(10);
    for alg in JoinAlgorithm::paper_variants()
        .into_iter()
        .chain([JoinAlgorithm::SemiJoin])
    {
        g.bench_with_input(BenchmarkId::from_parameter(alg), &alg, |b, &alg| {
            b.iter(|| run(&mut sys, &query, alg).unwrap())
        });
    }
    g.finish();
}

fn bloom_vs_semijoin_wire(c: &mut Criterion) {
    // Ablation: the Bloom filter vs the exact key set — measure the
    // simulator work; the wire-byte comparison is asserted in the
    // integration tests.
    let (mut sys, workload) = system();
    let query = workload.query();
    let mut g = c.benchmark_group("bloom_vs_semijoin");
    g.sample_size(10);
    g.bench_function("repartition_bloom", |b| {
        b.iter(|| run(&mut sys, &query, JoinAlgorithm::Repartition { bloom: true }).unwrap())
    });
    g.bench_function("semijoin_exact_keys", |b| {
        b.iter(|| run(&mut sys, &query, JoinAlgorithm::SemiJoin).unwrap())
    });
    g.finish();
}

criterion_group!(benches, algorithms, bloom_vs_semijoin_wire);
criterion_main!(benches);
