//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5).
//!
//! Each binary under `src/bin/` regenerates one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_tuples` | Table 1 — tuples shuffled / sent |
//! | `fig8_zigzag_vs_repartition` | Fig. 8(a,b) |
//! | `fig9_joinkey_selectivity` | Fig. 9(a,b) |
//! | `fig10_broadcast_vs_repartition` | Fig. 10(a,b) |
//! | `fig11_dbside_bloom` | Fig. 11(a,b) |
//! | `fig12_db_vs_hdfs_nobf` | Fig. 12(a,b) |
//! | `fig13_db_vs_hdfs_bf` | Fig. 13(a,b) |
//! | `fig14_parquet_vs_text` | Fig. 14(a,b) |
//! | `fig15_bloom_text` | Fig. 15(a,b) |
//! | `advisor_report` | §5.5 discussion — advisor choices across the grid |
//!
//! Times reported are **cost-model estimates at paper scale** driven by the
//! *measured* data volumes of real runs on the scaled workload (see
//! `hybrid-costmodel`); tuple counts are measured directly. Set
//! `HYBRID_BENCH_SCALE=tiny|small|default` to trade fidelity for runtime.

pub mod harness;
pub mod report;
pub mod soak;
pub mod svc;

pub use harness::{default_system_config, spec_from_env, ExpSystem, Measurement};
pub use soak::{run_soak, SoakOptions, SoakReport, TenantOutcome};
pub use svc::{serve_workload, EstError, ServeOptions, ServeReport};
