//! Closed-loop multi-tenant soak over real sockets.
//!
//! Where [`crate::svc`] drives an in-process [`QueryService`], this module
//! drives the full production front door: it binds a
//! [`hybrid_server::JoinServer`] on a loopback port, connects
//! `tenants × clients_per_tenant` real [`JoinClient`] connections, and
//! pushes a mixed stream of binary, star, advisor-routed, deadline-capped
//! and deliberately-disconnected queries through the framed-TCP protocol —
//! optionally under seeded chaos faults inside the engine.
//!
//! The run is *self-judging*: a sampled subset of responses is checked
//! against fresh-reference results computed from the raw tables, and after
//! the drain the report runs the leak audit — zero admissions in flight,
//! zero queued, zero bytes reserved in the memory governor, and the
//! conservation law `submitted = completed + rejected + quota + timed_out
//! + failed` both globally and per tenant. Any violation lands in
//! [`SoakReport::leaks`] and fails the `svc_soak` binary (and the CI
//! `front-door-soak` job) with a nonzero exit.

use hybrid_common::error::Result;
use hybrid_common::metrics::HistogramSnapshot;
use hybrid_core::reference::{run_reference, run_star_reference};
use hybrid_core::{HybridQuery, HybridSystem, JoinAlgorithm, MultiwayPlanner, SystemConfig};
use hybrid_datagen::WorkloadSpec;
use hybrid_server::{ClientError, JoinClient, JoinServer, Request, ServerConfig, TenantCred};
use hybrid_service::{QueryService, ServiceConfig, TenantQuota};
use hybrid_storage::FileFormat;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak sizing and mix. The service itself is configured by `service`.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Tenant count; tenant `i` is named `t<i>` with token `tok-<i>`.
    pub tenants: usize,
    /// Connections per tenant (each is one closed-loop client thread).
    pub clients_per_tenant: usize,
    /// Total queries across all tenants and clients.
    pub queries: usize,
    pub service: ServiceConfig,
    /// Per-tenant admission quota (identical for every tenant).
    pub quota: TenantQuota,
    /// Verify every `k`-th job against the fresh-system reference
    /// (1 = all, 0 = none).
    pub verify_every: usize,
    /// Every `k`-th job is a star query (0 = binary only).
    pub star_every: usize,
    /// Every `k`-th job sends its query and drops the connection without
    /// reading the result — the client-vanishes-mid-stream chaos path
    /// (0 = off).
    pub disconnect_every: usize,
    /// When nonzero, every `j % 7 == 3` job carries this queue-wait
    /// deadline in milliseconds (the protocol's deadline hook).
    pub deadline_ms: u64,
    /// Seeded engine fault rate (0 = no chaos).
    pub fault_rate: f64,
    pub chaos_seed: u64,
}

impl Default for SoakOptions {
    fn default() -> SoakOptions {
        SoakOptions {
            tenants: 4,
            clients_per_tenant: 2,
            queries: 400,
            service: ServiceConfig::default(),
            quota: TenantQuota::unlimited(),
            verify_every: 4,
            star_every: 5,
            disconnect_every: 97,
            deadline_ms: 0,
            fault_rate: 0.0,
            chaos_seed: 0,
        }
    }
}

/// What one tenant observed across the whole run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    pub name: String,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub quota_rejected: u64,
    pub timed_out: u64,
    pub failed: u64,
    /// Sampled responses that did not match the reference (must be 0).
    pub incorrect: u64,
    /// Client-side resubmissions after retryable typed errors.
    pub client_retries: u64,
    pub latency_us: HistogramSnapshot,
    pub queue_us: HistogramSnapshot,
}

/// The soak artifact.
#[derive(Debug, Clone)]
pub struct SoakReport {
    pub tenants: usize,
    pub clients_per_tenant: usize,
    pub queries: usize,
    pub threads: usize,
    pub policy: &'static str,
    pub tenant_fair: bool,
    pub wall: Duration,
    pub fault_rate: f64,
    pub chaos_seed: u64,
    /// Responses checked against the reference.
    pub verified: u64,
    /// Mismatches among those (the CI gate: must be 0).
    pub incorrect: u64,
    /// Deliberate mid-stream disconnects driven by the mix.
    pub disconnects: u64,
    /// Connections re-established after transport errors.
    pub reconnects: u64,
    /// Coordinator-level execution retries (`svc.retries`).
    pub svc_retries: u64,
    /// Mid-query replans (`svc.replans`), nonzero only with
    /// `replan_threshold` set.
    pub replans: u64,
    pub per_tenant: Vec<TenantOutcome>,
    /// Leak-audit violations; empty means the run is clean. Checked after
    /// the drain *and* server shutdown: admissions in flight, queued
    /// entries, reserved governor bytes, per-tenant residuals, and the
    /// global + per-tenant accounting conservation law.
    pub leaks: Vec<String>,
}

impl SoakReport {
    pub fn clean(&self) -> bool {
        self.incorrect == 0 && self.leaks.is_empty()
    }

    pub fn throughput_qps(&self) -> f64 {
        let done: u64 = self.per_tenant.iter().map(|t| t.completed).sum();
        done as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Hand-rolled JSON artifact (the workspace has no serde).
    pub fn to_json(&self) -> String {
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            )
        };
        let tenants: Vec<String> = self
            .per_tenant
            .iter()
            .map(|t| {
                format!(
                    "    {{\"tenant\":\"{}\",\"submitted\":{},\"completed\":{},\"rejected\":{},\
                     \"quota_rejected\":{},\"timed_out\":{},\"failed\":{},\"incorrect\":{},\
                     \"client_retries\":{},\"latency_us\":{},\"queue_us\":{}}}",
                    t.name,
                    t.submitted,
                    t.completed,
                    t.rejected,
                    t.quota_rejected,
                    t.timed_out,
                    t.failed,
                    t.incorrect,
                    t.client_retries,
                    hist(&t.latency_us),
                    hist(&t.queue_us),
                )
            })
            .collect();
        let leaks: Vec<String> = self
            .leaks
            .iter()
            .map(|l| format!("\"{}\"", l.replace('"', "'")))
            .collect();
        format!(
            "{{\n  \"tenants\": {},\n  \"clients_per_tenant\": {},\n  \"queries\": {},\n  \
             \"threads\": {},\n  \"policy\": \"{}\",\n  \"tenant_fair\": {},\n  \
             \"wall_s\": {:.4},\n  \"throughput_qps\": {:.2},\n  \"fault_rate\": {},\n  \
             \"chaos_seed\": {},\n  \"verified\": {},\n  \"incorrect\": {},\n  \
             \"disconnects\": {},\n  \"reconnects\": {},\n  \"svc_retries\": {},\n  \
             \"replans\": {},\n  \"clean\": {},\n  \"per_tenant\": [\n{}\n  ],\n  \
             \"leaks\": [{}]\n}}\n",
            self.tenants,
            self.clients_per_tenant,
            self.queries,
            self.threads,
            self.policy,
            self.tenant_fair,
            self.wall.as_secs_f64(),
            self.throughput_qps(),
            self.fault_rate,
            self.chaos_seed,
            self.verified,
            self.incorrect,
            self.disconnects,
            self.reconnects,
            self.svc_retries,
            self.replans,
            self.clean(),
            tenants.join(",\n"),
            leaks.join(","),
        )
    }

    pub fn print(&self) {
        println!(
            "\n== front-door soak: {} tenants x {} clients, {} queries, {} policy{}, {} thread(s) ==",
            self.tenants,
            self.clients_per_tenant,
            self.queries,
            self.policy,
            if self.tenant_fair { " (fair)" } else { " (unfair)" },
            self.threads
        );
        println!(
            "  wall {:.3}s  throughput {:.1} q/s  verified {}  incorrect {}  disconnects {}  reconnects {}",
            self.wall.as_secs_f64(),
            self.throughput_qps(),
            self.verified,
            self.incorrect,
            self.disconnects,
            self.reconnects,
        );
        if self.fault_rate > 0.0 {
            println!(
                "  chaos: rate {} seed {} -> {} coordinator retries, {} replans",
                self.fault_rate, self.chaos_seed, self.svc_retries, self.replans
            );
        }
        for t in &self.per_tenant {
            println!(
                "  {:<6} submitted {:>6}  completed {:>6}  quota {:>4}  timed_out {:>4}  failed {:>4}  \
                 p50 {:>7}us  p95 {:>8}us  p99 {:>8}us",
                t.name,
                t.submitted,
                t.completed,
                t.quota_rejected,
                t.timed_out,
                t.failed,
                t.latency_us.p50(),
                t.latency_us.p95(),
                t.latency_us.p99(),
            );
        }
        if self.leaks.is_empty() {
            println!("  leak audit: clean (0 slots, 0 grants, conservation holds)");
        } else {
            for l in &self.leaks {
                println!("  LEAK: {l}");
            }
        }
    }
}

/// One job in the mix.
#[derive(Clone)]
enum Job {
    Binary {
        qi: usize,
        algorithm: Option<JoinAlgorithm>,
    },
    Star {
        planner: MultiwayPlanner,
    },
}

/// Deterministic mix: every `star_every`-th job is a star query cycling
/// all three planners; binaries cycle the query variants, with every 5th
/// advisor-routed instead of forced repartition-bf.
fn job_at(j: usize, star_on: bool, star_every: usize, n_binaries: usize) -> Job {
    if star_on && star_every > 0 && j % star_every == 0 {
        let planner = match (j / star_every) % 3 {
            0 => MultiwayPlanner::Auto,
            1 => MultiwayPlanner::Cascade,
            _ => MultiwayPlanner::Hypercube,
        };
        Job::Star { planner }
    } else {
        let qi = j % n_binaries;
        let algorithm = if j % 5 == 4 {
            None
        } else {
            Some(JoinAlgorithm::Repartition { bloom: true })
        };
        Job::Binary { qi, algorithm }
    }
}

/// Run the soak: generate `spec`, install chaos on `syscfg`, serve over a
/// loopback socket, drain, audit.
pub fn run_soak(
    spec: WorkloadSpec,
    mut syscfg: SystemConfig,
    opts: &SoakOptions,
) -> Result<SoakReport> {
    if opts.fault_rate > 0.0 {
        syscfg.fault_spec = Some(hybrid_net::FaultSpec::from_seed(
            opts.chaos_seed,
            opts.fault_rate,
        ));
    }
    let workload = spec.generate()?;
    let threads = syscfg.threads;
    let mut system = HybridSystem::new(syscfg)?;
    workload.load_into(&mut system, FileFormat::Columnar)?;

    // Binary variants share the database side (Bloom-cache hits) but have
    // distinct fingerprints; references come from the raw batches, immune
    // to chaos.
    let binaries: Vec<HybridQuery> = (0..4).map(|i| crate::svc::variant(&workload, i)).collect();
    let references: Vec<_> = binaries
        .iter()
        .map(|q| run_reference(&workload.t, &workload.l, q))
        .collect::<Result<Vec<_>>>()?;
    let star_enabled = opts.star_every > 0 && !workload.dims.is_empty();
    let (star_query, star_reference) = if star_enabled {
        let sq = workload.star_query();
        let sr = run_star_reference(&workload.l, &workload.dims, &sq)?;
        (Some(sq), Some(sr))
    } else {
        (None, None)
    };

    let svc = Arc::new(QueryService::new(system, opts.service.clone()));
    let tenants: Vec<TenantCred> = (0..opts.tenants.max(1))
        .map(|i| TenantCred::new(&format!("t{i}"), &format!("tok-{i}"), opts.quota))
        .collect();
    let mut server = JoinServer::bind(
        Arc::clone(&svc),
        "127.0.0.1:0",
        &tenants,
        ServerConfig::default(),
    )
    .map_err(|e| hybrid_common::error::HybridError::Net(format!("bind: {e}")))?;
    let addr = server.local_addr().to_string();

    let next = Arc::new(AtomicUsize::new(0));
    let incorrect: Arc<Vec<AtomicU64>> = Arc::new(
        (0..opts.tenants.max(1))
            .map(|_| AtomicU64::new(0))
            .collect(),
    );
    let client_retries: Arc<Vec<AtomicU64>> = Arc::new(
        (0..opts.tenants.max(1))
            .map(|_| AtomicU64::new(0))
            .collect(),
    );
    let verified = Arc::new(AtomicU64::new(0));
    let disconnects = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let handles: Vec<_> = (0..opts.tenants.max(1))
        .flat_map(|t| (0..opts.clients_per_tenant.max(1)).map(move |c| (t, c)))
        .map(|(t, _c)| {
            let addr = addr.clone();
            let next = Arc::clone(&next);
            let incorrect = Arc::clone(&incorrect);
            let client_retries = Arc::clone(&client_retries);
            let verified = Arc::clone(&verified);
            let disconnects = Arc::clone(&disconnects);
            let reconnects = Arc::clone(&reconnects);
            let binaries = binaries.clone();
            let references = references.clone();
            let star_query = star_query.clone();
            let star_reference = star_reference.clone();
            let opts = opts.clone();
            std::thread::spawn(move || {
                let name = format!("t{t}");
                let token = format!("tok-{t}");
                let mut client = match JoinClient::connect(&addr, &name, &token) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                loop {
                    let job = next.fetch_add(1, Ordering::Relaxed);
                    if job >= opts.queries {
                        return;
                    }

                    // the client-vanishes chaos path: fire the query on a
                    // throwaway connection and drop it without reading
                    if opts.disconnect_every > 0
                        && job % opts.disconnect_every == opts.disconnect_every - 1
                    {
                        if fire_and_disconnect(
                            &addr,
                            &name,
                            &token,
                            &binaries[job % binaries.len()],
                        ) {
                            disconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }

                    let deadline = (opts.deadline_ms > 0 && job % 7 == 3)
                        .then(|| Duration::from_millis(opts.deadline_ms));
                    // resubmit on retryable typed errors (quota, timeout,
                    // chaos-exhausted execution), reconnect on transport
                    // errors
                    let mut attempts = 0u32;
                    let reply = loop {
                        let res = match job_at(
                            job,
                            star_query.is_some(),
                            opts.star_every,
                            binaries.len(),
                        ) {
                            Job::Binary { qi, algorithm } => {
                                client.query(binaries[qi].clone(), algorithm, deadline)
                            }
                            Job::Star { planner } => client.star(
                                star_query.clone().expect("star job without star query"),
                                planner,
                                deadline,
                            ),
                        };
                        match res {
                            Ok(r) => break Some(r),
                            Err(e) if e.retryable() && attempts < 5 => {
                                attempts += 1;
                                client_retries[t].fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(2 * attempts as u64));
                            }
                            Err(ClientError::Wire(_)) | Err(ClientError::Codec(_)) => {
                                // transport broke: reconnect once and move on
                                match JoinClient::connect(&addr, &name, &token) {
                                    Ok(c) => {
                                        client = c;
                                        reconnects.fetch_add(1, Ordering::Relaxed);
                                        break None;
                                    }
                                    Err(_) => return,
                                }
                            }
                            Err(_) => break None,
                        }
                    };

                    if let Some(reply) = reply {
                        if opts.verify_every > 0 && job % opts.verify_every == 0 {
                            verified.fetch_add(1, Ordering::Relaxed);
                            let expected = match job_at(
                                job,
                                star_query.is_some(),
                                opts.star_every,
                                binaries.len(),
                            ) {
                                Job::Binary { qi, .. } => Some(&references[qi]),
                                Job::Star { .. } => star_reference.as_ref(),
                            };
                            if let Some(expected) = expected {
                                if reply.rows != *expected {
                                    incorrect[t].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("soak client thread panicked");
    }
    let wall = start.elapsed();
    // Drain settles asynchronously only for deliberately-disconnected
    // queries whose executions may still be in flight; wait for the
    // admission ledger to empty (bounded) before auditing.
    let settle_deadline = Instant::now() + Duration::from_secs(60);
    while svc.load() != (0, 0) && Instant::now() < settle_deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();

    // ---- leak audit -----------------------------------------------------
    let mut leaks = Vec::new();
    let (in_flight, queued) = svc.load();
    if in_flight != 0 || queued != 0 {
        leaks.push(format!(
            "global admission residue: {in_flight} in flight, {queued} queued"
        ));
    }
    let reserved = svc.system().mem_pool.reserved();
    if reserved != 0 {
        leaks.push(format!(
            "memory governor residue: {reserved} bytes reserved"
        ));
    }
    let m = svc.metrics();
    let conserve = |name: &str, sub: u64, parts: [u64; 5]| -> Option<String> {
        let total: u64 = parts.iter().sum();
        (sub != total).then(|| {
            format!(
                "{name} accounting leak: submitted {sub} != completed {} + rejected {} + \
                 quota {} + timed_out {} + failed {}",
                parts[0], parts[1], parts[2], parts[3], parts[4]
            )
        })
    };
    if let Some(l) = conserve(
        "global",
        m.get("svc.submitted"),
        [
            m.get("svc.completed"),
            m.get("svc.rejected"),
            m.get("svc.quota_rejected"),
            m.get("svc.timed_out"),
            m.get("svc.failed"),
        ],
    ) {
        leaks.push(l);
    }

    let latency_hists: BTreeMap<String, HistogramSnapshot> = svc.tenant_latency_histograms();
    let queue_hists: BTreeMap<String, HistogramSnapshot> = svc.tenant_queue_histograms();
    let empty = HistogramSnapshot::default();
    let mut per_tenant = Vec::new();
    for (i, cred) in tenants.iter().enumerate() {
        let name = &cred.name;
        let id = svc.register_tenant(name, opts.quota); // idempotent lookup
        let load = svc.tenant_load(id);
        if load.in_flight != 0 || load.queued != 0 {
            leaks.push(format!(
                "tenant {name} residue: {} in flight, {} queued",
                load.in_flight, load.queued
            ));
        }
        let get = |c: &str| m.get(&format!("svc.tenant.{name}.{c}"));
        let outcome = TenantOutcome {
            name: name.clone(),
            submitted: get("submitted"),
            completed: get("completed"),
            rejected: get("rejected"),
            quota_rejected: get("quota_rejected"),
            timed_out: get("timed_out"),
            failed: get("failed"),
            incorrect: incorrect[i].load(Ordering::Relaxed),
            client_retries: client_retries[i].load(Ordering::Relaxed),
            latency_us: latency_hists
                .get(name)
                .cloned()
                .unwrap_or_else(|| empty.clone()),
            queue_us: queue_hists
                .get(name)
                .cloned()
                .unwrap_or_else(|| empty.clone()),
        };
        if let Some(l) = conserve(
            &format!("tenant {name}"),
            outcome.submitted,
            [
                outcome.completed,
                outcome.rejected,
                outcome.quota_rejected,
                outcome.timed_out,
                outcome.failed,
            ],
        ) {
            leaks.push(l);
        }
        per_tenant.push(outcome);
    }

    Ok(SoakReport {
        tenants: opts.tenants.max(1),
        clients_per_tenant: opts.clients_per_tenant.max(1),
        queries: opts.queries,
        threads,
        policy: opts.service.policy.name(),
        tenant_fair: opts.service.tenant_fair,
        wall,
        fault_rate: opts.fault_rate,
        chaos_seed: opts.chaos_seed,
        verified: verified.load(Ordering::Relaxed),
        incorrect: per_tenant.iter().map(|t| t.incorrect).sum(),
        disconnects: disconnects.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
        svc_retries: m.get("svc.retries"),
        replans: m.get("svc.replans"),
        per_tenant,
        leaks,
    })
}

/// Authenticate, fire one query, and vanish without reading the stream —
/// the server must release the slot, grant, and session on its own.
/// Returns true when the two frames actually left the socket.
fn fire_and_disconnect(addr: &str, tenant: &str, token: &str, query: &HybridQuery) -> bool {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return false;
    };
    let (ty, payload) = Request::Hello {
        tenant: tenant.to_string(),
        token: token.to_string(),
    }
    .encode();
    if hybrid_server::wire::write_frame(&mut s, ty, &payload).is_err() {
        return false;
    }
    let (ty, payload) = Request::Query(hybrid_server::QueryFrame {
        id: 0,
        deadline_ms: 0,
        body: hybrid_server::QueryBody::Binary {
            query: query.clone(),
            algorithm: None,
        },
    })
    .encode();
    hybrid_server::wire::write_frame(&mut s, ty, &payload).is_ok()
    // drop(s): the server finds the dead socket mid-stream
}
