//! Shared experiment machinery.

use hybrid_common::error::Result;
use hybrid_common::trace::Timeline;
use hybrid_core::{
    run, run_adaptive, sample_stats, HybridSystem, JoinAlgorithm, JoinSummary, SystemConfig,
};
use hybrid_costmodel::{CostBreakdown, CostModel, OverlapProfile, ScaleFactors};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_storage::FileFormat;

/// The paper's topology: 30 DB2 workers and 30 JEN workers. Experiments run
/// with the *same worker counts* so fan-out-dependent volumes (broadcast
/// copies, the (n−1)/n shuffle fraction) extrapolate 1:1.
pub fn default_system_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_shape(30, 30);
    cfg.rows_per_block = 5_000;
    cfg
}

/// Base workload spec, selectable via `HYBRID_BENCH_SCALE`:
/// `default` = 160 k × 1.5 M rows (1/10 000 of the paper), `small` = 1/4 of
/// that, `tiny` = the test-sized workload.
pub fn spec_from_env() -> WorkloadSpec {
    match std::env::var("HYBRID_BENCH_SCALE").as_deref() {
        Ok("tiny") => WorkloadSpec::tiny(),
        Ok("small") => WorkloadSpec {
            t_rows: 40_000,
            l_rows: 375_000,
            num_keys: 400,
            ..WorkloadSpec::scaled_default()
        },
        _ => WorkloadSpec::scaled_default(),
    }
}

/// One measured + modeled algorithm run.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub algorithm: JoinAlgorithm,
    pub summary: JoinSummary,
    /// Assumed-overlap estimate (concurrent phases perfectly overlapped).
    pub cost: CostBreakdown,
    /// Measured-overlap estimate: same volumes, but concurrent phases
    /// combine with the overlap fractions actually observed in the run's
    /// [`Timeline`]. `cost_measured.total_s >= cost.total_s` always.
    pub cost_measured: CostBreakdown,
    /// Phase spans of the run plus per-link `net.*` byte totals —
    /// serialize with [`Timeline::to_json`] and render with the
    /// `timeline_report` binary.
    pub timeline: Timeline,
    pub result_rows: usize,
    /// Wall-clock time of the join itself (excludes workload generation
    /// and loading) — the number the `--threads` comparison is about.
    pub elapsed: std::time::Duration,
    /// Mid-query replans taken (`advisor.replans`). Always 0 unless the
    /// system was built with `replan_threshold` set.
    pub replans: u64,
}

/// A loaded system for one experiment configuration.
pub struct ExpSystem {
    pub system: HybridSystem,
    pub workload: Workload,
    pub format: FileFormat,
    model: CostModel,
}

impl ExpSystem {
    /// Generate the workload for `spec` and load it in `format`.
    pub fn build(spec: WorkloadSpec, format: FileFormat) -> Result<ExpSystem> {
        ExpSystem::build_with(spec, format, default_system_config())
    }

    /// Like [`ExpSystem::build`], with an explicit system configuration
    /// (worker threads, spill budget, …).
    pub fn build_with(
        spec: WorkloadSpec,
        format: FileFormat,
        config: SystemConfig,
    ) -> Result<ExpSystem> {
        let workload = spec.generate()?;
        let mut system = HybridSystem::new(config)?;
        workload.load_into(&mut system, format)?;
        Ok(ExpSystem {
            system,
            workload,
            format,
            model: CostModel::paper(),
        })
    }

    /// Scale factors mapping this workload to the paper's dataset.
    pub fn scale(&self) -> ScaleFactors {
        let s = &self.workload.spec;
        ScaleFactors::to_paper(s.t_rows, s.l_rows, s.num_keys)
    }

    /// Run one algorithm, returning measured volumes + modeled time.
    ///
    /// With `replan_threshold` set on the system config the run goes
    /// through the adaptive controller: a sampling pass derives the
    /// estimates that arm the observation point, and the run may switch
    /// strategies mid-query (counted in [`Measurement::replans`]). The
    /// sampling pass happens *before* the timed region so `elapsed`
    /// stays comparable to a plain run.
    pub fn run(&mut self, algorithm: JoinAlgorithm) -> Result<Measurement> {
        let query = self.workload.query();
        let adaptive = self
            .system
            .config
            .replan_threshold
            .map(|_| -> Result<_> {
                let stats = sample_stats(&self.system, &query, 8)?;
                Ok(stats.to_estimates(
                    &query,
                    self.system.config.jen_workers,
                    self.system.mem_budget_per_worker(),
                ))
            })
            .transpose()?;
        let started = std::time::Instant::now();
        let out = match &adaptive {
            Some(est) => run_adaptive(&mut self.system, &query, algorithm, est)?,
            None => run(&mut self.system, &query, algorithm)?,
        };
        let elapsed = started.elapsed();
        let replans = self.system.metrics.get("advisor.replans");
        let scale = self.scale();
        let cost = self.model.estimate(algorithm, &out.summary, &scale);
        let profile = OverlapProfile::from_timeline(&out.timeline);
        let cost_measured = self
            .model
            .estimate_measured(algorithm, &out.summary, &scale, &profile);
        Ok(Measurement {
            algorithm,
            summary: out.summary,
            cost,
            cost_measured,
            timeline: out.timeline,
            result_rows: out.result.num_rows(),
            elapsed,
            replans,
        })
    }

    /// Run several algorithms on the same loaded data.
    pub fn run_all(&mut self, algorithms: &[JoinAlgorithm]) -> Result<Vec<Measurement>> {
        algorithms.iter().map(|&a| self.run(a)).collect()
    }
}

/// Build, run, and return measurements for one selectivity configuration.
pub fn run_config(
    base: WorkloadSpec,
    sigma_t: f64,
    sigma_l: f64,
    st: f64,
    sl: f64,
    format: FileFormat,
    algorithms: &[JoinAlgorithm],
) -> Result<Vec<Measurement>> {
    let spec = WorkloadSpec {
        sigma_t,
        sigma_l,
        st,
        sl,
        ..base
    };
    let mut exp = ExpSystem::build(spec, format)?;
    exp.run_all(algorithms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_runs_and_models() {
        let mut exp = ExpSystem::build(WorkloadSpec::tiny(), FileFormat::Columnar).unwrap();
        let ms = exp
            .run_all(&[
                JoinAlgorithm::Repartition { bloom: true },
                JoinAlgorithm::Zigzag,
            ])
            .unwrap();
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(m.cost.total_s > 0.0);
            assert!(m.result_rows > 0);
            // the run carried a timeline, and measured overlap can only
            // add time relative to the assumed-perfect-overlap estimate
            assert!(!m.timeline.spans.is_empty());
            assert!(m.cost_measured.total_s >= m.cost.total_s - 1e-9);
            // per-link totals rode along for timeline_report
            assert!(m.timeline.totals.keys().any(|k| k.starts_with("net.")));
            // and the JSON artifact round-trips
            let back = hybrid_common::trace::Timeline::from_json(&m.timeline.to_json()).unwrap();
            assert_eq!(back.spans.len(), m.timeline.spans.len());
        }
        // same query, same answer
        assert_eq!(ms[0].result_rows, ms[1].result_rows);
        // zigzag ships no more DB tuples than repartition(BF)
        assert!(ms[1].summary.db_tuples_sent <= ms[0].summary.db_tuples_sent);
    }

    #[test]
    fn env_scale_selection() {
        // no env → default spec
        std::env::remove_var("HYBRID_BENCH_SCALE");
        assert_eq!(spec_from_env().t_rows, 160_000);
    }
}
