//! Closed-loop workload driver for the concurrent query service.
//!
//! Shared by the `svc_bench` binary and `hwjoin --serve`: N client threads
//! pull jobs from a shared counter and submit them to one
//! [`QueryService`], so each client always has exactly one query in flight
//! (closed loop). The job mix cycles through a fixed pattern list built
//! from one workload:
//!
//! * eight HDFS-side predicate variants forced through
//!   `repartition-bf` — all share the database side, so after the first
//!   `BF_DB` build every later variant is a Bloom-cache hit;
//! * two advisor-routed submissions (`algorithm: None`) over the first two
//!   variants, exercising the estimate → advise path.
//!
//! Every pattern repeats `queries / 10` times, so later occurrences are
//! result-cache hits. Each response is verified against
//! `run_reference` on the raw tables; the report counts any mismatch.

use hybrid_common::error::Result;
use hybrid_common::expr::Expr;
use hybrid_common::metrics::HistogramSnapshot;
use hybrid_core::reference::run_reference;
use hybrid_core::{HybridQuery, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::tables::l_cols;
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_service::{QueryRequest, QueryService, ServiceConfig};
use hybrid_storage::FileFormat;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many distinct HDFS-side predicate variants the mix uses.
const VARIANTS: usize = 8;

/// Driver sizing; the service itself is configured by `service`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    pub clients: usize,
    /// Total queries across all clients.
    pub queries: usize,
    pub service: ServiceConfig,
    /// Check every result against `run_reference` (cheap at bench scale).
    pub verify: bool,
    /// Seeded fault-injection rate (0 = no chaos). Applied to the system
    /// config via [`ServeOptions::apply_chaos`] and echoed in the report.
    pub fault_rate: f64,
    /// Seed for the fault plan; only meaningful when `fault_rate > 0`.
    pub chaos_seed: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            clients: 8,
            queries: 100,
            service: ServiceConfig::default(),
            verify: true,
            fault_rate: 0.0,
            chaos_seed: 0,
        }
    }
}

impl ServeOptions {
    /// Install the seeded fault plan on `cfg` when a rate is set.
    pub fn apply_chaos(&self, cfg: &mut SystemConfig) {
        if self.fault_rate > 0.0 {
            cfg.fault_spec = Some(hybrid_net::FaultSpec::from_seed(
                self.chaos_seed,
                self.fault_rate,
            ));
        }
    }
}

/// What one closed-loop run observed.
#[derive(Debug, Clone)]
pub struct ServeReport {
    pub clients: usize,
    pub queries: usize,
    pub policy: &'static str,
    pub threads: usize,
    pub wall: Duration,
    pub completed: u64,
    pub rejected: u64,
    pub timed_out: u64,
    pub failed: u64,
    /// Coordinator-level query retries (`svc.retries`) — nonzero only
    /// under fault injection.
    pub retries: u64,
    /// The injected fault rate this run was driven under (0 = none).
    pub fault_rate: f64,
    /// Responses whose result differed from the reference (must be 0).
    pub incorrect: usize,
    /// Mid-query replans across all executions (`svc.replans`) — nonzero
    /// only when the system runs with `replan_threshold` set.
    pub replans: u64,
    /// Observation points whose estimate error crossed the threshold
    /// (`svc.replan_considered`); a consideration without a replan means
    /// no cheaper strategy cleared the hysteresis bar.
    pub replan_considered: u64,
    /// Accumulated ×1000 estimate-error gauges summed over adaptive
    /// executions; divide by the execution count for a mean ratio.
    pub est_error: EstError,
    pub latency_us: HistogramSnapshot,
    pub queue_us: HistogramSnapshot,
    pub exec_us: HistogramSnapshot,
    pub result_cache: CacheStats,
    pub bloom_cache: CacheStats,
}

/// Accumulated estimate-vs-actual error gauges (`svc.est_error_x1000.*`),
/// one per observed dimension. A ratio of 1000 = perfect estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct EstError {
    pub scan_x1000: u64,
    pub bloom_x1000: u64,
    pub shuffle_x1000: u64,
}

impl EstError {
    fn read(metrics: &hybrid_common::metrics::Metrics) -> EstError {
        EstError {
            scan_x1000: metrics.get("svc.est_error_x1000.scan"),
            bloom_x1000: metrics.get("svc.est_error_x1000.bloom"),
            shuffle_x1000: metrics.get("svc.est_error_x1000.shuffle"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Inserts dropped because the table was rewritten mid-execution.
    pub stale_inserts: u64,
}

impl CacheStats {
    fn read(metrics: &hybrid_common::metrics::Metrics, prefix: &str) -> CacheStats {
        CacheStats {
            hits: metrics.get(&format!("{prefix}.hits")),
            misses: metrics.get(&format!("{prefix}.misses")),
            evictions: metrics.get(&format!("{prefix}.evictions")),
            stale_inserts: metrics.get(&format!("{prefix}.stale_inserts")),
        }
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ServeReport {
    pub fn throughput_qps(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The run artifact as a JSON object (hand-rolled; the workspace has
    /// no serde).
    pub fn to_json(&self) -> String {
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            )
        };
        let cache = |c: &CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"stale_inserts\":{},\"hit_rate\":{:.4}}}",
                c.hits,
                c.misses,
                c.evictions,
                c.stale_inserts,
                c.hit_rate()
            )
        };
        format!(
            "{{\n  \"clients\": {},\n  \"queries\": {},\n  \"policy\": \"{}\",\n  \
             \"threads\": {},\n  \"wall_s\": {:.4},\n  \"throughput_qps\": {:.2},\n  \
             \"completed\": {},\n  \"rejected\": {},\n  \"timed_out\": {},\n  \
             \"failed\": {},\n  \"retries\": {},\n  \"fault_rate\": {},\n  \
             \"incorrect\": {},\n  \"replans\": {},\n  \"replan_considered\": {},\n  \
             \"est_error\": {{\"scan_x1000\":{},\"bloom_x1000\":{},\"shuffle_x1000\":{}}},\n  \
             \"latency_us\": {},\n  \
             \"queue_us\": {},\n  \"exec_us\": {},\n  \"result_cache\": {},\n  \
             \"bloom_cache\": {}\n}}\n",
            self.clients,
            self.queries,
            self.policy,
            self.threads,
            self.wall.as_secs_f64(),
            self.throughput_qps(),
            self.completed,
            self.rejected,
            self.timed_out,
            self.failed,
            self.retries,
            self.fault_rate,
            self.incorrect,
            self.replans,
            self.replan_considered,
            self.est_error.scan_x1000,
            self.est_error.bloom_x1000,
            self.est_error.shuffle_x1000,
            hist(&self.latency_us),
            hist(&self.queue_us),
            hist(&self.exec_us),
            cache(&self.result_cache),
            cache(&self.bloom_cache),
        )
    }

    /// Human-readable summary on stdout.
    pub fn print(&self) {
        let hist = |name: &str, h: &HistogramSnapshot| {
            println!(
                "  {name:<12} p50 {:>8}us  p95 {:>8}us  p99 {:>8}us  mean {:>10.1}us  max {:>8}us",
                h.p50(),
                h.p95(),
                h.p99(),
                h.mean(),
                h.max()
            );
        };
        println!(
            "\n== service run: {} clients, {} queries, {} policy, {} worker thread(s) ==",
            self.clients, self.queries, self.policy, self.threads
        );
        println!(
            "  completed {} / rejected {} / timed out {} / failed {} / incorrect {}",
            self.completed, self.rejected, self.timed_out, self.failed, self.incorrect
        );
        if self.fault_rate > 0.0 {
            println!(
                "  chaos: fault rate {} -> {} coordinator retries",
                self.fault_rate, self.retries
            );
        }
        if self.replans > 0 || self.replan_considered > 0 {
            println!(
                "  adaptive: {} replan(s), {} threshold crossing(s)",
                self.replans, self.replan_considered
            );
        }
        println!(
            "  wall {:.3}s  throughput {:.1} queries/s",
            self.wall.as_secs_f64(),
            self.throughput_qps()
        );
        hist("latency", &self.latency_us);
        hist("queue wait", &self.queue_us);
        hist("execution", &self.exec_us);
        println!(
            "  result cache: {} hits / {} misses / {} evictions ({:.0}% hit rate)",
            self.result_cache.hits,
            self.result_cache.misses,
            self.result_cache.evictions,
            self.result_cache.hit_rate() * 100.0
        );
        println!(
            "  bloom cache:  {} hits / {} misses / {} evictions ({:.0}% hit rate)",
            self.bloom_cache.hits,
            self.bloom_cache.misses,
            self.bloom_cache.evictions,
            self.bloom_cache.hit_rate() * 100.0
        );
    }
}

/// Generate `spec`'s workload and load it into a fresh system.
pub fn build_service_system(
    spec: WorkloadSpec,
    format: FileFormat,
    config: SystemConfig,
) -> Result<(Workload, HybridSystem)> {
    let workload = spec.generate()?;
    let mut system = HybridSystem::new(config)?;
    workload.load_into(&mut system, format)?;
    Ok((workload, system))
}

/// The workload query with HDFS-side thresholds tightened by `step` —
/// same database side (same `BF_DB` key), distinct fingerprint and result.
pub fn variant(w: &Workload, step: i64) -> HybridQuery {
    let mut q = w.query();
    q.hdfs_pred = Expr::col_le(l_cols::COR_PRED, w.thresholds.l_cor - step)
        .and(Expr::col_le(l_cols::IND_PRED, w.thresholds.l_ind));
    q
}

/// The fixed job mix: `VARIANTS` forced `repartition-bf` submissions plus
/// two advisor-routed ones. Job *j* runs pattern `j % patterns.len()`.
fn patterns() -> Vec<(usize, Option<JoinAlgorithm>)> {
    let bf = JoinAlgorithm::Repartition { bloom: true };
    (0..VARIANTS)
        .map(|i| (i, Some(bf)))
        .chain([(0, None), (1, None)])
        .collect()
}

/// Run the closed-loop workload against a freshly wrapped service.
pub fn serve_workload(
    workload: &Workload,
    system: HybridSystem,
    opts: &ServeOptions,
) -> Result<ServeReport> {
    let threads = system.config.threads;
    let queries: Vec<HybridQuery> = (0..VARIANTS as i64).map(|i| variant(workload, i)).collect();
    let expected: Vec<_> = if opts.verify {
        queries
            .iter()
            .map(|q| run_reference(&workload.t, &workload.l, q))
            .collect::<Result<_>>()?
    } else {
        Vec::new()
    };

    let svc = Arc::new(QueryService::new(system, opts.service.clone()));
    let patterns = patterns();
    let next = Arc::new(AtomicUsize::new(0));
    let incorrect = Arc::new(AtomicUsize::new(0));
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);

    let start = Instant::now();
    let handles: Vec<_> = (0..opts.clients.max(1))
        .map(|_| {
            let svc = Arc::clone(&svc);
            let patterns = patterns.clone();
            let next = Arc::clone(&next);
            let incorrect = Arc::clone(&incorrect);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            let total = opts.queries;
            let verify = opts.verify;
            std::thread::spawn(move || loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= total {
                    return;
                }
                let (qi, alg) = patterns[job % patterns.len()];
                let req = match alg {
                    Some(a) => QueryRequest::with_algorithm(queries[qi].clone(), a),
                    None => QueryRequest::new(queries[qi].clone()),
                };
                // Rejections/timeouts/failures are already counted in the
                // service registry; the driver only checks correctness.
                if let Ok(resp) = svc.submit(&req) {
                    if verify && *resp.result != expected[qi] {
                        incorrect.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let wall = start.elapsed();

    let m = svc.metrics();
    Ok(ServeReport {
        clients: opts.clients.max(1),
        queries: opts.queries,
        policy: opts.service.policy.name(),
        threads,
        wall,
        completed: m.get("svc.completed"),
        rejected: m.get("svc.rejected"),
        timed_out: m.get("svc.timed_out"),
        failed: m.get("svc.failed"),
        retries: m.get("svc.retries"),
        fault_rate: opts.fault_rate,
        incorrect: incorrect.load(Ordering::Relaxed),
        replans: m.get("svc.replans"),
        replan_considered: m.get("svc.replan_considered"),
        est_error: EstError::read(m),
        latency_us: svc.latency_histogram(),
        queue_us: svc.queue_histogram(),
        exec_us: svc.exec_histogram(),
        result_cache: CacheStats::read(m, "svc.cache.result"),
        bloom_cache: CacheStats::read(m, "svc.cache.bloom"),
    })
}
