//! Plain-text table rendering for experiment binaries.

/// Print a titled, column-aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Format tuple counts the way Table 1 does ("5,854 million").
pub fn millions(tuples: u64) -> String {
    format!("{:.1}M-equiv", tuples as f64 / 1.0e6)
}

/// Format a count scaled to paper size in millions of tuples.
pub fn paper_millions(tuples: u64, factor: f64) -> String {
    format!("{:.0} million", tuples as f64 * factor / 1.0e6)
}

/// Seconds with no decimals (the figures' y-axis granularity).
pub fn secs(s: f64) -> String {
    format!("{s:.0}s")
}

/// A one-line verdict marker for expected-shape checks.
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "OK matches paper"
    } else {
        "!! DIVERGES from paper"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(paper_millions(591, 1_000_000.0), "591 million");
        assert_eq!(secs(123.4), "123s");
        assert!(verdict(true).contains("matches"));
        assert!(verdict(false).contains("DIVERGES"));
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
