//! `bench_baseline` — the CI regression gate for join-algorithm behaviour.
//!
//! ```text
//! bench_baseline [--emit PATH] [--check BASELINE]
//! ```
//!
//! Runs every join algorithm once at a fixed tiny scale with a pinned seed
//! and collects a flat map of behavioural counters (result rows, tuples
//! shuffled/sent, cross-fabric bytes, shuffle balance) plus wall times and
//! scan throughput (`*.rows_per_sec`, informational). It also runs:
//!
//! * the skew demonstration the salting work is gated on: repartition over
//!   a Zipf(1.2) key distribution at 8 threads, salting off vs on,
//!   asserting **bit-identical results** and a ≥ 1.5× drop in
//!   `net.shuffle.max_over_mean_x1000`;
//! * the columnar demonstration the batching work is gated on: repartition
//!   at one-row framing (`batch_rows = 1`, the tuple-at-a-time replay) vs
//!   the default 4096-row batches, asserting identical row-level volumes
//!   and that the batched run is never slower
//!   (`batchcmp.{tuple,batched}.wall_ms`);
//! * the adaptive demonstration the replan work is gated on: repartition
//!   under estimates corrupted to claim the Bloom filter is useless over a
//!   workload where it eliminates ~95% of L', asserting **exactly one**
//!   mid-query replan, a bit-identical result, and an adaptive wall clock
//!   (min-of-3) no slower than the non-adaptive mis-chosen plan;
//! * the multiway demonstration the star-join work is gated on: a pinned
//!   3-dimension star sized so every cascade step prefers hash routing
//!   (the decaying intermediate re-shuffles three times), run under all
//!   three planners, asserting bit-identical results across plan
//!   families, the advisor choosing the hypercube, and the hypercube's
//!   **measured** shuffle volume strictly below the best cascade's.
//!
//! * `--emit PATH` writes the collected counters as JSON — commit the
//!   output as `BENCH_baseline.json` to (re-)bless the baseline.
//! * `--check BASELINE` compares the fresh counters against a committed
//!   baseline: any row/byte/balance counter that deviates **at all** fails,
//!   as does a wall time regressing more than 25% (plus a small absolute
//!   slack so ~millisecond cells do not flake on loaded CI runners);
//!   `*.rows_per_sec` is presence-checked only. A counter present on one
//!   side only also fails — adding an algorithm or metric requires a
//!   re-bless.
//!
//! The counters (everything except `*.wall_ms`) are deterministic: same
//! seed, same data, same schedule-independent volumes at any thread count.
//! To re-bless after an intentional behaviour change:
//!
//! ```text
//! cargo run --release --bin bench_baseline -- --emit BENCH_baseline.json
//! ```

use hybrid_bench::{default_system_config, ExpSystem};
use hybrid_core::{
    best_cascade, best_hypercube, run, run_adaptive, run_star, sample_stats, JoinAlgorithm,
    MultiwayPlanner, SystemConfig,
};
use hybrid_costmodel::{cascade_shuffle_bytes, hypercube_shuffle_bytes};
use hybrid_datagen::{DimSpec, KeySkew, WorkloadSpec};
use hybrid_storage::FileFormat;
use std::collections::BTreeMap;

/// Pinned workload seed — independent of the spec default so reseeding the
/// test workloads does not silently re-bless the bench baseline.
const SEED: u64 = 0x00C1_BA5E;

/// Pinned pool for the memory-governor demonstration. The tiny workload
/// has only 100 distinct join keys, so across 30 JEN workers each local
/// build concentrates in a handful of its 8 spill partitions, each
/// roughly 2–7 KB serialized. The per-worker share (pool / 30 ≈ 4.3 KB)
/// is chosen inside that spread: small partitions stay resident, the
/// large ones — and any worker whose couple of partitions together
/// overflow the share — must evict.
const MEM_BUDGET_BYTES: u64 = 128 << 10;

/// Wall-time regression tolerance: fail only above `base * 1.25 + 50 ms`.
const WALL_FRACTION: u64 = 4; // denominator: base/4 = 25%
const WALL_SLACK_MS: u64 = 50;

/// The salting fan-out and the balance-improvement floor of the gate.
const SALT_BUCKETS: usize = 4;
const MIN_IMPROVEMENT_X10: u64 = 15; // salted must be >= 1.5x more balanced

/// The adaptive demonstration's pinned join-key selectivity and replan
/// threshold: at SL' = 0.05 the Bloom filter eliminates ~95% of L', so
/// estimates corrupted to SL' = 1 are off by 20× — far past 1.5.
const REPLAN_DEMO_SL: f64 = 0.05;
const REPLAN_DEMO_THRESHOLD: f64 = 1.5;

/// The multiway demonstration's pinned star shape. The fact is L' =
/// 100 000 × σL 0.4 = 40 000 rows × 52 B ≈ 2.08 MB; each dimension
/// selects 7 000 rows × 12 B = 84 KB ≈ 4% of the fact. That ratio sits in
/// the window where (a) every cascade step prices hash routing below
/// broadcast (dim · (n-1) · EXPORT > INTRA · intermediate), so the best
/// cascade re-ships the decaying intermediate three times, and (b) the
/// one-shot hypercube — fact routed once, each dimension replicated to
/// its 4-worker axis slice of the 2×2×2 grid — undercuts it on *measured*
/// bytes by ~2×, which the gate asserts. High FK correlation (0.925 pass
/// fraction per step) keeps the intermediate from shrinking, the regime
/// the paper's Shares analysis favours.
const STAR_DIM_ROWS: usize = 14_000;
const STAR_DIM_SIGMA: f64 = 0.5;
const STAR_FK_CORRELATION: f64 = 0.85;

type Counters = BTreeMap<String, u64>;

fn all_algorithms() -> Vec<JoinAlgorithm> {
    JoinAlgorithm::paper_variants()
        .into_iter()
        .chain([JoinAlgorithm::SemiJoin, JoinAlgorithm::PerfJoin])
        .collect()
}

/// The bench configuration with the memory pool and the replan threshold
/// pinned off: the baseline's main sections must not drift with a
/// developer's `HYBRID_MEM_BUDGET` or `HYBRID_REPLAN_THRESHOLD` (which
/// `SystemConfig::paper_shape` otherwise honours). The governor and
/// adaptive sections below opt in explicitly.
fn pinned_config() -> SystemConfig {
    let mut cfg = default_system_config();
    cfg.mem_budget_bytes = None;
    cfg.replan_threshold = None;
    cfg
}

/// Run every algorithm at the pinned configuration and collect counters.
fn measure() -> Result<Counters, Box<dyn std::error::Error>> {
    let mut c: Counters = BTreeMap::new();
    c.insert("meta.format_version".into(), 1);
    c.insert("meta.seed".into(), SEED);

    let spec = WorkloadSpec {
        seed: SEED,
        ..WorkloadSpec::tiny()
    };
    let mut exp = ExpSystem::build_with(spec.clone(), FileFormat::Columnar, pinned_config())?;
    for alg in all_algorithms() {
        let m = exp.run(alg)?;
        let p = alg.name();
        c.insert(format!("{p}.result_rows"), m.result_rows as u64);
        c.insert(
            format!("{p}.hdfs_tuples_shuffled"),
            m.summary.hdfs_tuples_shuffled,
        );
        c.insert(format!("{p}.db_tuples_sent"), m.summary.db_tuples_sent);
        c.insert(format!("{p}.hdfs_tuples_sent"), m.summary.hdfs_tuples_sent);
        c.insert(format!("{p}.cross_bytes"), m.summary.cross_bytes);
        c.insert(format!("{p}.intra_hdfs_bytes"), m.summary.intra_hdfs_bytes);
        c.insert(
            format!("{p}.shuffle_max_over_mean_x1000"),
            m.summary.shuffle_max_over_mean_x1000,
        );
        let wall_ms = m.elapsed.as_millis() as u64;
        c.insert(format!("{p}.wall_ms"), wall_ms);
        // scan throughput, informational: raw L rows over the join wall
        c.insert(
            format!("{p}.rows_per_sec"),
            m.summary.hdfs_rows_raw.saturating_mul(1000) / wall_ms.max(1),
        );
    }

    // --- the columnar demonstration the batching work is gated on ---
    // A workload big enough that per-message overhead dominates the
    // one-row framing: batched must never be slower than tuple-at-a-time.
    let batch_spec = WorkloadSpec {
        seed: SEED,
        t_rows: 10_000,
        l_rows: 50_000,
        ..WorkloadSpec::tiny()
    };
    let mut cfg = pinned_config();
    cfg.batch_rows = 1;
    let mut tuple_sys = ExpSystem::build_with(batch_spec.clone(), FileFormat::Columnar, cfg)?;
    let mut batched_sys =
        ExpSystem::build_with(batch_spec.clone(), FileFormat::Columnar, pinned_config())?;
    let alg = JoinAlgorithm::Repartition { bloom: false };
    let tuple_m = tuple_sys.run(alg)?;
    let batched_m = batched_sys.run(alg)?;
    if tuple_m.summary.hdfs_tuples_shuffled != batched_m.summary.hdfs_tuples_shuffled
        || tuple_m.summary.db_tuples_sent != batched_m.summary.db_tuples_sent
        || tuple_m.result_rows != batched_m.result_rows
    {
        return Err("batch framing changed row-level volumes or the result".into());
    }
    if batched_m.elapsed > tuple_m.elapsed {
        return Err(format!(
            "batched run ({:?}) slower than tuple-at-a-time replay ({:?})",
            batched_m.elapsed, tuple_m.elapsed
        )
        .into());
    }
    c.insert(
        "batchcmp.tuple.wall_ms".into(),
        tuple_m.elapsed.as_millis() as u64,
    );
    c.insert(
        "batchcmp.batched.wall_ms".into(),
        batched_m.elapsed.as_millis() as u64,
    );
    c.insert(
        "batchcmp.hdfs_tuples_shuffled".into(),
        batched_m.summary.hdfs_tuples_shuffled,
    );
    println!(
        "batch demo: repartition, {} L rows — {:?} at batch_rows=1 -> {:?} at \
         batch_rows=4096, identical volumes",
        batch_spec.l_rows, tuple_m.elapsed, batched_m.elapsed
    );

    // --- the skew demonstration the salting work is gated on ---
    let skew_spec = WorkloadSpec {
        seed: SEED,
        skew: KeySkew::Zipf { s: 1.2 },
        ..WorkloadSpec::tiny()
    };
    let mut cfg = pinned_config();
    cfg.threads = 8;
    let mut unsalted = ExpSystem::build_with(skew_spec.clone(), FileFormat::Columnar, cfg.clone())?;
    cfg.salt_buckets = Some(SALT_BUCKETS);
    let mut salted = ExpSystem::build_with(skew_spec, FileFormat::Columnar, cfg)?;

    let alg = JoinAlgorithm::Repartition { bloom: false };
    let query = unsalted.workload.query();
    let off = run(&mut unsalted.system, &query, alg)?;
    let on = run(&mut salted.system, &query, alg)?;
    if off.result != on.result {
        return Err("salted repartition result differs from unsalted reference".into());
    }
    let off_ratio = off.summary.shuffle_max_over_mean_x1000;
    let on_ratio = on.summary.shuffle_max_over_mean_x1000;
    if on_ratio == 0 || off_ratio * 10 < on_ratio * MIN_IMPROVEMENT_X10 {
        return Err(format!(
            "salting improved shuffle balance only {off_ratio}/{on_ratio} \
             (need >= {}.{}x)",
            MIN_IMPROVEMENT_X10 / 10,
            MIN_IMPROVEMENT_X10 % 10
        )
        .into());
    }
    c.insert(
        "skew.repartition.result_rows".into(),
        off.result.num_rows() as u64,
    );
    c.insert(
        "skew.repartition.unsalted.max_over_mean_x1000".into(),
        off_ratio,
    );
    c.insert(
        "skew.repartition.salted.max_over_mean_x1000".into(),
        on_ratio,
    );
    c.insert(
        "skew.repartition.unsalted.hdfs_tuples_shuffled".into(),
        off.summary.hdfs_tuples_shuffled,
    );
    c.insert(
        "skew.repartition.salted.hdfs_tuples_shuffled".into(),
        on.summary.hdfs_tuples_shuffled,
    );
    println!(
        "skew demo: zipf 1.2, 8 threads, repartition — max/mean {:.2} unsalted \
         -> {:.2} salted ({}x buckets), identical results",
        off_ratio as f64 / 1000.0,
        on_ratio as f64 / 1000.0,
        SALT_BUCKETS
    );

    // --- the memory-governor demonstration the buffer-pool work is gated on ---
    // Repartition over the main tiny workload under the pinned pool: the
    // build must evict some partitions *and* keep others resident, no
    // worker may exceed its even share of the pool, every evicted byte
    // must round-trip through spill runs, and the result must match the
    // unbounded run above exactly. Sequential execution is pinned because
    // eviction order — and therefore the exact spill/ledger counters this
    // gate freezes — is only schedule-independent per worker.
    let mut cfg = pinned_config();
    cfg.threads = 1;
    cfg.mem_budget_bytes = Some(MEM_BUDGET_BYTES);
    let worker_cap = MEM_BUDGET_BYTES / cfg.jen_workers as u64;
    let mut budgeted = ExpSystem::build_with(spec, FileFormat::Columnar, cfg)?;
    let alg = JoinAlgorithm::Repartition { bloom: false };
    let m = budgeted.run(alg)?;
    if Some(&(m.result_rows as u64)) != c.get("repartition.result_rows") {
        return Err("memory budget changed the repartition result".into());
    }
    let evictions = budgeted.system.metrics.get("mem.evictions");
    let resident = budgeted.system.metrics.get("mem.partitions_resident");
    if evictions == 0 || resident == 0 {
        return Err(format!(
            "{} KB pool must force partial eviction: {evictions} evictions, \
             {resident} partitions resident",
            MEM_BUDGET_BYTES >> 10
        )
        .into());
    }
    if m.summary.mem_high_water == 0 || m.summary.mem_high_water > worker_cap {
        return Err(format!(
            "worker high-water {} outside (0, {worker_cap}]",
            m.summary.mem_high_water
        )
        .into());
    }
    if m.summary.spill_bytes_written == 0 || m.summary.spill_bytes_read == 0 {
        return Err("evicted partitions never round-tripped through spill".into());
    }
    c.insert(
        "membudget.repartition.result_rows".into(),
        m.result_rows as u64,
    );
    c.insert(
        "membudget.repartition.spill_bytes_written".into(),
        m.summary.spill_bytes_written,
    );
    c.insert(
        "membudget.repartition.spill_bytes_read".into(),
        m.summary.spill_bytes_read,
    );
    c.insert(
        "membudget.repartition.mem_high_water".into(),
        m.summary.mem_high_water,
    );
    c.insert("membudget.repartition.mem_evictions".into(), evictions);
    c.insert(
        "membudget.repartition.mem_partitions_resident".into(),
        resident,
    );
    println!(
        "memory demo: repartition under a {} KB pool — {evictions} evictions, \
         {resident} partitions resident, high-water {} of {worker_cap} B/worker, \
         {} B spilled, identical result",
        MEM_BUDGET_BYTES >> 10,
        m.summary.mem_high_water,
        m.summary.spill_bytes_written,
    );

    // --- the adaptive demonstration the replan work is gated on ---
    // A workload whose Bloom filter eliminates most of L' (low SL'), run
    // through `repartition` under estimates corrupted to claim the filter
    // is useless (SL' = ST' = 1). The observation point must catch the
    // mis-estimate, replan exactly once onto a Bloom-consuming strategy,
    // produce the bit-identical result, and beat the non-adaptive run of
    // the mis-chosen plan on wall clock (it reuses the scanned blocks, and
    // the remaining work shrinks by the filter's whole elimination rate).
    // Sequential execution is pinned for schedule-independent counters.
    let adapt_spec = WorkloadSpec {
        seed: SEED,
        t_rows: 10_000,
        l_rows: 100_000,
        sigma_l: 0.8,
        sl: REPLAN_DEMO_SL,
        ..WorkloadSpec::tiny()
    };
    let mut cfg = pinned_config();
    cfg.threads = 1;
    // Small fabric batches magnify the cost of shuffling rows the Bloom
    // filter would have eliminated — the exact waste the replan recovers —
    // while leaving the (identical) scan work on both sides untouched.
    cfg.batch_rows = 64;
    let mut plain_sys =
        ExpSystem::build_with(adapt_spec.clone(), FileFormat::Columnar, cfg.clone())?;
    cfg.replan_threshold = Some(REPLAN_DEMO_THRESHOLD);
    let mut adaptive_sys = ExpSystem::build_with(adapt_spec, FileFormat::Columnar, cfg)?;
    let alg = JoinAlgorithm::Repartition { bloom: false };
    let query = plain_sys.workload.query();
    // honest sampled stats, then the deliberate mis-estimate
    let stats = sample_stats(&adaptive_sys.system, &query, 8)?;
    let mut est = stats.to_estimates(
        &query,
        adaptive_sys.system.config.jen_workers,
        adaptive_sys.system.mem_budget_per_worker(),
    );
    est.st = 1.0;
    est.sl = 1.0;
    // Wall clocks are min-of-3 per side: the volumes are deterministic
    // (every repeat is bit-identical), so repetition only strips scheduler
    // noise from the timing comparison the gate makes.
    let mut plain_wall = std::time::Duration::MAX;
    let mut adaptive_wall = std::time::Duration::MAX;
    let mut plain = None;
    let mut adaptive = None;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        plain = Some(run(&mut plain_sys.system, &query, alg)?);
        plain_wall = plain_wall.min(started.elapsed());
        let started = std::time::Instant::now();
        adaptive = Some(run_adaptive(&mut adaptive_sys.system, &query, alg, &est)?);
        adaptive_wall = adaptive_wall.min(started.elapsed());
    }
    let (plain, adaptive) = (
        plain.expect("3 repeats ran"),
        adaptive.expect("3 repeats ran"),
    );
    if adaptive.result != plain.result {
        return Err("adaptive replan changed the query result".into());
    }
    let replans = adaptive_sys.system.metrics.get("advisor.replans");
    if replans != 1 {
        return Err(
            format!("mis-estimated workload must replan exactly once, observed {replans}").into(),
        );
    }
    if adaptive_wall > plain_wall {
        return Err(format!(
            "adaptive run ({adaptive_wall:?}) slower than the non-adaptive \
             mis-chosen plan ({plain_wall:?})"
        )
        .into());
    }
    c.insert(
        "adaptive.result_rows".into(),
        adaptive.result.num_rows() as u64,
    );
    c.insert("adaptive.replans".into(), replans);
    c.insert(
        "adaptive.replan_considered".into(),
        adaptive_sys.system.metrics.get("advisor.replan_considered"),
    );
    c.insert(
        "adaptive.hdfs_tuples_shuffled".into(),
        adaptive.summary.hdfs_tuples_shuffled,
    );
    c.insert(
        "adaptive.nonadaptive.wall_ms".into(),
        plain_wall.as_millis() as u64,
    );
    c.insert(
        "adaptive.adaptive.wall_ms".into(),
        adaptive_wall.as_millis() as u64,
    );
    println!(
        "adaptive demo: repartition under SL'={REPLAN_DEMO_SL} with estimates \
         claiming SL'=1 — {replans} replan, {:?} adaptive vs {:?} non-adaptive, \
         identical results",
        adaptive_wall, plain_wall
    );

    // --- the multiway demonstration the star-join work is gated on ---
    // The pinned 3-dimension star (see STAR_* above) under all three
    // planners on one system. Sequential execution and a pinned batch
    // size keep every volume counter schedule-independent.
    let star_spec = WorkloadSpec {
        seed: SEED,
        l_rows: 100_000,
        dimensions: vec![
            DimSpec {
                rows: STAR_DIM_ROWS,
                sigma: STAR_DIM_SIGMA,
                fk_correlation: STAR_FK_CORRELATION,
                skew: KeySkew::Uniform,
            };
            3
        ],
        ..WorkloadSpec::tiny()
    };
    let mut cfg = SystemConfig::paper_shape(3, 8);
    cfg.mem_budget_bytes = None;
    cfg.replan_threshold = None;
    cfg.threads = 1;
    cfg.batch_rows = 4096;
    let mut star_sys = ExpSystem::build_with(star_spec, FileFormat::Columnar, cfg)?;
    let star = star_sys.workload.star_query();
    let mut runs = Vec::new();
    for planner in [
        MultiwayPlanner::Cascade,
        MultiwayPlanner::Hypercube,
        MultiwayPlanner::Auto,
    ] {
        let started = std::time::Instant::now();
        let out = run_star(&mut star_sys.system, &star, planner)?;
        runs.push((planner, out, started.elapsed()));
    }
    let (casc, hyp, auto) = (&runs[0].1, &runs[1].1, &runs[2].1);
    if casc.result != hyp.result || casc.result != auto.result {
        return Err("star plan families disagree on the query result".into());
    }
    let snap =
        |out: &hybrid_core::RunOutput, name: &str| out.snapshot.get(name).copied().unwrap_or(0);
    if snap(auto, "advisor.multiway.chose_hypercube") != 1
        || snap(auto, "advisor.multiway.ran_hypercube") != 1
    {
        return Err(format!(
            "advisor must pick the hypercube on the pinned star (priced cascade {} \
             vs hypercube {})",
            snap(auto, "advisor.multiway.cost.cascade"),
            snap(auto, "advisor.multiway.cost.hypercube"),
        )
        .into());
    }
    let casc_bytes = snap(casc, "multiway.shuffle.bytes");
    let hyp_bytes = snap(hyp, "multiway.shuffle.bytes");
    if hyp_bytes == 0 || hyp_bytes >= casc_bytes {
        return Err(format!(
            "hypercube must measure strictly less shuffle volume than the best \
             cascade, got {hyp_bytes} vs {casc_bytes} bytes"
        )
        .into());
    }
    c.insert(
        "multiway.star.result_rows".into(),
        casc.result.num_rows() as u64,
    );
    for (name, out) in [("cascade", casc), ("hypercube", hyp)] {
        c.insert(
            format!("multiway.{name}.shuffle_tuples"),
            snap(out, "multiway.shuffle.tuples"),
        );
        c.insert(
            format!("multiway.{name}.shuffle_bytes"),
            snap(out, "multiway.shuffle.bytes"),
        );
    }
    c.insert(
        "multiway.cascade.wall_ms".into(),
        runs[0].2.as_millis() as u64,
    );
    c.insert(
        "multiway.hypercube.wall_ms".into(),
        runs[1].2.as_millis() as u64,
    );
    c.insert(
        "multiway.advisor.cost_cascade".into(),
        snap(auto, "advisor.multiway.cost.cascade"),
    );
    c.insert(
        "multiway.advisor.cost_hypercube".into(),
        snap(auto, "advisor.multiway.cost.hypercube"),
    );
    c.insert(
        "multiway.advisor.chose_hypercube".into(),
        snap(auto, "advisor.multiway.chose_hypercube"),
    );
    // Analytic predictions from the spec — pure functions of the pinned
    // workload, frozen so cost-model drift shows up as a baseline diff.
    let est = star_sys
        .workload
        .star_estimates(star_sys.system.config.jen_workers);
    let (steps, _) = best_cascade(&est);
    let (shares, _) = best_hypercube(&est);
    c.insert(
        "multiway.predicted.cascade_bytes".into(),
        cascade_shuffle_bytes(&est, &steps).total_bytes(),
    );
    c.insert(
        "multiway.predicted.hypercube_bytes".into(),
        hypercube_shuffle_bytes(&est, &shares).total_bytes(),
    );
    println!(
        "multiway demo: 3-dim star, advisor chose hypercube ({} vs {}) — \
         measured shuffle {hyp_bytes} B hypercube vs {casc_bytes} B best cascade, \
         identical results across plan families",
        snap(auto, "advisor.multiway.cost.hypercube"),
        snap(auto, "advisor.multiway.cost.cascade"),
    );
    Ok(c)
}

fn to_json(c: &Counters) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in c.iter().enumerate() {
        out.push_str(&format!(
            "  \"{k}\": {v}{}\n",
            if i + 1 < c.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Parse the flat `{"key": number, ...}` shape emitted by [`to_json`].
fn parse_flat_json(text: &str) -> Result<Counters, String> {
    let t = text.trim();
    let t = t.strip_prefix('{').ok_or("expected leading '{'")?;
    let t = t.strip_suffix('}').ok_or("expected trailing '}'")?;
    let mut c = Counters::new();
    for entry in t.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (k, v) = entry
            .split_once(':')
            .ok_or_else(|| format!("bad entry {entry:?}"))?;
        let k = k.trim().trim_matches('"');
        let v: u64 = v
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {k:?}: {e}"))?;
        c.insert(k.to_string(), v);
    }
    Ok(c)
}

/// All deviations of `current` from `baseline` under the gate's rules.
fn compare(baseline: &Counters, current: &Counters) -> Vec<String> {
    let mut failures = Vec::new();
    for (k, &base) in baseline {
        match current.get(k) {
            None => failures.push(format!("{k}: in baseline but not measured (re-bless?)")),
            // throughput rides the wall clock: presence-checked only
            Some(_) if k.ends_with(".rows_per_sec") => {}
            Some(&cur) if k.ends_with(".wall_ms") => {
                let limit = base + base / WALL_FRACTION + WALL_SLACK_MS;
                if cur > limit {
                    failures.push(format!(
                        "{k}: {cur} ms regressed past {limit} ms (baseline {base} ms + 25% + slack)"
                    ));
                }
            }
            Some(&cur) => {
                if cur != base {
                    failures.push(format!("{k}: measured {cur}, baseline {base}"));
                }
            }
        }
    }
    for k in current.keys() {
        if !baseline.contains_key(k) {
            failures.push(format!(
                "{k}: measured but absent from baseline (re-bless?)"
            ));
        }
    }
    failures
}

fn usage() -> ! {
    eprintln!("usage: bench_baseline [--emit PATH] [--check BASELINE]");
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut emit: Option<String> = None;
    let mut check: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--emit" => emit = Some(value()),
            "--check" => check = Some(value()),
            _ => usage(),
        }
    }

    let current = measure()?;
    if let Some(path) = &emit {
        std::fs::write(path, to_json(&current))?;
        println!("{} counters written to {path}", current.len());
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(path)?;
        let baseline = parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let failures = compare(&baseline, &current);
        if failures.is_empty() {
            println!(
                "baseline check passed: {} counters match {path}",
                baseline.len()
            );
        } else {
            eprintln!("baseline check FAILED against {path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            eprintln!(
                "if the change is intentional, re-bless with:\n  \
                 cargo run --release --bin bench_baseline -- --emit BENCH_baseline.json"
            );
            std::process::exit(1);
        }
    }
    if emit.is_none() && check.is_none() {
        print!("{}", to_json(&current));
    }
    Ok(())
}
