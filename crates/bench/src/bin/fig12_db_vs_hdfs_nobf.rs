//! Figure 12 — DB-side join vs best HDFS-side join, *without* Bloom filters.
//!
//! (a) σT = 0.05; (b) σT = 0.1; σL ∈ {0.001, 0.01, 0.1, 0.2}.
//!
//! Paper shape: the DB-side join wins only for very selective HDFS
//! predicates (σL ≤ 0.01); beyond that it deteriorates steeply while the
//! repartition join stays nearly flat.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

const ALGS: [JoinAlgorithm; 3] = [
    JoinAlgorithm::DbSide { bloom: false },
    JoinAlgorithm::Broadcast,
    JoinAlgorithm::Repartition { bloom: false },
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    for (panel, sigma_t) in [("12(a)", 0.05), ("12(b)", 0.1)] {
        let mut rows = Vec::new();
        let mut db_times = Vec::new();
        let mut crossover_ok = true;
        for sigma_l in [0.001, 0.01, 0.1, 0.2] {
            let ms = run_config(
                base.clone(),
                sigma_t,
                sigma_l,
                0.2,
                0.1,
                FileFormat::Columnar,
                &ALGS,
            )?;
            let db = ms[0].cost.total_s;
            let hdfs_best = ms[1..]
                .iter()
                .map(|m| m.cost.total_s)
                .fold(f64::INFINITY, f64::min);
            db_times.push(db);
            // paper: db competitive at sigma_L <= 0.01, clearly worse at >= 0.1
            if sigma_l >= 0.1 && db < hdfs_best {
                crossover_ok = false;
            }
            rows.push(vec![
                format!("sigma_L={sigma_l}"),
                secs(db),
                secs(hdfs_best),
                if db < hdfs_best { "db" } else { "hdfs" }.to_string(),
            ]);
        }
        print_table(
            &format!("Fig {panel}: sigma_T={sigma_t}, no Bloom filters (Parquet) — estimated paper-scale time"),
            &["config", "db", "hdfs-best", "winner"],
            &rows,
        );
        let steep = db_times[3] > db_times[0] * 3.0;
        println!(
            "  DB-side deteriorates steeply with sigma_L ({:.0}s -> {:.0}s): {}",
            db_times[0],
            db_times[3],
            verdict(steep)
        );
        println!(
            "  HDFS side wins for sigma_L >= 0.1: {}",
            verdict(crossover_ok)
        );
    }
    Ok(())
}
