//! Figure 10 — broadcast join vs repartition join.
//!
//! (a) σT = 0.001; (b) σT = 0.01; σL ∈ {0.001, 0.01, 0.1, 0.2}.
//!
//! Paper shape: broadcast wins only when T' is very small (σT ≈ 0.001) and
//! L' is large enough that avoiding the shuffle matters; at σT = 0.01 the
//! 30× replication of T' already loses to shipping T' once.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

const ALGS: [JoinAlgorithm; 2] = [
    JoinAlgorithm::Broadcast,
    JoinAlgorithm::Repartition { bloom: false },
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    let mut broadcast_wins_at_selective_t = false;
    let mut repartition_wins_at_001 = true;
    for (panel, sigma_t) in [("10(a)", 0.001), ("10(b)", 0.01)] {
        let mut rows = Vec::new();
        for sigma_l in [0.001, 0.01, 0.1, 0.2] {
            // default join-key selectivities of the evaluation grid
            let ms = run_config(
                base.clone(),
                sigma_t,
                sigma_l,
                0.2,
                0.1,
                FileFormat::Columnar,
                &ALGS,
            )?;
            let (bc, rep) = (ms[0].cost.total_s, ms[1].cost.total_s);
            if sigma_t <= 0.001 && sigma_l >= 0.1 && bc < rep {
                broadcast_wins_at_selective_t = true;
            }
            if sigma_t >= 0.01 && bc < rep * 0.95 {
                repartition_wins_at_001 = false;
            }
            rows.push(vec![
                format!("sigma_L={sigma_l}"),
                secs(bc),
                secs(rep),
                if bc < rep { "broadcast" } else { "repartition" }.to_string(),
            ]);
        }
        print_table(
            &format!("Fig {panel}: sigma_T={sigma_t} (Parquet) — estimated paper-scale time"),
            &["config", "broadcast", "repartition", "winner"],
            &rows,
        );
    }
    println!(
        "\n  broadcast wins somewhere at sigma_T=0.001 with large L': {}",
        verdict(broadcast_wins_at_selective_t)
    );
    println!(
        "  repartition (at worst ties) everywhere at sigma_T=0.01: {}",
        verdict(repartition_wins_at_001)
    );
    Ok(())
}
