//! Table 1 — zigzag join vs repartition joins: tuples shuffled and sent.
//!
//! Paper (σT = 0.1, σL = 0.4, S_L' = 0.1, S_T' = 0.2, Parquet):
//!
//! | algorithm | HDFS tuples shuffled | DB tuples sent |
//! |---|---|---|
//! | repartition | 5,854 million | 165 million |
//! | repartition(BF) | 591 million | 165 million |
//! | zigzag | 591 million | 30 million |

use hybrid_bench::report::{paper_millions, print_table, verdict};
use hybrid_bench::{spec_from_env, ExpSystem};
use hybrid_core::JoinAlgorithm;
use hybrid_costmodel::scale::{PAPER_L_ROWS, PAPER_T_ROWS};
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec {
        sigma_t: 0.1,
        sigma_l: 0.4,
        st: 0.2,
        sl: 0.1,
        ..spec_from_env()
    };
    let l_factor = PAPER_L_ROWS / spec.l_rows as f64;
    let t_factor = PAPER_T_ROWS / spec.t_rows as f64;

    let mut exp = ExpSystem::build(spec, FileFormat::Columnar)?;
    let paper: [(JoinAlgorithm, u64, u64); 3] = [
        (JoinAlgorithm::Repartition { bloom: false }, 5_854, 165),
        (JoinAlgorithm::Repartition { bloom: true }, 591, 165),
        (JoinAlgorithm::Zigzag, 591, 30),
    ];

    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (alg, paper_shuffled, paper_sent) in paper {
        let m = exp.run(alg)?;
        rows.push(vec![
            alg.name().to_string(),
            format!("{paper_shuffled} million"),
            paper_millions(m.summary.hdfs_tuples_shuffled, l_factor),
            format!("{paper_sent} million"),
            paper_millions(m.summary.db_tuples_sent, t_factor),
        ]);
        measured.push(m);
    }
    print_table(
        "Table 1: zigzag vs repartition joins (sigma_T=0.1, sigma_L=0.4, SL'=0.1, ST'=0.2)",
        &[
            "algorithm",
            "shuffled (paper)",
            "shuffled (measured→paper scale)",
            "DB sent (paper)",
            "DB sent (measured→paper scale)",
        ],
        &rows,
    );

    // shape checks: BF cuts the shuffle ~10x; zigzag cuts the DB transfer ~5x
    let shuffle_cut = measured[0].summary.hdfs_tuples_shuffled as f64
        / measured[1].summary.hdfs_tuples_shuffled.max(1) as f64;
    let sent_cut = measured[1].summary.db_tuples_sent as f64
        / measured[2].summary.db_tuples_sent.max(1) as f64;
    println!(
        "\n  BF shuffle reduction: {shuffle_cut:.1}x (paper ~9.9x)  {}",
        verdict((6.0..14.0).contains(&shuffle_cut))
    );
    println!(
        "  zigzag DB-transfer reduction: {sent_cut:.1}x (paper ~5.5x)  {}",
        verdict((3.5..8.0).contains(&sent_cut))
    );
    Ok(())
}
