//! `timeline_report` — render a run's phase Timeline (Fig. 7 view).
//!
//! ```text
//! timeline_report TIMELINE.json [--width N]
//! ```
//!
//! Takes the JSON written by `hwjoin --timeline PATH` (or any
//! [`Timeline::to_json`] output) and prints:
//!
//! * a per-worker ASCII Gantt chart of the pipeline stages — one row per
//!   worker, one glyph per time bucket, so scan/shuffle/build overlap (or
//!   the lack of it) is visible at a glance;
//! * per-stage busy time, bytes and tuples;
//! * the measured overlap-fraction matrix that
//!   `CostModel::estimate_measured` consumes;
//! * per-link-class transfer totals (the `net.*` counters that rode along
//!   in the Timeline's `totals` map).

use hybrid_bench::report::print_table;
use hybrid_common::trace::{Stage, Timeline};
use hybrid_costmodel::OverlapProfile;

fn glyph(stage: Stage) -> char {
    match stage {
        Stage::Scan => 'S',
        Stage::BloomBuild => 'b',
        Stage::BloomApply => 'f',
        Stage::ShuffleSend => '>',
        Stage::ShuffleRecv => '<',
        Stage::HashBuild => 'H',
        Stage::Probe => 'P',
        Stage::Aggregate => 'A',
        Stage::Replan => 'R',
    }
}

/// Sort key so workers list as db, db-0.., jen-0.. with numeric order.
fn worker_key(name: &str) -> (String, usize) {
    match name.rsplit_once('-') {
        Some((prefix, idx)) => match idx.parse::<usize>() {
            Ok(n) => (prefix.to_string(), n),
            Err(_) => (name.to_string(), 0),
        },
        None => (name.to_string(), 0),
    }
}

fn gantt(timeline: &Timeline, width: usize) {
    let makespan = timeline.makespan_us().max(1);
    let mut workers: Vec<String> = timeline.workers();
    workers.sort_by_key(|w| worker_key(w));
    let name_w = workers.iter().map(String::len).max().unwrap_or(0);
    println!("\n== per-worker timeline ({makespan} us, {width} buckets) ==");
    for worker in &workers {
        let mut row = vec!['.'; width];
        for span in timeline.spans.iter().filter(|s| &s.worker == worker) {
            let lo = (span.t_start as usize * width) / makespan as usize;
            let hi = ((span.t_end as usize * width) / makespan as usize).min(width - 1);
            for cell in &mut row[lo..=hi.max(lo)] {
                // later pipeline stages win ties inside one bucket, so the
                // chart shows progression even at coarse resolution
                *cell = glyph(span.stage);
            }
        }
        println!("  {worker:>name_w$} |{}|", row.iter().collect::<String>());
    }
    let legend: Vec<String> = Stage::ALL
        .iter()
        .map(|&s| format!("{}={}", glyph(s), s.name()))
        .collect();
    println!("  legend: {}", legend.join(" "));
}

fn stage_table(timeline: &Timeline) {
    let mut rows = Vec::new();
    for &stage in &Stage::ALL {
        let busy = timeline.stage_busy_us(stage);
        if busy == 0 {
            continue;
        }
        let (mut bytes, mut tuples, mut spans) = (0u64, 0u64, 0usize);
        for s in timeline.spans.iter().filter(|s| s.stage == stage) {
            bytes += s.bytes;
            tuples += s.tuples;
            spans += 1;
        }
        rows.push(vec![
            stage.name().to_string(),
            spans.to_string(),
            busy.to_string(),
            bytes.to_string(),
            tuples.to_string(),
        ]);
    }
    print_table(
        "per-stage totals",
        &["stage", "spans", "busy us", "bytes", "tuples"],
        &rows,
    );
}

fn overlap_table(timeline: &Timeline) {
    let profile = OverlapProfile::from_timeline(timeline);
    let rows: Vec<Vec<String>> = profile
        .iter()
        .map(|(a, b, f)| vec![a.to_string(), b.to_string(), format!("{f:.3}")])
        .collect();
    if rows.is_empty() {
        println!("\n(no stage pair observed — overlap matrix empty)");
        return;
    }
    print_table(
        "measured overlap fractions (input to estimate_measured)",
        &["stage a", "stage b", "overlap"],
        &rows,
    );
}

fn link_totals(timeline: &Timeline) {
    let rows: Vec<Vec<String>> = timeline
        .totals
        .iter()
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    if rows.is_empty() {
        println!("\n(no net.* totals in this timeline)");
        return;
    }
    print_table("per-link transfer totals", &["counter", "value"], &rows);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut width = 72usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--width" => {
                width = it
                    .next()
                    .ok_or("--width needs a value")?
                    .parse::<usize>()?
                    .clamp(10, 400)
            }
            "--help" | "-h" => {
                eprintln!("usage: timeline_report TIMELINE.json [--width N]");
                std::process::exit(2);
            }
            p if path.is_none() => path = Some(p.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let path = path.ok_or("usage: timeline_report TIMELINE.json [--width N]")?;
    let timeline = Timeline::from_json(&std::fs::read_to_string(&path)?)?;
    println!(
        "{path}: {} spans, {} workers, makespan {} us",
        timeline.spans.len(),
        timeline.workers().len(),
        timeline.makespan_us()
    );
    gantt(&timeline, width);
    stage_table(&timeline);
    overlap_table(&timeline);
    link_totals(&timeline);
    Ok(())
}
