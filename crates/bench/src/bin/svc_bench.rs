//! `svc_bench` — closed-loop throughput/latency benchmark for the
//! concurrent query service.
//!
//! ```text
//! svc_bench [--clients N] [--queries N] [--scale tiny|small|default]
//!           [--format columnar|text] [--policy fifo|sjf]
//!           [--max-in-flight N] [--max-queued N] [--threads N]
//!           [--fault-rate R] [--chaos-seed N] [--replan-threshold F|off]
//!           [--no-verify] [--json PATH]
//! ```
//!
//! N client threads (default 8) drive a 100-query mixed workload —
//! advisor-routed and forced-algorithm submissions over predicate
//! variants that share a database side — through one `QueryService`,
//! then report throughput, p50/p95/p99 latency (total, queue wait,
//! execution), and both cache hit rates. Every result is checked against
//! the single-threaded reference implementation unless `--no-verify`;
//! any mismatch makes the process exit nonzero. `--json PATH` writes the
//! machine-readable artifact the `service-soak` CI job uploads.
//!
//! `--replan-threshold F` arms mid-query adaptive re-optimization on
//! every session execution: the report gains `replans` /
//! `replan_considered` counts and the accumulated `est_error` gauges.
//! Results are still verified — a replan must be invisible in the answer.
//!
//! `--fault-rate R` (with optional `--chaos-seed N`) drives the whole run
//! under the seeded fault plan: the report gains a `fault_rate` column and
//! a `retries` count showing how many coordinator-level query retries the
//! injected faults forced. Completed responses are still verified against
//! the reference — recovery must be exact, not approximate.

use hybrid_bench::default_system_config;
use hybrid_bench::svc::{build_service_system, serve_workload, ServeOptions};
use hybrid_datagen::WorkloadSpec;
use hybrid_service::SchedulePolicy;
use hybrid_storage::FileFormat;

fn usage() -> ! {
    eprintln!(
        "usage: svc_bench [--clients N] [--queries N] [--scale tiny|small|default] \
         [--format columnar|text] [--policy fifo|sjf] [--max-in-flight N] \
         [--max-queued N] [--threads N] [--fault-rate R] [--chaos-seed N] \
         [--replan-threshold F|off] [--no-verify] [--json PATH]"
    );
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = ServeOptions::default();
    let mut spec = WorkloadSpec::tiny();
    let mut format = FileFormat::Columnar;
    let mut threads: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut replan_threshold: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--clients" => opts.clients = value().parse()?,
            "--queries" => opts.queries = value().parse()?,
            "--max-in-flight" => opts.service.max_in_flight = value().parse()?,
            "--max-queued" => opts.service.max_queued = value().parse()?,
            "--threads" => threads = Some(value().parse()?),
            "--fault-rate" => opts.fault_rate = value().parse()?,
            "--chaos-seed" => opts.chaos_seed = value().parse()?,
            "--replan-threshold" => replan_threshold = Some(value().to_string()),
            "--json" => json_path = Some(value().to_string()),
            "--no-verify" => opts.verify = false,
            "--policy" => {
                opts.service.policy = match SchedulePolicy::parse(value()) {
                    Some(p) => p,
                    None => usage(),
                }
            }
            "--scale" => {
                spec = match value() {
                    "tiny" => WorkloadSpec::tiny(),
                    "small" => WorkloadSpec {
                        t_rows: 40_000,
                        l_rows: 375_000,
                        num_keys: 400,
                        ..WorkloadSpec::scaled_default()
                    },
                    "default" => WorkloadSpec::scaled_default(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        usage()
                    }
                }
            }
            "--format" => {
                format = match value() {
                    "columnar" | "parquet" => FileFormat::Columnar,
                    "text" => FileFormat::Text,
                    other => {
                        eprintln!("unknown format {other:?}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let mut cfg = default_system_config();
    if let Some(n) = threads {
        cfg.threads = n;
    }
    if let Some(arg) = &replan_threshold {
        cfg.replan_threshold = match hybrid_core::parse_replan_threshold(arg) {
            Some(t) => Some(t),
            None if arg.trim().is_empty() || arg.trim().eq_ignore_ascii_case("off") => None,
            None => {
                eprintln!("bad --replan-threshold {arg:?} (want a float > 1.0, or off)");
                usage()
            }
        };
    }
    if let Some(t) = cfg.replan_threshold {
        println!("adaptive: mid-query replan armed at {t}x estimate divergence");
    }
    opts.apply_chaos(&mut cfg);
    if opts.fault_rate > 0.0 {
        println!(
            "chaos: seed {}, fault rate {}",
            opts.chaos_seed, opts.fault_rate
        );
    }
    println!(
        "workload: T={} rows, L={} rows, {format}; service: {} in flight / {} queued, {} policy",
        spec.t_rows,
        spec.l_rows,
        opts.service.max_in_flight,
        opts.service.max_queued,
        opts.service.policy.name()
    );
    let (workload, system) = build_service_system(spec, format, cfg)?;
    let report = serve_workload(&workload, system, &opts)?;
    report.print();
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())?;
        eprintln!("report written to {path}");
    }
    if report.incorrect > 0 {
        eprintln!("{} responses diverged from the reference", report.incorrect);
        std::process::exit(1);
    }
    if report.completed + report.rejected + report.timed_out + report.failed
        != report.queries as u64
    {
        eprintln!("lost submissions: accounting does not add up");
        std::process::exit(1);
    }
    Ok(())
}
