//! `hwjoin` — run one hybrid-warehouse join from the command line.
//!
//! ```text
//! hwjoin [--alg zigzag|db|db-bf|broadcast|repartition|repartition-bf|semijoin|perf|auto|all]
//!        [--sigma-t F] [--sigma-l F] [--st F] [--sl F]
//!        [--zipf S | --single-key] [--salt-buckets F]
//!        [--format columnar|text] [--scale tiny|small|default]
//!        [--spill-limit ROWS] [--mem-budget BYTES] [--timeline PATH]
//!        [--replan-threshold F|off] [--threads N] [--batch-rows N]
//!        [--dims N] [--planner cascade|hypercube|auto]
//!        [--serve [--clients N] [--queries N] [--policy fifo|sjf] [--json PATH]]
//! ```
//!
//! Generates the paper's workload at the requested selectivities, executes
//! the chosen strategy (or lets the sampling advisor pick with `auto`, or
//! runs them `all`), and prints the result size, data-movement summary,
//! and the cost model's paper-scale estimate — both the assumed-overlap
//! and the measured-overlap variant (see `timeline_report` for the span
//! view). `--timeline PATH` writes each run's phase Timeline as JSON
//! (`PATH` gets an `.<alg>.json` suffix when several algorithms run).
//! `--threads N` runs every worker on its own OS thread (N > 1) via the
//! parallel driver; the default comes from `HYBRID_THREADS` (or 1,
//! sequential).
//!
//! `--zipf S` draws join keys from a Zipf(S) distribution and
//! `--single-key` collapses them to one pathological hot key;
//! `--salt-buckets F` turns on skew-aware salting: detected hot keys are
//! split across up to `F` JEN workers on the build side with the matching
//! probe tuples replicated to the same workers. Results are bit-identical
//! to the unsalted run; compare `net.shuffle.max_over_mean_x1000` in a
//! `--timeline` dump to watch the straggler disappear.
//!
//! `--batch-rows N` sets the columnar batch size the engine frames data
//! into on the fabric (default 4096; the `HYBRID_BATCH_ROWS` env is the
//! fallback). `--batch-rows 1` replays the engine one tuple at a time —
//! the differential-testing reference — with bit-identical results and
//! row volumes at any size; compare wall times to watch the per-message
//! overhead appear.
//!
//! `--mem-budget BYTES` (an integer with an optional `k`/`m`/`g` suffix,
//! or `unbounded`) caps the engine's buffer pool: every JEN worker gets an
//! even share for its build side and the hybrid hash join evicts
//! partitions to disk past that share. The results stay bit-identical;
//! the `memory` column reports the per-worker high-water mark and the
//! spilled volume (`-` when the run never touched the pool or the disk).
//! `HYBRID_MEM_BUDGET` is the env fallback.
//!
//! `--replan-threshold F` arms mid-query adaptive re-optimization: a
//! sampling pass derives estimates, the run pauses at its phase boundary
//! to compare them against observed actuals, and when an estimate is off
//! by more than `F`× *and* a cheaper strategy exists for the remaining
//! work, the join restarts under the better plan (reusing the scanned
//! blocks and any built Bloom filter). Results stay bit-identical; the
//! `replans` column counts the switches. `off` (the default, also via
//! `HYBRID_REPLAN_THRESHOLD`) leaves every run byte-for-byte untouched.
//!
//! `--serve` switches to serving mode: instead of one join, N client
//! threads drive a mixed workload through the concurrent query service
//! (see `svc_bench` for the dedicated benchmark with all its knobs).
//!
//! `--dims N` attaches `N` (1–3) dimension tables and runs the star
//! query `L' ⋈ D0 ⋈ … ⋈ D(N-1)` through the multiway engine instead of a
//! binary join; dimension cardinalities scale with `--scale` (each is
//! `l_rows/40 + 100·i` rows at σ = 0.5, FK correlation 0.6 — the shape of
//! `WorkloadSpec::tiny_star`). `--planner cascade|hypercube|auto` forces
//! the plan family or lets the advisor price every left-deep cascade
//! against the best full-grid hypercube (default: `auto`, or the
//! `HYBRID_MULTIWAY_PLANNER` env). The report prints measured shuffle
//! volume next to the cost model's analytic prediction so drift between
//! the two is visible at a glance.
//!
//! `--listen ADDR` starts the framed-TCP front door on `ADDR` instead of
//! running a join: the workload is generated and loaded, a single `cli`
//! tenant (token `cli`) is registered, and the server accepts streaming
//! query connections until Ctrl-C. `--connect ADDR` is the matching
//! client mode: it dials a running front door, authenticates as `cli`,
//! sends this invocation's query (binary, or star with `--dims`), and
//! prints the streamed result summary — the two ends of the wire from one
//! binary.
//!
//! `--chaos-seed N` (with optional `--fault-rate R`, default 0.05)
//! installs the seeded fault plan from the chaos harness: deliveries are
//! dropped/duplicated/delayed/reordered per the seed, sends retry with
//! backoff, and a run that exhausts recovery reports its typed fault in
//! the results table instead of aborting the sweep. Same seed, same
//! faults — `hwjoin --alg all --chaos-seed 7` replays bit-identically.

use hybrid_bench::report::{print_table, secs};
use hybrid_bench::svc::{build_service_system, serve_workload, ServeOptions};
use hybrid_bench::{default_system_config, ExpSystem};
use hybrid_core::{
    best_cascade, best_hypercube, parse_mem_budget, parse_replan_threshold, run_auto, run_star,
    JoinAlgorithm, MultiwayPlanner,
};
use hybrid_costmodel::{cascade_shuffle_bytes, hypercube_shuffle_bytes};
use hybrid_datagen::{DimSpec, KeySkew, WorkloadSpec};
use hybrid_service::SchedulePolicy;
use hybrid_storage::FileFormat;

fn parse_alg(s: &str) -> Option<JoinAlgorithm> {
    Some(match s {
        "zigzag" => JoinAlgorithm::Zigzag,
        "db" => JoinAlgorithm::DbSide { bloom: false },
        "db-bf" => JoinAlgorithm::DbSide { bloom: true },
        "broadcast" => JoinAlgorithm::Broadcast,
        "repartition" => JoinAlgorithm::Repartition { bloom: false },
        "repartition-bf" => JoinAlgorithm::Repartition { bloom: true },
        "semijoin" => JoinAlgorithm::SemiJoin,
        "perf" => JoinAlgorithm::PerfJoin,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: hwjoin [--alg NAME|auto|all] [--sigma-t F] [--sigma-l F] \
         [--st F] [--sl F] [--zipf S | --single-key] [--salt-buckets F] \
         [--format columnar|text] [--scale tiny|small|default] \
         [--spill-limit ROWS] [--mem-budget BYTES[k|m|g]|unbounded] \
         [--replan-threshold F|off] [--timeline PATH] [--threads N] \
         [--batch-rows N] [--dims N] [--planner cascade|hypercube|auto] \
         [--chaos-seed N] [--fault-rate R] \
         [--listen ADDR | --connect ADDR] \
         [--serve [--clients N] [--queries N] [--policy fifo|sjf] [--json PATH]]"
    );
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut alg_arg = "zigzag".to_string();
    let mut spec = WorkloadSpec::tiny();
    let mut format = FileFormat::Columnar;
    let mut spill_limit: Option<usize> = None;
    let mut mem_budget: Option<String> = None;
    let mut replan_threshold: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut batch_rows: Option<usize> = None;
    let mut serve = false;
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut serve_opts = ServeOptions::default();
    let mut json_path: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut fault_rate: Option<f64> = None;
    // applied after parsing so flag order vs --scale does not matter
    let mut skew = KeySkew::Uniform;
    let mut salt_buckets: Option<usize> = None;
    let mut dims: usize = 0;
    let mut planner = MultiwayPlanner::from_env();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--alg" => alg_arg = value().to_string(),
            "--sigma-t" => spec.sigma_t = value().parse()?,
            "--sigma-l" => spec.sigma_l = value().parse()?,
            "--st" => spec.st = value().parse()?,
            "--sl" => spec.sl = value().parse()?,
            "--spill-limit" => spill_limit = Some(value().parse()?),
            "--mem-budget" => mem_budget = Some(value().to_string()),
            "--replan-threshold" => replan_threshold = Some(value().to_string()),
            "--timeline" => timeline_path = Some(value().to_string()),
            "--threads" => threads = Some(value().parse()?),
            "--batch-rows" => batch_rows = Some(value().parse()?),
            "--chaos-seed" => chaos_seed = Some(value().parse()?),
            "--fault-rate" => fault_rate = Some(value().parse()?),
            "--zipf" => {
                skew = KeySkew::Zipf {
                    s: value().parse()?,
                }
            }
            "--single-key" => skew = KeySkew::SingleKey,
            "--salt-buckets" => salt_buckets = Some(value().parse()?),
            "--dims" => dims = value().parse()?,
            "--planner" => {
                planner = match MultiwayPlanner::parse(value()) {
                    Some(p) => p,
                    None => {
                        eprintln!("unknown planner (want cascade, hypercube, or auto)");
                        usage()
                    }
                }
            }
            "--serve" => serve = true,
            "--listen" => listen = Some(value().to_string()),
            "--connect" => connect = Some(value().to_string()),
            "--clients" => serve_opts.clients = value().parse()?,
            "--queries" => serve_opts.queries = value().parse()?,
            "--json" => json_path = Some(value().to_string()),
            "--policy" => {
                serve_opts.service.policy = match SchedulePolicy::parse(value()) {
                    Some(p) => p,
                    None => usage(),
                }
            }
            "--format" => {
                format = match value() {
                    "columnar" | "parquet" => FileFormat::Columnar,
                    "text" => FileFormat::Text,
                    other => {
                        eprintln!("unknown format {other:?}");
                        usage()
                    }
                }
            }
            "--scale" => {
                spec = match value() {
                    "tiny" => WorkloadSpec {
                        sigma_t: spec.sigma_t,
                        sigma_l: spec.sigma_l,
                        st: spec.st,
                        sl: spec.sl,
                        ..WorkloadSpec::tiny()
                    },
                    "small" => WorkloadSpec {
                        t_rows: 40_000,
                        l_rows: 375_000,
                        num_keys: 400,
                        sigma_t: spec.sigma_t,
                        sigma_l: spec.sigma_l,
                        st: spec.st,
                        sl: spec.sl,
                        ..WorkloadSpec::scaled_default()
                    },
                    "default" => WorkloadSpec {
                        sigma_t: spec.sigma_t,
                        sigma_l: spec.sigma_l,
                        st: spec.st,
                        sl: spec.sl,
                        ..WorkloadSpec::scaled_default()
                    },
                    other => {
                        eprintln!("unknown scale {other:?}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    spec.skew = skew;
    if dims > 0 {
        // tiny_star's shape, with cardinalities that track --scale: the
        // tiny workload (l_rows = 12 000) reproduces tiny_star exactly.
        spec.dimensions = (0..dims)
            .map(|i| DimSpec {
                rows: spec.l_rows / 40 + 100 * i,
                sigma: 0.5,
                fk_correlation: 0.6,
                skew: KeySkew::Uniform,
            })
            .collect();
    }
    println!(
        "workload: T={} rows, L={} rows, sigma_T={}, sigma_L={}, ST'={}, SL'={}, {format}, keys {:?}",
        spec.t_rows, spec.l_rows, spec.sigma_t, spec.sigma_l, spec.st, spec.sl, spec.skew
    );
    for (i, d) in spec.dimensions.iter().enumerate() {
        println!(
            "  dim D{i}: {} rows, sigma={}, fk_correlation={}",
            d.rows, d.sigma, d.fk_correlation
        );
    }
    let mut cfg = default_system_config();
    cfg.salt_buckets = salt_buckets;
    if let Some(n) = threads {
        cfg.threads = n;
    }
    if let Some(limit) = spill_limit {
        cfg.jen_memory_limit_rows = Some(limit);
    }
    if let Some(arg) = &mem_budget {
        cfg.mem_budget_bytes = match parse_mem_budget(arg) {
            Some(b) => Some(b),
            None if arg.trim().eq_ignore_ascii_case("unbounded") => None,
            None => {
                eprintln!(
                    "bad --mem-budget {arg:?} (want BYTES with optional k/m/g, or unbounded)"
                );
                usage()
            }
        };
    }
    if let Some(arg) = &replan_threshold {
        cfg.replan_threshold = match parse_replan_threshold(arg) {
            Some(t) => Some(t),
            None if arg.trim().is_empty() || arg.trim().eq_ignore_ascii_case("off") => None,
            None => {
                eprintln!("bad --replan-threshold {arg:?} (want a float > 1.0, or off)");
                usage()
            }
        };
    }
    if let Some(t) = cfg.replan_threshold {
        println!("adaptive: mid-query replan armed at {t}x estimate divergence");
    }
    if let Some(b) = cfg.mem_budget_bytes {
        println!(
            "memory: {b} B buffer pool, {} B build share per JEN worker",
            b / cfg.jen_workers.max(1) as u64
        );
    }
    if let Some(n) = batch_rows {
        cfg.batch_rows = n;
    }
    println!(
        "execution: {} worker thread(s), {}-row batches",
        cfg.threads, cfg.batch_rows
    );
    if let Some(f) = salt_buckets {
        println!("salting: detected hot keys split across up to {f} JEN workers");
    }

    let chaos = chaos_seed.is_some() || fault_rate.is_some();
    if chaos {
        let seed = chaos_seed.unwrap_or(0);
        let rate = fault_rate.unwrap_or(0.05);
        serve_opts.chaos_seed = seed;
        serve_opts.fault_rate = rate;
        serve_opts.apply_chaos(&mut cfg);
        println!("chaos: seed {seed}, fault rate {rate}");
    }

    if let Some(addr) = listen {
        // server half: load the workload, register the single `cli`
        // tenant, and accept framed-TCP connections until interrupted
        let (_workload, system) = build_service_system(spec, format, cfg)?;
        let svc = std::sync::Arc::new(hybrid_service::QueryService::new(
            system,
            serve_opts.service.clone(),
        ));
        let server = hybrid_server::JoinServer::bind(
            svc,
            addr.as_str(),
            &[hybrid_server::TenantCred::new(
                "cli",
                "cli",
                hybrid_service::TenantQuota::unlimited(),
            )],
            hybrid_server::ServerConfig::default(),
        )?;
        println!(
            "front door listening on {} — connect with: hwjoin --connect {} \
             [--dims N] (tenant `cli`, token `cli`); Ctrl-C to stop",
            server.local_addr(),
            server.local_addr()
        );
        loop {
            std::thread::park();
        }
    }

    if let Some(addr) = connect {
        // client half: dial a running front door and stream one query
        let workload = spec.generate()?;
        let mut client = hybrid_server::JoinClient::connect(&addr, "cli", "cli")?;
        let t0 = std::time::Instant::now();
        let reply = if dims > 0 {
            client.star(workload.star_query(), planner, None)?
        } else {
            let alg = parse_alg(&alg_arg); // `auto`/unknown routes via advisor
            client.query(workload.query(), alg, None)?
        };
        let wall = t0.elapsed();
        println!(
            "\n{} ran {}: {} result groups in {}ms (queue {}us, exec {}us{})",
            addr,
            reply.algorithm,
            reply.rows.num_rows(),
            wall.as_millis(),
            reply.queue_wait.as_micros(),
            reply.exec_time.as_micros(),
            if reply.from_cache { ", cached" } else { "" }
        );
        return Ok(());
    }

    if serve {
        let (workload, system) = build_service_system(spec, format, cfg)?;
        let report = serve_workload(&workload, system, &serve_opts)?;
        report.print();
        if let Some(path) = json_path {
            std::fs::write(&path, report.to_json())?;
            eprintln!("report written to {path}");
        }
        if report.incorrect > 0 {
            eprintln!("{} responses diverged from the reference", report.incorrect);
            std::process::exit(1);
        }
        return Ok(());
    }

    let mut exp = ExpSystem::build_with(spec, format, cfg)?;

    if dims > 0 {
        let star = exp.workload.star_query();
        let t0 = std::time::Instant::now();
        let out = run_star(&mut exp.system, &star, planner)?;
        let wall = t0.elapsed();
        let s = |name: &str| out.snapshot.get(name).copied().unwrap_or(0);
        let ran = if s("advisor.multiway.ran_hypercube") == 1 {
            "hypercube"
        } else {
            "cascade"
        };
        println!(
            "\nplanner {planner} ran {ran}: {} result groups in {}ms",
            out.result.num_rows(),
            wall.as_millis()
        );
        println!(
            "measured shuffle: {} tuples, {} bytes",
            s("multiway.shuffle.tuples"),
            s("multiway.shuffle.bytes")
        );
        println!(
            "advisor priced cascade {} vs hypercube {} and chose {}",
            s("advisor.multiway.cost.cascade"),
            s("advisor.multiway.cost.hypercube"),
            if s("advisor.multiway.chose_hypercube") == 1 {
                "hypercube"
            } else {
                "cascade"
            }
        );
        // Analytic prediction from the workload spec (not the sampled
        // estimates the advisor used), so spec-vs-measured drift shows.
        let est = exp.workload.star_estimates(exp.system.config.jen_workers);
        let (steps, _) = best_cascade(&est);
        let (shares, _) = best_hypercube(&est);
        let pc = cascade_shuffle_bytes(&est, &steps);
        let ph = hypercube_shuffle_bytes(&est, &shares);
        println!(
            "predicted shuffle bytes: cascade {} (fact {} + dim {}), \
             hypercube {} over shares {shares:?} (fact {} + dim {})",
            pc.total_bytes(),
            pc.fact_bytes,
            pc.dim_bytes,
            ph.total_bytes(),
            ph.fact_bytes,
            ph.dim_bytes
        );
        return Ok(());
    }

    let algorithms: Vec<JoinAlgorithm> = match alg_arg.as_str() {
        "all" => JoinAlgorithm::paper_variants()
            .into_iter()
            .chain([JoinAlgorithm::SemiJoin, JoinAlgorithm::PerfJoin])
            .collect(),
        "auto" => {
            let query = exp.workload.query();
            let (choice, out, stats) = run_auto(&mut exp.system, &query)?;
            println!(
                "\nadvisor chose {choice}: {} result groups, {} HDFS tuples shuffled, {} DB tuples sent",
                out.result.num_rows(),
                out.summary.hdfs_tuples_shuffled,
                out.summary.db_tuples_sent
            );
            println!(
                "sampled estimates: sigma_T={:.3} sigma_L={:.3} ST'={:.3} SL'={:.3} skew={:.2}",
                stats.sigma_t, stats.sigma_l, stats.st, stats.sl, stats.shuffle_skew
            );
            let replans = exp.system.metrics.get("advisor.replans");
            if exp.system.config.replan_threshold.is_some() {
                println!(
                    "adaptive: {replans} replan(s), {} observation(s) crossed the threshold",
                    exp.system.metrics.get("advisor.replan_considered")
                );
            }
            return Ok(());
        }
        name => vec![parse_alg(name).unwrap_or_else(|| usage())],
    };

    let several = algorithms.len() > 1;
    let mut rows = Vec::new();
    for alg in algorithms {
        let m = match exp.run(alg) {
            Ok(m) => m,
            // Under injected faults an exhausted run is a data point, not
            // an abort: report the typed fault and keep sweeping.
            Err(e) if chaos => {
                let mut row = vec![alg.name().to_string(), format!("fault: {e}")];
                row.resize(10, "-".to_string());
                rows.push(row);
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        if let Some(base) = &timeline_path {
            let path = if several {
                format!("{base}.{}.json", alg.name())
            } else {
                base.clone()
            };
            std::fs::write(&path, m.timeline.to_json())?;
            eprintln!(
                "timeline written to {path} ({} spans)",
                m.timeline.spans.len()
            );
        }
        // per-worker build high-water / bytes evicted to spill runs —
        // "-" when the run never ran under a byte budget or never spilled
        let memory = if m.summary.mem_high_water > 0 || m.summary.spill_bytes_written > 0 {
            format!(
                "hw {} B / {} B spilled",
                m.summary.mem_high_water, m.summary.spill_bytes_written
            )
        } else {
            "-".to_string()
        };
        rows.push(vec![
            alg.name().to_string(),
            m.result_rows.to_string(),
            m.summary.hdfs_tuples_shuffled.to_string(),
            m.summary.db_tuples_sent.to_string(),
            m.summary.cross_bytes.to_string(),
            format!("{}ms", m.elapsed.as_millis()),
            secs(m.cost.total_s),
            secs(m.cost_measured.total_s),
            memory,
            if m.replans > 0 {
                m.replans.to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    print_table(
        "hwjoin results",
        &[
            "algorithm",
            "result groups",
            "tuples shuffled",
            "DB tuples sent",
            "cross bytes",
            "wall time",
            "est. (assumed overlap)",
            "est. (measured overlap)",
            "memory",
            "replans",
        ],
        &rows,
    );
    Ok(())
}
