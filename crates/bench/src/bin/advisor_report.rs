//! §5.5 discussion — the algorithm advisor across the evaluation grid.
//!
//! For each configuration, prints the advisor's pre-execution choice and
//! the algorithm the cost model actually ranks best after measurement, so
//! the decision rules of the discussion section can be audited.

use hybrid_bench::report::{print_table, verdict};
use hybrid_bench::{spec_from_env, ExpSystem};
use hybrid_core::advisor::advise;
use hybrid_core::JoinAlgorithm;
use hybrid_datagen::WorkloadSpec;
use hybrid_storage::FileFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    let grid: [(f64, f64); 8] = [
        (0.001, 0.2),
        (0.01, 0.2),
        (0.05, 0.001),
        (0.05, 0.01),
        (0.05, 0.2),
        (0.1, 0.001),
        (0.1, 0.1),
        (0.1, 0.4),
    ];
    let mut rows = Vec::new();
    let mut agreements = 0usize;
    for (sigma_t, sigma_l) in grid {
        let spec = WorkloadSpec {
            sigma_t,
            sigma_l,
            st: 0.2,
            sl: 0.1,
            ..base.clone()
        };
        let mut exp = ExpSystem::build(spec, FileFormat::Columnar)?;
        let advised = advise(&exp.workload.estimates(30));
        let mut best: Option<(JoinAlgorithm, f64)> = None;
        for alg in JoinAlgorithm::paper_variants() {
            let m = exp.run(alg)?;
            if best.is_none() || m.cost.total_s < best.unwrap().1 {
                best = Some((alg, m.cost.total_s));
            }
        }
        let (best_alg, best_s) = best.expect("ran all variants");
        // "agreement" = advised algorithm within 25% of the measured best
        let advised_s = {
            let m = exp.run(advised)?;
            m.cost.total_s
        };
        let agree = advised_s <= best_s * 1.25;
        agreements += usize::from(agree);
        rows.push(vec![
            format!("sigma_T={sigma_t} sigma_L={sigma_l}"),
            advised.name().to_string(),
            best_alg.name().to_string(),
            format!("{advised_s:.0}s vs {best_s:.0}s"),
            if agree { "agree" } else { "miss" }.to_string(),
        ]);
    }
    print_table(
        "Advisor (§5.5 rules) vs measured-best algorithm",
        &[
            "config",
            "advised",
            "measured best",
            "advised vs best time",
            "verdict",
        ],
        &rows,
    );
    println!(
        "\n  advisor within 25% of best on {agreements}/{} configs: {}",
        rows.len(),
        verdict(agreements >= rows.len() - 1)
    );
    Ok(())
}
