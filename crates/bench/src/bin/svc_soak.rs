//! `svc_soak` — the production front door under closed-loop multi-tenant
//! load, over real sockets.
//!
//! ```text
//! svc_soak [--tenants N] [--clients N] [--queries N]
//!          [--scale tiny|small|default] [--threads N]
//!          [--policy fifo|sjf] [--unfair]
//!          [--quota-inflight N] [--quota-queued N]
//!          [--verify-every K] [--star-every K] [--disconnect-every K]
//!          [--deadline-ms MS] [--fault-rate R] [--chaos-seed N]
//!          [--json PATH]
//! ```
//!
//! Binds a [`hybrid_server::JoinServer`] on a loopback port, registers
//! `--tenants` tenants, and drives `--queries` total queries from
//! `tenants × clients` real framed-TCP clients: a mix of forced
//! repartition-bf binaries, advisor-routed binaries, star queries across
//! all three planners, deadline-capped requests, and deliberate
//! mid-stream disconnects — optionally under seeded chaos faults inside
//! the engine. Every `--verify-every`-th response is checked against a
//! fresh-system reference.
//!
//! The exit gate is the report's leak audit: any incorrect result, any
//! residual admission slot or memory grant, or any violation of the
//! per-tenant accounting conservation law exits nonzero. When
//! `HYBRID_SOAK_FAIL_LOG` names a file, the violations are written there
//! so CI can upload them as evidence (the same pattern as
//! `HYBRID_CHAOS_FAIL_LOG` in the chaos soak).

use hybrid_bench::soak::{run_soak, SoakOptions};
use hybrid_bench::{default_system_config, spec_from_env};
use hybrid_datagen::{DimSpec, KeySkew, WorkloadSpec};
use hybrid_service::SchedulePolicy;

fn usage() -> ! {
    eprintln!(
        "usage: svc_soak [--tenants N] [--clients N] [--queries N] \
         [--scale tiny|small|default] [--threads N] [--policy fifo|sjf] \
         [--unfair] [--quota-inflight N] [--quota-queued N] \
         [--verify-every K] [--star-every K] [--disconnect-every K] \
         [--deadline-ms MS] [--fault-rate R] [--chaos-seed N] [--json PATH]"
    );
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = SoakOptions::default();
    let mut spec: Option<WorkloadSpec> = None;
    let mut threads: Option<usize> = None;
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--tenants" => opts.tenants = value().parse()?,
            "--clients" => opts.clients_per_tenant = value().parse()?,
            "--queries" => opts.queries = value().parse()?,
            "--threads" => threads = Some(value().parse()?),
            "--unfair" => opts.service.tenant_fair = false,
            "--quota-inflight" => opts.quota.max_in_flight = value().parse()?,
            "--quota-queued" => opts.quota.max_queued = value().parse()?,
            "--verify-every" => opts.verify_every = value().parse()?,
            "--star-every" => opts.star_every = value().parse()?,
            "--disconnect-every" => opts.disconnect_every = value().parse()?,
            "--deadline-ms" => opts.deadline_ms = value().parse()?,
            "--fault-rate" => opts.fault_rate = value().parse()?,
            "--chaos-seed" => opts.chaos_seed = value().parse()?,
            "--json" => json_path = Some(value().to_string()),
            "--policy" => {
                opts.service.policy = match SchedulePolicy::parse(value()) {
                    Some(p) => p,
                    None => usage(),
                }
            }
            "--scale" => {
                spec = Some(match value() {
                    "tiny" => WorkloadSpec::tiny(),
                    "small" => WorkloadSpec {
                        t_rows: 40_000,
                        l_rows: 375_000,
                        num_keys: 400,
                        ..WorkloadSpec::scaled_default()
                    },
                    "default" => WorkloadSpec::scaled_default(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        usage()
                    }
                })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let mut spec = spec.unwrap_or_else(spec_from_env);
    if opts.star_every > 0 && spec.dimensions.is_empty() {
        // tiny_star's shape so star jobs have dimensions to join
        spec.dimensions = (0..2)
            .map(|i| DimSpec {
                rows: spec.l_rows / 40 + 100 * i,
                sigma: 0.5,
                fk_correlation: 0.6,
                skew: KeySkew::Uniform,
            })
            .collect();
    }
    let mut cfg = default_system_config();
    if let Some(n) = threads {
        cfg.threads = n;
    }
    println!(
        "soak: {} tenants x {} clients, {} queries, T={} L={} rows, {} thread(s), \
         chaos rate {} seed {}",
        opts.tenants,
        opts.clients_per_tenant,
        opts.queries,
        spec.t_rows,
        spec.l_rows,
        cfg.threads,
        opts.fault_rate,
        opts.chaos_seed
    );

    let report = run_soak(spec, cfg, &opts)?;
    report.print();
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())?;
        eprintln!("report written to {path}");
    }

    if !report.clean() {
        let mut lines: Vec<String> = report.leaks.iter().map(|l| format!("leak\t{l}")).collect();
        if report.incorrect > 0 {
            lines.push(format!(
                "incorrect\t{} of {} verified responses diverged from the reference",
                report.incorrect, report.verified
            ));
        }
        if let Ok(path) = std::env::var("HYBRID_SOAK_FAIL_LOG") {
            let log = lines.join("\n") + "\n";
            if let Err(e) = std::fs::write(&path, log) {
                eprintln!("could not write soak fail log {path}: {e}");
            } else {
                eprintln!("violations written to {path}");
            }
        }
        eprintln!(
            "front-door soak FAILED: {} violation(s) — replay with \
             svc_soak --chaos-seed {} --fault-rate {}",
            lines.len(),
            report.chaos_seed,
            report.fault_rate
        );
        std::process::exit(1);
    }
    Ok(())
}
