//! Figure 13 — best DB-side join vs best HDFS-side join, *with* Bloom
//! filters.
//!
//! (a) σT = 0.05; (b) σT = 0.1; σL ∈ {0.001, 0.01, 0.1, 0.2}.
//!
//! Paper shape: db(BF) is the best DB-side variant and zigzag the best
//! HDFS-side variant in most cases; the DB side still only wins at very
//! selective σL, and zigzag's execution time grows only slightly with L'
//! while the DB-side curve climbs steeply.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

const ALGS: [JoinAlgorithm; 4] = [
    JoinAlgorithm::DbSide { bloom: false },
    JoinAlgorithm::DbSide { bloom: true },
    JoinAlgorithm::Repartition { bloom: true },
    JoinAlgorithm::Zigzag,
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    for (panel, sigma_t) in [("13(a)", 0.05), ("13(b)", 0.1)] {
        let mut rows = Vec::new();
        let mut zz_times = Vec::new();
        let mut db_times = Vec::new();
        let mut db_wins_selective = true;
        for sigma_l in [0.001, 0.01, 0.1, 0.2] {
            let ms = run_config(
                base.clone(),
                sigma_t,
                sigma_l,
                0.2,
                0.1,
                FileFormat::Columnar,
                &ALGS,
            )?;
            let db_best = ms[..2]
                .iter()
                .map(|m| m.cost.total_s)
                .fold(f64::INFINITY, f64::min);
            let hdfs_best = ms[2..]
                .iter()
                .map(|m| m.cost.total_s)
                .fold(f64::INFINITY, f64::min);
            db_times.push(db_best);
            zz_times.push(ms[3].cost.total_s);
            if sigma_l <= 0.01 && db_best > hdfs_best {
                db_wins_selective = false;
            }
            rows.push(vec![
                format!("sigma_L={sigma_l}"),
                secs(db_best),
                secs(hdfs_best),
                secs(ms[3].cost.total_s),
                if db_best < hdfs_best { "db" } else { "hdfs" }.to_string(),
            ]);
        }
        print_table(
            &format!("Fig {panel}: sigma_T={sigma_t}, with Bloom filters (Parquet) — estimated paper-scale time"),
            &["config", "db-best", "hdfs-best", "zigzag", "winner"],
            &rows,
        );
        // zigzag's "very steady performance" vs the db side's steep slope
        let zz_growth = zz_times[3] / zz_times[0];
        let db_growth = db_times[3] / db_times[0];
        println!(
            "  zigzag growth over sigma_L range {zz_growth:.2}x vs db-side {db_growth:.2}x: {}",
            verdict(zz_growth < db_growth && zz_growth < 1.8)
        );
        println!(
            "  db side wins for sigma_L <= 0.01 (\"the same cases as before\"): {}",
            verdict(db_wins_selective)
        );
        let last_winner = rows
            .last()
            .and_then(|r| r.get(4))
            .map(String::as_str)
            .unwrap_or("?");
        if last_winner != "hdfs" {
            println!(
                "  note: at sigma_L=0.2 the model keeps db(BF) competitive; the paper's \
measured curves degrade faster — our EDW simulator does not charge the \
DB-internal ingestion overheads of the real DB2 read_hdfs path (see EXPERIMENTS.md)"
            );
        }
    }
    Ok(())
}
