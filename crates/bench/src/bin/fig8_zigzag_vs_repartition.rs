//! Figure 8 — zigzag vs repartition joins: execution time.
//!
//! (a) σT = 0.1, S_L' = 0.1; (b) σT = 0.2, S_L' = 0.2; each with
//! σL ∈ {0.1, 0.2, 0.4} paired with S_T' ∈ {0.05, 0.1, 0.2}.
//!
//! Paper shape: zigzag is fastest everywhere — up to 2.1× over repartition
//! and up to 1.8× over repartition(BF) — and the gap widens with σL.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

const ALGS: [JoinAlgorithm; 3] = [
    JoinAlgorithm::Repartition { bloom: false },
    JoinAlgorithm::Repartition { bloom: true },
    JoinAlgorithm::Zigzag,
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    for (panel, sigma_t, sl) in [("8(a)", 0.1, 0.1), ("8(b)", 0.2, 0.2)] {
        let mut rows = Vec::new();
        let mut max_rep_over_zz = 0.0f64;
        let mut max_bf_over_zz = 0.0f64;
        let mut zigzag_always_best = true;
        for (sigma_l, st) in [(0.1, 0.05), (0.2, 0.1), (0.4, 0.2)] {
            let ms = run_config(
                base.clone(),
                sigma_t,
                sigma_l,
                st,
                sl,
                FileFormat::Columnar,
                &ALGS,
            )?;
            let (rep, bf, zz) = (ms[0].cost.total_s, ms[1].cost.total_s, ms[2].cost.total_s);
            zigzag_always_best &= zz <= bf && zz <= rep;
            max_rep_over_zz = max_rep_over_zz.max(rep / zz);
            max_bf_over_zz = max_bf_over_zz.max(bf / zz);
            rows.push(vec![
                format!("sigma_L={sigma_l} ST'={st}"),
                secs(rep),
                secs(bf),
                secs(zz),
            ]);
        }
        print_table(
            &format!(
                "Fig {panel}: sigma_T={sigma_t}, SL'={sl} (Parquet) — estimated paper-scale time"
            ),
            &["config", "repartition", "repartition(BF)", "zigzag"],
            &rows,
        );
        println!(
            "  zigzag fastest in every config: {}",
            verdict(zigzag_always_best)
        );
        println!(
            "  max speedup vs repartition {max_rep_over_zz:.1}x (paper: up to 2.1x)  {}",
            verdict((1.3..3.5).contains(&max_rep_over_zz))
        );
        println!(
            "  max speedup vs repartition(BF) {max_bf_over_zz:.1}x (paper: up to 1.8x)  {}",
            verdict((1.1..2.6).contains(&max_bf_over_zz))
        );
    }
    Ok(())
}
