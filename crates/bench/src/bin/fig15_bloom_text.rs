//! Figure 15 — the effect of Bloom filters on the text format.
//!
//! (a) repartition family, σT = 0.2 over the Fig. 8(b) grid;
//! (b) DB-side join ± BF, σT = 0.1 over the Fig. 11(b) grid — all on text.
//!
//! Paper shape: the improvement from Bloom filters is much less dramatic on
//! text than on Parquet — the expensive full scan masks the shuffle savings
//! (the shuffle is interleaved with the scan) — but the zigzag join, with
//! its second filter cutting the *database* transfer, is still robustly
//! best.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();

    // (a) repartition family on text
    let algs = [
        JoinAlgorithm::Repartition { bloom: false },
        JoinAlgorithm::Repartition { bloom: true },
        JoinAlgorithm::Zigzag,
    ];
    let mut rows = Vec::new();
    let mut zigzag_best = true;
    let mut bf_gain_text = Vec::new();
    for (sigma_l, st) in [(0.1, 0.05), (0.2, 0.1), (0.4, 0.2)] {
        let ms = run_config(base.clone(), 0.2, sigma_l, st, 0.2, FileFormat::Text, &algs)?;
        let (rep, bf, zz) = (ms[0].cost.total_s, ms[1].cost.total_s, ms[2].cost.total_s);
        zigzag_best &= zz <= bf && zz <= rep;
        bf_gain_text.push(rep / bf);
        rows.push(vec![
            format!("sigma_L={sigma_l} ST'={st}"),
            secs(rep),
            secs(bf),
            secs(zz),
        ]);
    }
    print_table(
        "Fig 15(a): repartition family on TEXT (sigma_T=0.2, SL'=0.2) — estimated paper-scale time",
        &["config", "repartition", "repartition(BF)", "zigzag"],
        &rows,
    );
    println!("  zigzag still best on text: {}", verdict(zigzag_best));

    // Masking contrast: on the sigma_T=0.1 grid (where the DB transfer does
    // not dominate) the BF clearly pays off on Parquet, while on text the
    // expensive full scan hides the shuffle savings (§5.4).
    let mut gain_text = Vec::new();
    let mut gain_parquet = Vec::new();
    for (sigma_l, st) in [(0.2, 0.1), (0.4, 0.2)] {
        let t = run_config(
            base.clone(),
            0.1,
            sigma_l,
            st,
            0.1,
            FileFormat::Text,
            &algs[..2],
        )?;
        gain_text.push(t[0].cost.total_s / t[1].cost.total_s);
        let pq = run_config(
            base.clone(),
            0.1,
            sigma_l,
            st,
            0.1,
            FileFormat::Columnar,
            &algs[..2],
        )?;
        gain_parquet.push(pq[0].cost.total_s / pq[1].cost.total_s);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "  repartition-BF gain (sigma_T=0.1 grid): text {:.2}x vs parquet {:.2}x \
(paper: text gain masked by the scan): {}",
        avg(&gain_text),
        avg(&gain_parquet),
        verdict(avg(&gain_text) < avg(&gain_parquet))
    );
    let _ = bf_gain_text;

    // (b) DB-side join ± BF on text
    let algs = [
        JoinAlgorithm::DbSide { bloom: false },
        JoinAlgorithm::DbSide { bloom: true },
    ];
    let mut rows = Vec::new();
    let mut small_l_gain = 0.0f64;
    for sigma_l in [0.001, 0.01, 0.1, 0.2] {
        let ms = run_config(
            base.clone(),
            0.1,
            sigma_l,
            0.2,
            0.1,
            FileFormat::Text,
            &algs,
        )?;
        let gain = ms[0].cost.total_s / ms[1].cost.total_s;
        if sigma_l <= 0.001 {
            small_l_gain = gain;
        }
        rows.push(vec![
            format!("sigma_L={sigma_l}"),
            secs(ms[0].cost.total_s),
            secs(ms[1].cost.total_s),
            format!("{gain:.2}x"),
        ]);
    }
    print_table(
        "Fig 15(b): DB-side join on TEXT (sigma_T=0.1, SL'=0.1) — estimated paper-scale time",
        &["config", "db", "db(BF)", "BF benefit"],
        &rows,
    );
    println!(
        "  BF benefit negligible (or negative) at sigma_L=0.001 on text: {}",
        verdict(small_l_gain < 1.1)
    );
    Ok(())
}
