//! Figure 11 — DB-side join with and without the Bloom filter.
//!
//! (a) σT = 0.05, S_L' = 0.05; (b) σT = 0.1, S_L' = 0.1;
//! σL ∈ {0.001, 0.01, 0.1, 0.2}.
//!
//! Paper shape: the Bloom filter helps more and more as L' grows; at very
//! selective σL (≤ 0.001) the BF's own cost cancels the benefit.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

const ALGS: [JoinAlgorithm; 2] = [
    JoinAlgorithm::DbSide { bloom: false },
    JoinAlgorithm::DbSide { bloom: true },
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    for (panel, sigma_t, sl) in [("11(a)", 0.05, 0.05), ("11(b)", 0.1, 0.1)] {
        let mut rows = Vec::new();
        let mut benefits = Vec::new();
        for sigma_l in [0.001, 0.01, 0.1, 0.2] {
            let ms = run_config(
                base.clone(),
                sigma_t,
                sigma_l,
                0.2,
                sl,
                FileFormat::Columnar,
                &ALGS,
            )?;
            let (plain, bf) = (ms[0].cost.total_s, ms[1].cost.total_s);
            benefits.push(plain / bf);
            rows.push(vec![
                format!("sigma_L={sigma_l}"),
                secs(plain),
                secs(bf),
                format!("{:.2}x", plain / bf),
            ]);
        }
        print_table(
            &format!(
                "Fig {panel}: sigma_T={sigma_t}, SL'={sl} (Parquet) — estimated paper-scale time"
            ),
            &["config", "db", "db(BF)", "BF benefit"],
            &rows,
        );
        // benefit grows with sigma_L, and is marginal at sigma_L=0.001
        let growing = benefits.windows(2).all(|w| w[1] >= w[0] * 0.95);
        println!("  BF benefit grows with sigma_L: {}", verdict(growing));
        println!(
            "  BF benefit marginal at sigma_L=0.001 ({:.2}x): {}",
            benefits[0],
            verdict(benefits[0] < 1.2)
        );
        println!(
            "  BF clearly helps at sigma_L=0.2 ({:.2}x): {}",
            benefits[3],
            verdict(benefits[3] > 1.3)
        );
    }
    Ok(())
}
