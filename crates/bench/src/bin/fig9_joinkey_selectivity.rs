//! Figure 9 — zigzag join under varying join-key selectivities.
//!
//! Fixed σT = 0.1, σL = 0.4. (a) S_T' = 0.5, S_L' ∈ {0.8, 0.4, 0.1};
//! (b) S_L' = 0.4, S_T' ∈ {0.5, 0.35, 0.2}.
//!
//! Paper shape: with identical T'/L' sizes, zigzag improves as either
//! join-key selectivity decreases (more pruning), while plain repartition
//! is flat — it cannot exploit join-key predicates at all.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

const ALGS: [JoinAlgorithm; 3] = [
    JoinAlgorithm::Repartition { bloom: false },
    JoinAlgorithm::Repartition { bloom: true },
    JoinAlgorithm::Zigzag,
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    let panels: [(&str, Vec<(f64, f64)>); 2] = [
        (
            "9(a): ST'=0.5, varying SL'",
            vec![(0.5, 0.8), (0.5, 0.4), (0.5, 0.1)],
        ),
        (
            "9(b): SL'=0.4, varying ST'",
            vec![(0.5, 0.4), (0.35, 0.4), (0.2, 0.4)],
        ),
    ];
    for (title, configs) in panels {
        let mut rows = Vec::new();
        let mut zz_times = Vec::new();
        for &(st, sl) in &configs {
            let ms = run_config(base.clone(), 0.1, 0.4, st, sl, FileFormat::Columnar, &ALGS)?;
            zz_times.push(ms[2].cost.total_s);
            rows.push(vec![
                format!("ST'={st} SL'={sl}"),
                secs(ms[0].cost.total_s),
                secs(ms[1].cost.total_s),
                secs(ms[2].cost.total_s),
            ]);
        }
        print_table(
            &format!(
                "Fig {title} (sigma_T=0.1, sigma_L=0.4, Parquet) — estimated paper-scale time"
            ),
            &["config", "repartition", "repartition(BF)", "zigzag"],
            &rows,
        );
        // the paper: zigzag improves monotonically as selectivity shrinks
        let monotone = zz_times.windows(2).all(|w| w[1] <= w[0] * 1.05);
        println!(
            "  zigzag improves as the join-key selectivity decreases: {}",
            verdict(monotone)
        );
    }
    Ok(())
}
