//! Figure 14 — Parquet (columnar) format vs text format.
//!
//! (a) zigzag, σT = 0.1; (b) db(BF), σT = 0.1; σL ∈ {0.001, 0.01, 0.1, 0.2}.
//!
//! Paper shape: both algorithms run significantly faster on the columnar
//! format — the 1 TB text table must be scanned and parsed in full
//! (~240 s), while projection pushdown over ~2.4× compressed column chunks
//! takes ~38 s of I/O.

use hybrid_bench::harness::run_config;
use hybrid_bench::report::{print_table, secs, verdict};
use hybrid_bench::spec_from_env;
use hybrid_core::JoinAlgorithm;
use hybrid_storage::FileFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = spec_from_env();
    for (panel, alg) in [
        ("14(a) zigzag", JoinAlgorithm::Zigzag),
        ("14(b) db(BF)", JoinAlgorithm::DbSide { bloom: true }),
    ] {
        let mut rows = Vec::new();
        let mut all_faster = true;
        for sigma_l in [0.001, 0.01, 0.1, 0.2] {
            let text = run_config(
                base.clone(),
                0.1,
                sigma_l,
                0.2,
                0.1,
                FileFormat::Text,
                &[alg],
            )?[0]
                .clone();
            let parquet = run_config(
                base.clone(),
                0.1,
                sigma_l,
                0.2,
                0.1,
                FileFormat::Columnar,
                &[alg],
            )?[0]
                .clone();
            all_faster &= parquet.cost.total_s < text.cost.total_s;
            rows.push(vec![
                format!("sigma_L={sigma_l}"),
                secs(text.cost.total_s),
                secs(parquet.cost.total_s),
                format!("{:.2}x", text.cost.total_s / parquet.cost.total_s),
                format!(
                    "{:.1}x",
                    text.summary.hdfs_bytes_scanned as f64
                        / parquet.summary.hdfs_bytes_scanned.max(1) as f64
                ),
            ]);
        }
        print_table(
            &format!("Fig {panel}: sigma_T=0.1 — estimated paper-scale time"),
            &[
                "config",
                "text",
                "parquet",
                "speedup",
                "bytes-scanned ratio",
            ],
            &rows,
        );
        println!("  columnar faster in every config: {}", verdict(all_faster));
    }
    Ok(())
}
