//! Hostile-input robustness for the framed-TCP front door.
//!
//! The contract under test (ISSUE satellite + CI `protocol-robustness`
//! job): truncated, corrupt, oversized, or wrong-version frames must
//! produce a typed error frame or a dropped connection — never a panic,
//! and never a wedged accept loop. Every test finishes by running a real
//! query through a fresh, well-behaved client against the *same*
//! listener, which proves the accept loop survived the abuse; the
//! watchdog bounds how long an abusive (or silent) connection can hold a
//! handler thread.

use hybrid_core::reference::run_reference;
use hybrid_core::{HybridSystem, SystemConfig};
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_server::wire::{self, FrameType, HEADER_LEN, MAGIC, MAX_FRAME};
use hybrid_server::{
    ErrorCode, JoinClient, JoinServer, Request, Response, ServerConfig, TenantCred, CONNECTION_ID,
};
use hybrid_service::{QueryService, ServiceConfig, TenantQuota};
use hybrid_storage::FileFormat;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn front_door() -> (JoinServer, Arc<QueryService>, Workload) {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let mut syscfg = SystemConfig::paper_shape(2, 3);
    syscfg.rows_per_block = 1000;
    let mut sys = HybridSystem::new(syscfg).unwrap();
    w.load_into(&mut sys, FileFormat::Columnar).unwrap();
    let svc = Arc::new(QueryService::new(sys, ServiceConfig::default()));
    let server = JoinServer::bind(
        Arc::clone(&svc),
        "127.0.0.1:0",
        &[TenantCred::new(
            "acme",
            "tok-acme",
            TenantQuota::unlimited(),
        )],
        ServerConfig {
            watchdog_tick: Duration::from_millis(50),
            hello_timeout: Duration::from_millis(400),
        },
    )
    .unwrap();
    (server, svc, w)
}

/// The listener still serves a correct result end-to-end — the proof that
/// whatever abuse ran before did not wedge the accept loop or poison
/// shared state.
fn assert_still_serving(addr: &str, w: &Workload) {
    let mut client = JoinClient::connect(addr, "acme", "tok-acme").unwrap();
    let reply = client.query(w.query(), None, None).unwrap();
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();
    assert_eq!(reply.rows, expected, "post-abuse query must be correct");
}

/// Read frames until the peer closes, collecting any typed error frames.
/// Panics only if the server sends something other than an error frame.
fn drain_errors(stream: &mut TcpStream) -> Vec<Response> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut out = Vec::new();
    loop {
        match wire::read_frame(stream) {
            Ok((ty, payload)) => {
                let resp = Response::decode(ty, &payload).expect("server sent undecodable frame");
                assert!(
                    matches!(resp, Response::Error { .. }),
                    "expected only error frames, got {resp:?}"
                );
                out.push(resp);
            }
            Err(_) => return out, // closed / reset / timeout: connection is done
        }
    }
}

#[test]
fn garbage_bytes_are_rejected_and_the_listener_survives() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    for garbage in [
        &b"GET / HTTP/1.1\r\n\r\n"[..], // not our protocol at all
        &[0u8; 64][..],                 // zeros
        &[0xFF; 7][..],                 // shorter than a header
    ] {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(garbage).unwrap();
        let _ = s.flush();
        // server answers with a typed connection error (best-effort) and
        // drops; either way the read below terminates
        drain_errors(&mut s);
    }

    assert_still_serving(&addr, &w);
}

#[test]
fn truncated_frame_then_death_does_not_wedge() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    // header promises 100 payload bytes; send 10 and vanish
    let mut s = TcpStream::connect(&addr).unwrap();
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = wire::VERSION;
    header[5] = FrameType::Hello as u8;
    header[6..10].copy_from_slice(&100u32.to_le_bytes());
    s.write_all(&header).unwrap();
    s.write_all(&[0u8; 10]).unwrap();
    drop(s); // die mid-frame

    assert_still_serving(&addr, &w);
}

#[test]
fn wrong_version_gets_a_typed_error_then_drop() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    let (ty, payload) = Request::Hello {
        tenant: "acme".into(),
        token: "tok-acme".into(),
    }
    .encode();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, ty, &payload).unwrap();
    frame[4] = 99; // stamp an incompatible version
    s.write_all(&frame).unwrap();

    let errors = drain_errors(&mut s);
    assert!(
        errors.iter().any(|e| matches!(
            e,
            Response::Error { id, code: ErrorCode::BadRequest, .. } if *id == CONNECTION_ID
        )),
        "wrong version must be answered with a typed connection error, got {errors:?}"
    );
    assert_still_serving(&addr, &w);
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = wire::VERSION;
    header[5] = FrameType::Query as u8;
    header[6..10].copy_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
    s.write_all(&header).unwrap();

    // the server rejects on the prefix alone — no payload ever sent
    let errors = drain_errors(&mut s);
    assert!(
        errors.iter().any(|e| matches!(
            e,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        )),
        "oversized frame must produce a typed error, got {errors:?}"
    );
    assert_still_serving(&addr, &w);
}

#[test]
fn query_before_hello_is_a_typed_error() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    let (ty, payload) = Request::Query(hybrid_server::QueryFrame {
        id: 1,
        deadline_ms: 0,
        body: hybrid_server::QueryBody::Binary {
            query: w.query(),
            algorithm: None,
        },
    })
    .encode();
    wire::write_frame(&mut s, ty, &payload).unwrap();

    let errors = drain_errors(&mut s);
    assert!(
        errors.iter().any(|e| matches!(
            e,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        )),
        "query before hello must be refused, got {errors:?}"
    );
    assert_still_serving(&addr, &w);
}

#[test]
fn bad_credentials_are_unauthorized() {
    let (server, _svc, _w) = front_door();
    let addr = server.local_addr().to_string();

    for (tenant, token) in [("acme", "wrong"), ("nobody", "tok-acme")] {
        match JoinClient::connect(&addr, tenant, token) {
            Err(hybrid_server::ClientError::Remote {
                code: ErrorCode::Unauthorized,
                retryable,
                ..
            }) => assert!(!retryable, "bad credentials are not retryable"),
            Err(other) => panic!("expected unauthorized, got {other}"),
            Ok(_) => panic!("bad credentials must not authenticate"),
        }
    }
}

#[test]
fn corrupt_query_payload_keeps_the_connection_usable() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    let (ty, payload) = Request::Hello {
        tenant: "acme".into(),
        token: "tok-acme".into(),
    }
    .encode();
    wire::write_frame(&mut s, ty, &payload).unwrap();
    let (ty, payload) = wire::read_frame(&mut s).unwrap();
    assert!(matches!(
        Response::decode(ty, &payload).unwrap(),
        Response::HelloAck { .. }
    ));

    // a frame-aligned Query whose payload is garbage: the id is readable,
    // the rest is not
    let mut bad = Vec::new();
    bad.extend_from_slice(&7u64.to_le_bytes()); // query id
    bad.extend_from_slice(&[0xA5; 40]);
    wire::write_frame(&mut s, FrameType::Query, &bad).unwrap();
    let (ty, payload) = wire::read_frame(&mut s).unwrap();
    match Response::decode(ty, &payload).unwrap() {
        Response::Error {
            id,
            code: ErrorCode::BadRequest,
            ..
        } => assert_eq!(id, 7, "error must echo the query id for correlation"),
        other => panic!("expected bad-request error, got {other:?}"),
    }

    // same connection, now a well-formed query: must work
    let (ty, payload) = Request::Query(hybrid_server::QueryFrame {
        id: 8,
        deadline_ms: 0,
        body: hybrid_server::QueryBody::Binary {
            query: w.query(),
            algorithm: None,
        },
    })
    .encode();
    wire::write_frame(&mut s, ty, &payload).unwrap();
    loop {
        let (ty, payload) = wire::read_frame(&mut s).unwrap();
        match Response::decode(ty, &payload).unwrap() {
            Response::ResultDone { id, .. } => {
                assert_eq!(id, 8);
                break;
            }
            Response::ResultHeader { id, .. } | Response::ResultChunk { id, .. } => {
                assert_eq!(id, 8)
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

#[test]
fn silent_connection_is_dropped_by_the_hello_watchdog() {
    let (server, _svc, w) = front_door();
    let addr = server.local_addr().to_string();

    // connect and say nothing; hello_timeout=400ms must cut us loose
    let mut s = TcpStream::connect(&addr).unwrap();
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf = [0u8; 1];
    let n = s.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "watchdog must close the silent connection");

    assert_still_serving(&addr, &w);
}

#[test]
fn shutdown_severs_live_connections_and_joins_threads() {
    let (mut server, svc, w) = front_door();
    let addr = server.local_addr().to_string();

    // an authenticated, idle connection is alive at shutdown time
    let client = JoinClient::connect(&addr, "acme", "tok-acme").unwrap();
    server.shutdown();
    drop(client);

    // post-shutdown: no admissions in flight, nothing reserved
    assert_eq!(svc.load(), (0, 0), "shutdown must leave no admissions");
    assert_eq!(
        svc.system().mem_pool.reserved(),
        0,
        "shutdown must leave no memory grants"
    );
    // the port is actually released
    assert!(TcpStream::connect(&addr)
        .map(|mut s| {
            // even if the OS races a connect in, nothing answers hello
            let (ty, payload) = Request::Hello {
                tenant: "acme".into(),
                token: "tok-acme".into(),
            }
            .encode();
            let _ = wire::write_frame(&mut s, ty, &payload);
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            wire::read_frame(&mut s).is_err()
        })
        .unwrap_or(true));
    let _ = w;
}
