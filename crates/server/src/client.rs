//! Blocking client for the framed-TCP front door.
//!
//! One [`JoinClient`] is one authenticated connection running the
//! request-response protocol in [`crate::protocol`]: queries go out one
//! at a time, and each answer streams back as
//! `ResultHeader · ResultChunk* · ResultDone` (reassembled into a single
//! [`Batch`] here) or one typed error frame. Clients that want
//! concurrency open more connections — exactly how the soak driver and
//! `hwjoin --connect` use it.

use crate::codec::CodecError;
use crate::protocol::{ErrorCode, QueryBody, QueryFrame, Request, Response};
use crate::wire::{self, WireError};
use hybrid_common::batch::Batch;
use hybrid_common::schema::Schema;
use hybrid_core::{HybridQuery, JoinAlgorithm, MultiwayPlanner, StarQuery};
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing broke (connection is unusable).
    Wire(WireError),
    /// A response frame would not decode (connection is suspect).
    Codec(CodecError),
    /// The server answered with a typed error frame; the connection is
    /// still usable. `retryable` is the server's own judgment.
    Remote {
        code: ErrorCode,
        retryable: bool,
        message: String,
    },
    /// The server broke the protocol state machine (unexpected frame or
    /// mismatched query id).
    Protocol(String),
}

impl ClientError {
    /// Whether resubmitting the same query can succeed (true exactly for
    /// retryable remote errors — transport failures need a reconnect).
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Remote {
                retryable: true,
                ..
            }
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Remote {
                code,
                retryable,
                message,
            } => write!(
                f,
                "server error [{}{}]: {message}",
                code.name(),
                if *retryable { ", retryable" } else { "" }
            ),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> ClientError {
        ClientError::Codec(e)
    }
}

/// One completed query as the client observed it.
#[derive(Debug, Clone)]
pub struct ClientReply {
    /// The reassembled result rows.
    pub rows: Batch,
    /// Short algorithm name the server executed (`"zigzag"`,
    /// `"repartition(BF)"`, `"cascade"`, …).
    pub algorithm: String,
    pub from_cache: bool,
    pub queue_wait: Duration,
    pub exec_time: Duration,
    /// Server-side submission→result latency (excludes the network).
    pub latency: Duration,
    /// The per-query stats snapshot from the end-of-stream trailer
    /// (empty for cache hits — nothing executed).
    pub stats: Vec<(String, u64)>,
}

/// A connected, authenticated front-door session.
pub struct JoinClient {
    stream: TcpStream,
    next_id: u64,
    tenant_index: u64,
}

impl JoinClient {
    /// Connect and authenticate. The first frame out is the hello; the
    /// call fails with [`ClientError::Remote`] on bad credentials.
    pub fn connect(addr: &str, tenant: &str, token: &str) -> Result<JoinClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        let _ = stream.set_nodelay(true);
        let mut client = JoinClient {
            stream,
            next_id: 0,
            tenant_index: 0,
        };
        client.send(&Request::Hello {
            tenant: tenant.to_string(),
            token: token.to_string(),
        })?;
        match client.recv()? {
            Response::HelloAck { tenant_index } => {
                client.tenant_index = tenant_index;
                Ok(client)
            }
            Response::Error {
                code,
                retryable,
                message,
                ..
            } => Err(ClientError::Remote {
                code,
                retryable,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected hello ack, got {other:?}"
            ))),
        }
    }

    /// The server-side tenant index this connection authenticated as.
    pub fn tenant_index(&self) -> u64 {
        self.tenant_index
    }

    /// Run a two-table hybrid join; blocks until the full result streamed
    /// back.
    pub fn query(
        &mut self,
        query: HybridQuery,
        algorithm: Option<JoinAlgorithm>,
        deadline: Option<Duration>,
    ) -> Result<ClientReply, ClientError> {
        self.request(QueryBody::Binary { query, algorithm }, deadline)
    }

    /// Run a star-schema multiway join.
    pub fn star(
        &mut self,
        star: StarQuery,
        planner: MultiwayPlanner,
        deadline: Option<Duration>,
    ) -> Result<ClientReply, ClientError> {
        self.request(QueryBody::Star { star, planner }, deadline)
    }

    fn request(
        &mut self,
        body: QueryBody,
        deadline: Option<Duration>,
    ) -> Result<ClientReply, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Query(QueryFrame {
            id,
            deadline_ms: deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            body,
        }))?;

        let mut header: Option<(Schema, String, bool)> = None;
        let mut chunks: Vec<Batch> = Vec::new();
        loop {
            match self.recv()? {
                Response::ResultHeader {
                    id: rid,
                    schema,
                    algorithm,
                    from_cache,
                } => {
                    self.expect_id(rid, id)?;
                    header = Some((schema, algorithm, from_cache));
                }
                Response::ResultChunk { id: rid, payload } => {
                    self.expect_id(rid, id)?;
                    let (schema, _, _) = header
                        .as_ref()
                        .ok_or_else(|| ClientError::Protocol("chunk before header".into()))?;
                    let decoded = hybrid_storage::decode(
                        hybrid_storage::FileFormat::Columnar,
                        schema,
                        &payload,
                        None,
                    )
                    .map_err(|e| ClientError::Protocol(format!("chunk decode: {e}")))?;
                    chunks.push(decoded.batch);
                }
                Response::ResultDone {
                    id: rid,
                    rows,
                    queue_us,
                    exec_us,
                    latency_us,
                    stats,
                } => {
                    self.expect_id(rid, id)?;
                    let (schema, algorithm, from_cache) =
                        header.ok_or_else(|| ClientError::Protocol("done before header".into()))?;
                    let batch = Batch::concat(schema, &chunks)
                        .map_err(|e| ClientError::Protocol(format!("chunk concat: {e}")))?;
                    if batch.num_rows() as u64 != rows {
                        return Err(ClientError::Protocol(format!(
                            "trailer says {rows} rows, stream carried {}",
                            batch.num_rows()
                        )));
                    }
                    return Ok(ClientReply {
                        rows: batch,
                        algorithm,
                        from_cache,
                        queue_wait: Duration::from_micros(queue_us),
                        exec_time: Duration::from_micros(exec_us),
                        latency: Duration::from_micros(latency_us),
                        stats,
                    });
                }
                Response::Error {
                    id: rid,
                    code,
                    retryable,
                    message,
                } => {
                    // connection-level errors carry CONNECTION_ID; both
                    // kinds terminate this query
                    let _ = rid;
                    return Err(ClientError::Remote {
                        code,
                        retryable,
                        message,
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-stream: {other:?}"
                    )))
                }
            }
        }
    }

    fn expect_id(&self, got: u64, want: u64) -> Result<(), ClientError> {
        if got != want {
            return Err(ClientError::Protocol(format!(
                "response for query {got}, expected {want}"
            )));
        }
        Ok(())
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let (ty, payload) = req.encode();
        wire::write_frame(&mut self.stream, ty, &payload)
            .map_err(|e| ClientError::Wire(WireError::Io(e)))
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let (ty, payload) = wire::read_frame(&mut self.stream)?;
        Ok(Response::decode(ty, &payload)?)
    }
}
