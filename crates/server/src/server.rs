//! The front-door listener: accepts framed-TCP connections, authenticates
//! tenants, and serves queries off the shared [`QueryService`].
//!
//! Threading model: one accept-loop thread plus one handler thread per
//! connection — the same closed-loop shape as [`QueryService::submit_as`]
//! itself, which blocks the calling thread through queueing. A client
//! that wants concurrency opens more connections.
//!
//! Robustness invariants (pinned by `tests/protocol_robustness.rs`):
//!
//! * A malformed frame, wrong version, hostile length, or undecodable
//!   payload produces a typed error frame and/or a dropped connection —
//!   never a panic, and never a wedged accept loop.
//! * Every handler read carries a short socket timeout (the watchdog
//!   tick), so a silent peer can never pin a thread past shutdown, and a
//!   connection that never completes its hello is dropped at
//!   `hello_timeout`.
//! * The result stream is sent *after* [`QueryService::submit_as`] has
//!   returned, so a client vanishing mid-stream cannot leak an admission
//!   slot, a memory grant, or a session namespace — by that point the
//!   service has already released all three on every path. The handler
//!   just logs the dead socket and moves on.

use crate::protocol::{ErrorCode, QueryBody, Request, Response, CONNECTION_ID};
use crate::wire::{self, WireError};
use hybrid_common::batch::Batch;
use hybrid_service::{
    QueryRequest, QueryService, ServiceError, StarRequest, TenantId, TenantQuota,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One tenant the listener will accept: credentials plus the admission
/// quota it is registered with.
#[derive(Debug, Clone)]
pub struct TenantCred {
    pub name: String,
    pub token: String,
    pub quota: TenantQuota,
}

impl TenantCred {
    pub fn new(name: &str, token: &str, quota: TenantQuota) -> TenantCred {
        TenantCred {
            name: name.to_string(),
            token: token.to_string(),
            quota,
        }
    }
}

/// Listener tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The watchdog tick: every blocking socket read times out after this
    /// long so the handler can observe shutdown (idle authenticated
    /// connections are *not* dropped — the read just retries).
    pub watchdog_tick: Duration,
    /// A connection that has not completed its hello within this budget
    /// is dropped — pre-auth sockets cannot pin handler threads.
    pub hello_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            watchdog_tick: Duration::from_millis(200),
            hello_timeout: Duration::from_secs(5),
        }
    }
}

struct Shared {
    svc: Arc<QueryService>,
    /// tenant name → (token, registered id)
    auth: HashMap<String, (String, TenantId)>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Stream clones of live connections, so shutdown can unblock their
    /// reads immediately instead of waiting out a watchdog tick.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running front door. Dropping (or calling [`JoinServer::shutdown`])
/// stops the accept loop, severs live connections, and joins every
/// thread.
pub struct JoinServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl JoinServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port), register
    /// every credential's tenant on the service, and start accepting.
    pub fn bind(
        svc: Arc<QueryService>,
        addr: &str,
        tenants: &[TenantCred],
        cfg: ServerConfig,
    ) -> std::io::Result<JoinServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut auth = HashMap::new();
        for cred in tenants {
            let id = svc.register_tenant(&cred.name, cred.quota);
            auth.insert(cred.name.clone(), (cred.token.clone(), id));
        }
        let shared = Arc::new(Shared {
            svc,
            auth,
            cfg,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            thread::Builder::new()
                .name("hwjn-accept".into())
                .spawn(move || accept_loop(listener, shared, handlers))?
        };
        Ok(JoinServer {
            addr,
            shared,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, sever live connections, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag after every accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Sever live connections so handlers fail out of any blocking
        // read/write immediately.
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let joins: Vec<_> = self.handlers.lock().drain(..).collect();
        for h in joins {
            let _ = h.join();
        }
    }
}

impl Drop for JoinServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            // A single failed accept (peer reset mid-handshake) must not
            // kill the loop.
            Err(_) => continue,
        };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let shared2 = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("hwjn-conn".into())
            .spawn(move || handle_conn(stream, shared2));
        let mut guard = handlers.lock();
        // keep the handle list bounded across many short-lived connections
        guard.retain(|h| !h.is_finished());
        if let Ok(h) = spawned {
            guard.push(h);
        }
    }
}

/// Best-effort send; a dead client is the caller's signal to drop the
/// connection, not an error to propagate.
fn send(stream: &TcpStream, resp: &Response) -> bool {
    let (ty, payload) = resp.encode();
    wire::write_frame(&mut (&*stream), ty, &payload).is_ok()
}

fn send_error(
    stream: &TcpStream,
    id: u64,
    code: ErrorCode,
    retryable: bool,
    message: String,
) -> bool {
    send(
        stream,
        &Response::Error {
            id,
            code,
            retryable,
            message,
        },
    )
}

fn handle_conn(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.watchdog_tick));

    // --- hello phase, bounded by the pre-auth watchdog -----------------
    let hello_deadline = Instant::now() + shared.cfg.hello_timeout;
    let tenant: TenantId = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match wire::read_frame(&mut (&stream)) {
            Ok((ty, payload)) => match Request::decode(ty, &payload) {
                Ok(Request::Hello { tenant, token }) => match shared.auth.get(&tenant) {
                    Some((expected, id)) if *expected == token => {
                        let _ = send(
                            &stream,
                            &Response::HelloAck {
                                tenant_index: id.index() as u64,
                            },
                        );
                        break *id;
                    }
                    _ => {
                        send_error(
                            &stream,
                            CONNECTION_ID,
                            ErrorCode::Unauthorized,
                            false,
                            format!("unknown tenant {tenant:?} or bad token"),
                        );
                        return;
                    }
                },
                Ok(_) => {
                    send_error(
                        &stream,
                        CONNECTION_ID,
                        ErrorCode::BadRequest,
                        false,
                        "first frame must be hello".into(),
                    );
                    return;
                }
                Err(e) => {
                    send_error(
                        &stream,
                        CONNECTION_ID,
                        ErrorCode::BadRequest,
                        false,
                        e.to_string(),
                    );
                    return;
                }
            },
            Err(e) if e.is_timeout() => {
                if Instant::now() >= hello_deadline {
                    return; // pre-auth watchdog: silent peer, drop
                }
            }
            // Closed, truncated, bad magic/version/type, hostile length:
            // the stream is not frame-aligned (or not ours) — best-effort
            // typed error, then drop.
            Err(e) => {
                if !matches!(e, WireError::Closed) {
                    send_error(
                        &stream,
                        CONNECTION_ID,
                        ErrorCode::BadRequest,
                        false,
                        e.to_string(),
                    );
                }
                return;
            }
        }
    };

    // --- query loop -----------------------------------------------------
    loop {
        match wire::read_frame(&mut (&stream)) {
            Ok((ty, payload)) => match Request::decode(ty, &payload) {
                Ok(Request::Query(qf)) => {
                    if !serve_query(&stream, &shared, tenant, qf) {
                        return; // client vanished mid-stream
                    }
                }
                Ok(Request::Hello { .. }) => {
                    // Re-hello is a protocol violation but frame-aligned:
                    // typed error, keep the connection.
                    if !send_error(
                        &stream,
                        CONNECTION_ID,
                        ErrorCode::BadRequest,
                        false,
                        "connection is already authenticated".into(),
                    ) {
                        return;
                    }
                }
                Err(e) => {
                    // Payload was malformed but the frame boundary held,
                    // so the stream is still aligned: typed error, keep
                    // the connection.
                    if !send_error(
                        &stream,
                        qf_id_hint(&payload),
                        ErrorCode::BadRequest,
                        false,
                        e.to_string(),
                    ) {
                        return;
                    }
                }
            },
            Err(e) if e.is_timeout() => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // idle authenticated connection: keep waiting
            }
            Err(WireError::Closed) => return,
            Err(e) => {
                send_error(
                    &stream,
                    CONNECTION_ID,
                    ErrorCode::BadRequest,
                    false,
                    e.to_string(),
                );
                return;
            }
        }
    }
}

/// A malformed query payload still usually starts with the 8-byte id the
/// client chose; echoing it lets the client correlate the error. Fall
/// back to the connection id when even that much is missing.
fn qf_id_hint(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        u64::from_le_bytes(payload[..8].try_into().unwrap())
    } else {
        CONNECTION_ID
    }
}

/// Execute one query and stream the outcome. Returns false when the
/// client vanished mid-stream (drop the connection; nothing leaks — the
/// service released slot, grant, and session before streaming began).
fn serve_query(
    stream: &TcpStream,
    shared: &Shared,
    tenant: TenantId,
    qf: crate::protocol::QueryFrame,
) -> bool {
    let deadline = (qf.deadline_ms > 0).then(|| Duration::from_millis(qf.deadline_ms));
    let id = qf.id;
    match qf.body {
        QueryBody::Binary { query, algorithm } => {
            let req = QueryRequest {
                query,
                algorithm,
                deadline,
            };
            match shared.svc.submit_as(tenant, &req) {
                Ok(resp) => {
                    let stats: Vec<(String, u64)> = resp
                        .snapshot
                        .as_ref()
                        .map(|s| s.iter().map(|(k, v)| (k.clone(), *v)).collect())
                        .unwrap_or_default();
                    stream_result(
                        stream,
                        shared,
                        id,
                        &resp.result,
                        resp.algorithm.name(),
                        resp.from_cache,
                        resp.queue_wait,
                        resp.exec_time,
                        resp.latency,
                        stats,
                    )
                }
                Err(e) => send_service_error(stream, id, &e),
            }
        }
        QueryBody::Star { star, planner } => {
            let req = StarRequest {
                star,
                planner,
                deadline,
            };
            match shared.svc.submit_star_as(tenant, &req) {
                Ok(resp) => {
                    let stats: Vec<(String, u64)> = resp
                        .snapshot
                        .as_ref()
                        .map(|s| s.iter().map(|(k, v)| (k.clone(), *v)).collect())
                        .unwrap_or_default();
                    let algorithm = if resp.ran_hypercube {
                        "hypercube"
                    } else {
                        "cascade"
                    };
                    stream_result(
                        stream,
                        shared,
                        id,
                        &resp.result,
                        algorithm,
                        false,
                        resp.queue_wait,
                        resp.exec_time,
                        resp.latency,
                        stats,
                    )
                }
                Err(e) => send_service_error(stream, id, &e),
            }
        }
    }
}

fn send_service_error(stream: &TcpStream, id: u64, e: &ServiceError) -> bool {
    let code = match e {
        ServiceError::Rejected { .. } => ErrorCode::Rejected,
        ServiceError::QuotaExceeded { .. } => ErrorCode::QuotaExceeded,
        ServiceError::TimedOut { .. } => ErrorCode::TimedOut,
        ServiceError::Exec(_) => ErrorCode::Exec,
    };
    send_error(stream, id, code, e.retryable(), e.to_string())
}

#[allow(clippy::too_many_arguments)]
fn stream_result(
    stream: &TcpStream,
    shared: &Shared,
    id: u64,
    result: &Batch,
    algorithm: &str,
    from_cache: bool,
    queue_wait: Duration,
    exec_time: Duration,
    latency: Duration,
    stats: Vec<(String, u64)>,
) -> bool {
    let batch_rows = shared.svc.system().config.batch_rows.max(1);
    if !send(
        stream,
        &Response::ResultHeader {
            id,
            schema: result.schema().clone(),
            algorithm: algorithm.to_string(),
            from_cache,
        },
    ) {
        return false;
    }
    // `Batch::chunks` yields one (possibly empty) chunk even for an empty
    // result, so the client always sees header · chunk+ · done.
    for chunk in result.chunks(batch_rows) {
        let payload = hybrid_storage::encode(hybrid_storage::FileFormat::Columnar, &chunk);
        if !send(stream, &Response::ResultChunk { id, payload }) {
            return false;
        }
    }
    send(
        stream,
        &Response::ResultDone {
            id,
            rows: result.num_rows() as u64,
            queue_us: queue_wait.as_micros() as u64,
            exec_us: exec_time.as_micros() as u64,
            latency_us: latency.as_micros() as u64,
            stats,
        },
    )
}
