//! Byte encodings for everything that crosses the wire.
//!
//! Hand-rolled (the workspace takes no serialization dependency),
//! fixed-width little-endian, and defensive on the decode side: every
//! length prefix is validated against the bytes actually remaining
//! *before* any allocation, expression trees carry a recursion cap, and
//! every failure is a typed [`CodecError`] — corrupt payloads can never
//! panic, recurse unboundedly, or balloon memory. The protocol-robustness
//! suite feeds this layer garbage to hold it to that.
//!
//! Encode and decode are exercised against each other by round-trip tests
//! below; the wire framing above this sits in [`crate::wire`].

use hybrid_bloom::BloomParams;
use hybrid_common::datum::{DataType, Datum};
use hybrid_common::expr::{CmpOp, Expr};
use hybrid_common::ops::AggSpec;
use hybrid_common::schema::{Field, Schema};
use hybrid_core::{DimQuery, HybridQuery, JoinAlgorithm, MultiwayPlanner, StarQuery};

/// Decoding failed: the payload is corrupt, truncated, or exceeds a
/// structural bound. Carries a human-readable reason for the error frame.
#[derive(Debug)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(CodecError(msg.into()))
}

/// Deepest expression tree either side will encode or decode. Far above
/// any real predicate; far below stack-overflow territory.
const MAX_EXPR_DEPTH: usize = 64;
/// Cap on decoded collection lengths (projections, aggregate lists,
/// schema fields, stats entries) — structural sanity, not a wire limit.
const MAX_LIST: usize = 1 << 16;

// ---------------------------------------------------------------------
// primitive writers
// ---------------------------------------------------------------------

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_usize_list(out: &mut Vec<u8>, v: &[usize]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x as u32);
    }
}

// ---------------------------------------------------------------------
// bounds-checked reader
// ---------------------------------------------------------------------

/// Cursor over a received payload. Every read checks the remaining bytes
/// first; a claimed length is never trusted before the bytes backing it
/// exist.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decoding must consume the payload exactly — trailing bytes mean a
    /// peer speaking a different dialect, better rejected than ignored.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return err(format!("{} trailing bytes", self.remaining()));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return err(format!("need {n} bytes, have {}", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => err(format!("bool byte {v}")),
        }
    }

    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?; // length checked against remaining
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("string is not UTF-8"),
        }
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn list_len(&mut self) -> Result<usize> {
        let len = self.u32()? as usize;
        if len > MAX_LIST {
            return err(format!("list length {len} exceeds cap {MAX_LIST}"));
        }
        Ok(len)
    }

    fn usize_list(&mut self) -> Result<Vec<usize>> {
        let len = self.list_len()?;
        // each element is 4 bytes; reject before allocating
        if self.remaining() < len * 4 {
            return err("projection list longer than payload");
        }
        (0..len).map(|_| Ok(self.u32()? as usize)).collect()
    }
}

// ---------------------------------------------------------------------
// domain types
// ---------------------------------------------------------------------

pub fn put_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::I32(v) => {
            put_u8(out, 0);
            put_i32(out, *v);
        }
        Datum::I64(v) => {
            put_u8(out, 1);
            put_i64(out, *v);
        }
        Datum::Date(v) => {
            put_u8(out, 2);
            put_i32(out, *v);
        }
        Datum::Utf8(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
    }
}

pub fn datum(d: &mut Decoder) -> Result<Datum> {
    Ok(match d.u8()? {
        0 => Datum::I32(d.i32()?),
        1 => Datum::I64(d.i64()?),
        2 => Datum::Date(d.i32()?),
        3 => Datum::Utf8(d.str()?),
        t => return err(format!("datum tag {t}")),
    })
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_op(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return err(format!("cmp op tag {t}")),
    })
}

pub fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Col(i) => {
            put_u8(out, 0);
            put_u32(out, *i as u32);
        }
        Expr::Lit(v) => {
            put_u8(out, 1);
            put_datum(out, v);
        }
        Expr::Cmp(op, l, r) => {
            put_u8(out, 2);
            put_u8(out, cmp_tag(*op));
            put_expr(out, l);
            put_expr(out, r);
        }
        Expr::And(l, r) => {
            put_u8(out, 3);
            put_expr(out, l);
            put_expr(out, r);
        }
        Expr::Or(l, r) => {
            put_u8(out, 4);
            put_expr(out, l);
            put_expr(out, r);
        }
        Expr::Not(x) => {
            put_u8(out, 5);
            put_expr(out, x);
        }
        Expr::Add(l, r) => {
            put_u8(out, 6);
            put_expr(out, l);
            put_expr(out, r);
        }
        Expr::Sub(l, r) => {
            put_u8(out, 7);
            put_expr(out, l);
            put_expr(out, r);
        }
        Expr::ExtractGroup(x) => {
            put_u8(out, 8);
            put_expr(out, x);
        }
    }
}

pub fn expr(d: &mut Decoder) -> Result<Expr> {
    expr_at(d, 0)
}

fn expr_at(d: &mut Decoder, depth: usize) -> Result<Expr> {
    if depth > MAX_EXPR_DEPTH {
        return err(format!("expression deeper than {MAX_EXPR_DEPTH}"));
    }
    let pair = |d: &mut Decoder| -> Result<(Box<Expr>, Box<Expr>)> {
        Ok((
            Box::new(expr_at(d, depth + 1)?),
            Box::new(expr_at(d, depth + 1)?),
        ))
    };
    Ok(match d.u8()? {
        0 => Expr::Col(d.u32()? as usize),
        1 => Expr::Lit(datum(d)?),
        2 => {
            let op = cmp_op(d.u8()?)?;
            let (l, r) = pair(d)?;
            Expr::Cmp(op, l, r)
        }
        3 => {
            let (l, r) = pair(d)?;
            Expr::And(l, r)
        }
        4 => {
            let (l, r) = pair(d)?;
            Expr::Or(l, r)
        }
        5 => Expr::Not(Box::new(expr_at(d, depth + 1)?)),
        6 => {
            let (l, r) = pair(d)?;
            Expr::Add(l, r)
        }
        7 => {
            let (l, r) = pair(d)?;
            Expr::Sub(l, r)
        }
        8 => Expr::ExtractGroup(Box::new(expr_at(d, depth + 1)?)),
        t => return err(format!("expr tag {t}")),
    })
}

fn put_opt_expr(out: &mut Vec<u8>, e: &Option<Expr>) {
    match e {
        None => put_u8(out, 0),
        Some(e) => {
            put_u8(out, 1);
            put_expr(out, e);
        }
    }
}

fn opt_expr(d: &mut Decoder) -> Result<Option<Expr>> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(expr(d)?),
        t => return err(format!("option tag {t}")),
    })
}

pub fn put_agg(out: &mut Vec<u8>, a: AggSpec) {
    match a {
        AggSpec::Count => put_u8(out, 0),
        AggSpec::SumI64(c) => {
            put_u8(out, 1);
            put_u32(out, c as u32);
        }
        AggSpec::MinI64(c) => {
            put_u8(out, 2);
            put_u32(out, c as u32);
        }
        AggSpec::MaxI64(c) => {
            put_u8(out, 3);
            put_u32(out, c as u32);
        }
    }
}

pub fn agg(d: &mut Decoder) -> Result<AggSpec> {
    Ok(match d.u8()? {
        0 => AggSpec::Count,
        1 => AggSpec::SumI64(d.u32()? as usize),
        2 => AggSpec::MinI64(d.u32()? as usize),
        3 => AggSpec::MaxI64(d.u32()? as usize),
        t => return err(format!("agg tag {t}")),
    })
}

fn put_aggs(out: &mut Vec<u8>, aggs: &[AggSpec]) {
    put_u32(out, aggs.len() as u32);
    for &a in aggs {
        put_agg(out, a);
    }
}

fn aggs(d: &mut Decoder) -> Result<Vec<AggSpec>> {
    let len = d.list_len()?;
    (0..len).map(|_| agg(d)).collect()
}

fn data_type_tag(t: DataType) -> u8 {
    match t {
        DataType::I32 => 0,
        DataType::I64 => 1,
        DataType::Date => 2,
        DataType::Utf8 => 3,
    }
}

fn data_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::I32,
        1 => DataType::I64,
        2 => DataType::Date,
        3 => DataType::Utf8,
        t => return err(format!("data type tag {t}")),
    })
}

pub fn put_schema(out: &mut Vec<u8>, s: &Schema) {
    put_u32(out, s.len() as u32);
    for f in s.fields() {
        put_str(out, &f.name);
        put_u8(out, data_type_tag(f.data_type));
    }
}

pub fn schema(d: &mut Decoder) -> Result<Schema> {
    let len = d.list_len()?;
    let mut fields = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        let name = d.str()?;
        let dt = data_type(d.u8()?)?;
        fields.push(Field::new(name, dt));
    }
    Ok(Schema::new(fields))
}

fn alg_tag(a: JoinAlgorithm) -> u8 {
    match a {
        JoinAlgorithm::DbSide { bloom: false } => 0,
        JoinAlgorithm::DbSide { bloom: true } => 1,
        JoinAlgorithm::Broadcast => 2,
        JoinAlgorithm::Repartition { bloom: false } => 3,
        JoinAlgorithm::Repartition { bloom: true } => 4,
        JoinAlgorithm::Zigzag => 5,
        JoinAlgorithm::SemiJoin => 6,
        JoinAlgorithm::PerfJoin => 7,
    }
}

fn algorithm(tag: u8) -> Result<JoinAlgorithm> {
    Ok(match tag {
        0 => JoinAlgorithm::DbSide { bloom: false },
        1 => JoinAlgorithm::DbSide { bloom: true },
        2 => JoinAlgorithm::Broadcast,
        3 => JoinAlgorithm::Repartition { bloom: false },
        4 => JoinAlgorithm::Repartition { bloom: true },
        5 => JoinAlgorithm::Zigzag,
        6 => JoinAlgorithm::SemiJoin,
        7 => JoinAlgorithm::PerfJoin,
        t => return err(format!("algorithm tag {t}")),
    })
}

pub fn put_opt_algorithm(out: &mut Vec<u8>, a: Option<JoinAlgorithm>) {
    match a {
        None => put_u8(out, 255),
        Some(a) => put_u8(out, alg_tag(a)),
    }
}

pub fn opt_algorithm(d: &mut Decoder) -> Result<Option<JoinAlgorithm>> {
    match d.u8()? {
        255 => Ok(None),
        t => Ok(Some(algorithm(t)?)),
    }
}

pub fn put_planner(out: &mut Vec<u8>, p: MultiwayPlanner) {
    put_u8(
        out,
        match p {
            MultiwayPlanner::Cascade => 0,
            MultiwayPlanner::Hypercube => 1,
            MultiwayPlanner::Auto => 2,
        },
    );
}

pub fn planner(d: &mut Decoder) -> Result<MultiwayPlanner> {
    Ok(match d.u8()? {
        0 => MultiwayPlanner::Cascade,
        1 => MultiwayPlanner::Hypercube,
        2 => MultiwayPlanner::Auto,
        t => return err(format!("planner tag {t}")),
    })
}

pub fn put_query(out: &mut Vec<u8>, q: &HybridQuery) {
    put_str(out, &q.db_table);
    put_str(out, &q.hdfs_table);
    put_expr(out, &q.db_pred);
    put_usize_list(out, &q.db_proj);
    put_u32(out, q.db_key as u32);
    put_expr(out, &q.hdfs_pred);
    put_usize_list(out, &q.hdfs_proj);
    put_u32(out, q.hdfs_key as u32);
    put_opt_expr(out, &q.post_predicate);
    put_expr(out, &q.group_expr);
    put_aggs(out, &q.aggs);
    put_u64(out, q.bloom.bits as u64);
    put_u32(out, q.bloom.hashes);
}

pub fn query(d: &mut Decoder) -> Result<HybridQuery> {
    let q = HybridQuery {
        db_table: d.str()?,
        hdfs_table: d.str()?,
        db_pred: expr(d)?,
        db_proj: d.usize_list()?,
        db_key: d.u32()? as usize,
        hdfs_pred: expr(d)?,
        hdfs_proj: d.usize_list()?,
        hdfs_key: d.u32()? as usize,
        post_predicate: opt_expr(d)?,
        group_expr: expr(d)?,
        aggs: aggs(d)?,
        bloom: {
            let bits = d.u64()? as usize;
            let hashes = d.u32()?;
            // the validated constructor rejects degenerate geometry here,
            // before the query reaches the engine
            BloomParams::new(bits, hashes).map_err(|e| CodecError(e.to_string()))?
        },
    };
    // structural validation at the door: a decoded query that fails its
    // own invariants is a BadRequest, not a later engine error
    q.validate().map_err(|e| CodecError(e.to_string()))?;
    Ok(q)
}

pub fn put_star(out: &mut Vec<u8>, s: &StarQuery) {
    put_str(out, &s.fact_table);
    put_expr(out, &s.fact_pred);
    put_usize_list(out, &s.fact_proj);
    put_usize_list(out, &s.fact_keys);
    put_u32(out, s.dims.len() as u32);
    for dim in &s.dims {
        put_str(out, &dim.table);
        put_expr(out, &dim.pred);
        put_usize_list(out, &dim.proj);
        put_u32(out, dim.key as u32);
    }
    put_opt_expr(out, &s.post_predicate);
    put_expr(out, &s.group_expr);
    put_aggs(out, &s.aggs);
}

pub fn star(d: &mut Decoder) -> Result<StarQuery> {
    let fact_table = d.str()?;
    let fact_pred = expr(d)?;
    let fact_proj = d.usize_list()?;
    let fact_keys = d.usize_list()?;
    let ndims = d.list_len()?;
    let mut dims = Vec::with_capacity(ndims.min(16));
    for _ in 0..ndims {
        dims.push(DimQuery {
            table: d.str()?,
            pred: expr(d)?,
            proj: d.usize_list()?,
            key: d.u32()? as usize,
        });
    }
    let s = StarQuery {
        fact_table,
        fact_pred,
        fact_proj,
        fact_keys,
        dims,
        post_predicate: opt_expr(d)?,
        group_expr: expr(d)?,
        aggs: aggs(d)?,
    };
    s.validate().map_err(|e| CodecError(e.to_string()))?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(1, 10),
            db_proj: vec![0, 1, 3],
            db_key: 0,
            hdfs_pred: Expr::col_le(2, 7)
                .and(Expr::Not(Box::new(Expr::col(4).eq(Expr::lit_i32(0))))),
            hdfs_proj: vec![0, 2, 4],
            hdfs_key: 0,
            post_predicate: Some(
                Expr::Sub(Box::new(Expr::col(1)), Box::new(Expr::col(4))).le(Expr::lit_i32(30)),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(5))),
            aggs: vec![
                AggSpec::Count,
                AggSpec::SumI64(2),
                AggSpec::MinI64(1),
                AggSpec::MaxI64(1),
            ],
            bloom: BloomParams::new(1 << 16, 2).unwrap(),
        }
    }

    #[test]
    fn query_round_trips() {
        let q = sample_query();
        let mut buf = Vec::new();
        put_query(&mut buf, &q);
        let mut d = Decoder::new(&buf);
        let back = query(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn star_round_trips() {
        let s = StarQuery {
            fact_table: "F".into(),
            fact_pred: Expr::col_le(1, 100),
            fact_proj: vec![0, 1, 2, 3],
            fact_keys: vec![0, 2],
            dims: vec![
                DimQuery {
                    table: "D1".into(),
                    pred: Expr::col_le(1, 5),
                    proj: vec![0, 1],
                    key: 0,
                },
                DimQuery {
                    table: "D2".into(),
                    pred: Expr::lit_i32(1).eq(Expr::lit_i32(1)),
                    proj: vec![0],
                    key: 0,
                },
            ],
            post_predicate: None,
            group_expr: Expr::col(1),
            aggs: vec![AggSpec::Count],
        };
        let mut buf = Vec::new();
        put_star(&mut buf, &s);
        let mut d = Decoder::new(&buf);
        let back = star(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn schema_and_datum_round_trip() {
        let s = Schema::from_pairs(&[
            ("k", DataType::I64),
            ("d", DataType::Date),
            ("s", DataType::Utf8),
            ("v", DataType::I32),
        ]);
        let mut buf = Vec::new();
        put_schema(&mut buf, &s);
        for v in [
            Datum::I32(-5),
            Datum::I64(1 << 40),
            Datum::Date(7300),
            Datum::Utf8("url_42/x".into()),
        ] {
            put_datum(&mut buf, &v);
        }
        let mut d = Decoder::new(&buf);
        assert_eq!(schema(&mut d).unwrap(), s);
        assert_eq!(datum(&mut d).unwrap(), Datum::I32(-5));
        assert_eq!(datum(&mut d).unwrap(), Datum::I64(1 << 40));
        assert_eq!(datum(&mut d).unwrap(), Datum::Date(7300));
        assert_eq!(datum(&mut d).unwrap(), Datum::Utf8("url_42/x".into()));
        d.finish().unwrap();
    }

    #[test]
    fn algorithm_tags_round_trip() {
        for a in [
            None,
            Some(JoinAlgorithm::DbSide { bloom: false }),
            Some(JoinAlgorithm::DbSide { bloom: true }),
            Some(JoinAlgorithm::Broadcast),
            Some(JoinAlgorithm::Repartition { bloom: false }),
            Some(JoinAlgorithm::Repartition { bloom: true }),
            Some(JoinAlgorithm::Zigzag),
            Some(JoinAlgorithm::SemiJoin),
            Some(JoinAlgorithm::PerfJoin),
        ] {
            let mut buf = Vec::new();
            put_opt_algorithm(&mut buf, a);
            assert_eq!(opt_algorithm(&mut Decoder::new(&buf)).unwrap(), a);
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_fail_typed() {
        let q = sample_query();
        let mut buf = Vec::new();
        put_query(&mut buf, &q);
        // every proper prefix must fail with a typed error, never panic
        for cut in 0..buf.len() {
            assert!(query(&mut Decoder::new(&buf[..cut])).is_err(), "cut {cut}");
        }
        // flip each byte: typed error or a different (still valid) query,
        // never a panic
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xA5;
            let _ = query(&mut Decoder::new(&bad));
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // a string claiming u32::MAX bytes in a 4-byte payload
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Decoder::new(&buf).str().is_err());
        // a projection list claiming 2^31 entries
        let mut buf = Vec::new();
        put_u32(&mut buf, 1 << 31);
        assert!(Decoder::new(&buf).usize_list().is_err());
    }

    #[test]
    fn expression_recursion_is_capped() {
        // 2000 nested Not() frames: encoder side is our own (trusted)
        // tree built iteratively here, decode must refuse at the cap
        let mut buf = Vec::new();
        for _ in 0..2000 {
            put_u8(&mut buf, 5); // Not
        }
        put_u8(&mut buf, 0); // Col
        put_u32(&mut buf, 0);
        let e = expr(&mut Decoder::new(&buf));
        assert!(e.is_err(), "deep recursion must be refused, not overflow");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_query(&mut buf, &sample_query());
        buf.push(0);
        let mut d = Decoder::new(&buf);
        query(&mut d).unwrap();
        assert!(d.finish().is_err());
    }
}
