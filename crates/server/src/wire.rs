//! The frame layer: length-prefixed, versioned frames over any byte
//! stream.
//!
//! Every message on a connection is one frame:
//!
//! ```text
//! +--------+---------+-----------+-------------+-----------+
//! | magic  | version | frame type| payload len | payload   |
//! | u32 LE |   u8    |    u8     |   u32 LE    | len bytes |
//! +--------+---------+-----------+-------------+-----------+
//! ```
//!
//! The magic pins the protocol (a client that connects to the wrong port
//! fails on the first frame, not mid-stream), the version byte gates
//! incompatible evolutions, and the length prefix bounds every read — a
//! peer can never make the other side read unframed bytes. `payload len`
//! is validated against [`MAX_FRAME`] *before* any allocation, so a
//! corrupt or hostile length can't balloon memory.
//!
//! This module does no I/O multiplexing and holds no state: one frame in,
//! one frame out, over any `Read`/`Write`. The typed payloads live in
//! [`crate::protocol`]; their byte encodings in [`crate::codec`].

use std::io::{Read, Write};

/// `HWJN` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"HWJN");
/// Protocol version this build speaks. A frame with any other version is
/// rejected with [`WireError::BadVersion`].
pub const VERSION: u8 = 1;
/// Frame header bytes: magic + version + type + payload length.
pub const HEADER_LEN: usize = 10;
/// Hard cap on a single frame's payload. Larger results stream as
/// multiple `ResultChunk` frames, so nothing legitimate approaches this.
pub const MAX_FRAME: usize = 64 << 20;

/// Frame discriminator. The numbering is part of the wire contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server: authenticate a tenant. First frame on every
    /// connection.
    Hello = 1,
    /// Server → client: authentication accepted.
    HelloAck = 2,
    /// Client → server: one query submission.
    Query = 3,
    /// Server → client: result stream starts (schema, algorithm).
    ResultHeader = 4,
    /// Server → client: one columnar-encoded slice of result rows.
    ResultChunk = 5,
    /// Server → client: end of stream — row count, latency breakdown,
    /// per-query stats snapshot.
    ResultDone = 6,
    /// Server → client: typed failure for one query (or for the
    /// connection, when `id == u64::MAX`).
    Error = 7,
}

impl FrameType {
    pub fn from_u8(v: u8) -> Option<FrameType> {
        Some(match v {
            1 => FrameType::Hello,
            2 => FrameType::HelloAck,
            3 => FrameType::Query,
            4 => FrameType::ResultHeader,
            5 => FrameType::ResultChunk,
            6 => FrameType::ResultDone,
            7 => FrameType::Error,
            _ => return None,
        })
    }
}

/// Why a frame could not be read. Every variant except `Closed` means the
/// stream is no longer frame-aligned and the connection must be dropped.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The connection died mid-frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`] — not our protocol.
    BadMagic(u32),
    /// A frame from an incompatible protocol version.
    BadVersion(u8),
    /// An unknown frame discriminator.
    BadType(u8),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized { len: usize, max: usize },
    /// The transport failed (includes read-timeout expiry, surfaced as
    /// `WouldBlock`/`TimedOut` by the socket layer).
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "connection died mid-frame"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True when the error is the read timeout (the watchdog tick), not a
    /// dead or misbehaving peer.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Write one frame. The payload must already be encoded (see
/// [`crate::protocol`]); payloads over [`MAX_FRAME`] are a caller bug and
/// rejected here so they can never hit the wire.
pub fn write_frame(w: &mut impl Write, ty: FrameType, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("refusing to send {} byte frame", payload.len()),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = VERSION;
    header[5] = ty as u8;
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Blocks until a full frame arrives, the peer closes, or
/// the transport's read timeout fires (surfaced as a [`WireError::Io`]
/// for which [`WireError::is_timeout`] is true, with no bytes consumed —
/// safe to retry only when nothing has been read yet, which is why the
/// server's watchdog drops the connection instead of retrying mid-frame).
pub fn read_frame(r: &mut impl Read) -> Result<(FrameType, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Read the first byte separately to tell a clean close (EOF between
    // frames) from a mid-frame death.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(WireError::Closed),
        Ok(_) => {}
        Err(e) => return Err(WireError::Io(e)),
    }
    read_exact(r, &mut header[1..])?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = header[4];
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ty = FrameType::from_u8(header[5]).ok_or(WireError::BadType(header[5]))?;
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact(r, &mut payload)?;
    Ok((ty, payload))
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Query, b"hello payload").unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 13);
        let (ty, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(ty, FrameType::Query);
        assert_eq!(payload, b"hello payload");
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::HelloAck, b"").unwrap();
        let (ty, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(ty, FrameType::HelloAck);
        assert!(payload.is_empty());
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_is_truncated() {
        assert!(matches!(
            read_frame(&mut (&[] as &[u8])),
            Err(WireError::Closed)
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Query, b"full payload").unwrap();
        buf.truncate(HEADER_LEN + 4); // die mid-payload
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Truncated)
        ));
        buf.truncate(3); // die mid-header
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn bad_magic_version_type_and_oversize_are_typed() {
        let mut good = Vec::new();
        write_frame(&mut good, FrameType::Hello, b"x").unwrap();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::BadVersion(99))
        ));

        let mut bad = good.clone();
        bad[5] = 0;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::BadType(0))
        ));

        let mut bad = good.clone();
        bad[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        // the length is rejected before any allocation happens
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn oversized_send_is_refused_locally() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut NullSink, FrameType::ResultChunk, &huge).is_err());
    }
}
