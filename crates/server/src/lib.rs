//! The production front door: a framed-TCP serving layer over
//! [`hybrid_service::QueryService`].
//!
//! Four layers, each pinned by its own tests:
//!
//! * [`wire`] — length-prefixed, versioned frames over any byte stream;
//!   hostile lengths rejected before allocation.
//! * [`codec`] — bounds-checked byte encodings for queries, schemas, and
//!   results; corrupt payloads produce typed errors, never panics.
//! * [`protocol`] — the typed message set: hello/ack authentication,
//!   query submission with a deadline, streaming results
//!   (`ResultHeader · ResultChunk* · ResultDone` with the per-query stats
//!   snapshot in the trailer), and typed errors carrying the retryable
//!   bit.
//! * [`server`] / [`client`] — the accept-loop listener with per-tenant
//!   authentication and watchdog-bounded reads, and the blocking client
//!   used by `hwjoin --connect` and the `svc_soak` driver.

pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{ClientError, ClientReply, JoinClient};
pub use protocol::{ErrorCode, QueryBody, QueryFrame, Request, Response, CONNECTION_ID};
pub use server::{JoinServer, ServerConfig, TenantCred};
pub use wire::{FrameType, WireError, MAGIC, MAX_FRAME, VERSION};
