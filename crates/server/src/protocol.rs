//! Typed protocol messages and their frame encodings.
//!
//! A connection's lifecycle:
//!
//! 1. Client sends [`Request::Hello`] (tenant name + token); server
//!    answers [`Response::HelloAck`] or a connection-level
//!    [`Response::Error`] (`id == CONNECTION_ID`) and drops.
//! 2. Client sends [`Request::Query`] frames, one at a time per
//!    connection (pipelining is a protocol-version bump; concurrency
//!    today means more connections). For each query the server answers
//!    either the stream `ResultHeader · ResultChunk* · ResultDone` — rows
//!    arrive in `batch_rows`-sized columnar chunks, the trailer carries
//!    the latency breakdown plus the full per-query stats snapshot — or a
//!    single typed [`Response::Error`] carrying the retryable bit.
//!
//! Every message round-trips through the byte codec in [`crate::codec`];
//! the tests below pin that for each variant.

use crate::codec::{self, CodecError, Decoder};
use crate::wire::FrameType;
use hybrid_common::schema::Schema;
use hybrid_core::{HybridQuery, JoinAlgorithm, MultiwayPlanner, StarQuery};

/// The `id` used by errors that concern the connection itself (failed
/// hello, undecodable frame) rather than any particular query.
pub const CONNECTION_ID: u64 = u64::MAX;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // one Request per frame, never stored in bulk
pub enum Request {
    /// First frame on every connection: authenticate as `tenant`.
    Hello {
        tenant: String,
        token: String,
    },
    Query(QueryFrame),
}

/// One query submission.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFrame {
    /// Client-chosen correlation id, echoed on every response frame.
    pub id: u64,
    /// Queue-wait deadline in milliseconds; 0 means none. Threaded
    /// through to the scheduler (and, later, to early-approximate
    /// answers).
    pub deadline_ms: u64,
    pub body: QueryBody,
}

#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A two-table hybrid join; `algorithm: None` lets the advisor pick.
    Binary {
        query: HybridQuery,
        algorithm: Option<JoinAlgorithm>,
    },
    /// A star-schema multiway join.
    Star {
        star: StarQuery,
        planner: MultiwayPlanner,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Authentication accepted; `tenant_index` is the server-side dense
    /// tenant id (diagnostic only — the client never sends it back).
    HelloAck { tenant_index: u64 },
    /// Result stream opening: the result schema and the algorithm that
    /// produced (or will produce) the rows.
    ResultHeader {
        id: u64,
        schema: Schema,
        algorithm: String,
        from_cache: bool,
    },
    /// One columnar-encoded slice of result rows (decode with the result
    /// schema from the header).
    ResultChunk { id: u64, payload: Vec<u8> },
    /// End of stream: totals and the per-query stats snapshot.
    ResultDone {
        id: u64,
        rows: u64,
        queue_us: u64,
        exec_us: u64,
        latency_us: u64,
        stats: Vec<(String, u64)>,
    },
    /// Typed failure for query `id` (or the connection when
    /// `id == CONNECTION_ID`). `retryable` is the service's own judgment
    /// carried to the client.
    Error {
        id: u64,
        code: ErrorCode,
        retryable: bool,
        message: String,
    },
}

/// Failure taxonomy carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Global admission queue full.
    Rejected = 1,
    /// The tenant's own queue quota is full (always retryable).
    QuotaExceeded = 2,
    /// Queue-wait timeout or deadline expiry.
    TimedOut = 3,
    /// Admitted but execution failed.
    Exec = 4,
    /// The frame decoded but the payload was malformed or invalid.
    BadRequest = 5,
    /// Unknown tenant or wrong token.
    Unauthorized = 6,
}

impl ErrorCode {
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Rejected,
            2 => ErrorCode::QuotaExceeded,
            3 => ErrorCode::TimedOut,
            4 => ErrorCode::Exec,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Unauthorized,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Rejected => "rejected",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::TimedOut => "timed_out",
            ErrorCode::Exec => "exec",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Unauthorized => "unauthorized",
        }
    }
}

impl Request {
    /// Frame type + payload bytes for this message.
    pub fn encode(&self) -> (FrameType, Vec<u8>) {
        let mut out = Vec::new();
        match self {
            Request::Hello { tenant, token } => {
                codec::put_str(&mut out, tenant);
                codec::put_str(&mut out, token);
                (FrameType::Hello, out)
            }
            Request::Query(q) => {
                codec::put_u64(&mut out, q.id);
                codec::put_u64(&mut out, q.deadline_ms);
                match &q.body {
                    QueryBody::Binary { query, algorithm } => {
                        codec::put_u8(&mut out, 0);
                        codec::put_opt_algorithm(&mut out, *algorithm);
                        codec::put_query(&mut out, query);
                    }
                    QueryBody::Star { star, planner } => {
                        codec::put_u8(&mut out, 1);
                        codec::put_planner(&mut out, *planner);
                        codec::put_star(&mut out, star);
                    }
                }
                (FrameType::Query, out)
            }
        }
    }

    /// Decode a client frame. The payload must parse exactly.
    pub fn decode(ty: FrameType, payload: &[u8]) -> Result<Request, CodecError> {
        let mut d = Decoder::new(payload);
        let req = match ty {
            FrameType::Hello => Request::Hello {
                tenant: d.str()?,
                token: d.str()?,
            },
            FrameType::Query => {
                let id = d.u64()?;
                let deadline_ms = d.u64()?;
                let body = match d.u8()? {
                    0 => {
                        let algorithm = codec::opt_algorithm(&mut d)?;
                        let query = codec::query(&mut d)?;
                        QueryBody::Binary { query, algorithm }
                    }
                    1 => {
                        let planner = codec::planner(&mut d)?;
                        let star = codec::star(&mut d)?;
                        QueryBody::Star { star, planner }
                    }
                    t => return Err(CodecError(format!("query body tag {t}"))),
                };
                Request::Query(QueryFrame {
                    id,
                    deadline_ms,
                    body,
                })
            }
            other => return Err(CodecError(format!("frame type {other:?} is not a request"))),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> (FrameType, Vec<u8>) {
        let mut out = Vec::new();
        match self {
            Response::HelloAck { tenant_index } => {
                codec::put_u64(&mut out, *tenant_index);
                (FrameType::HelloAck, out)
            }
            Response::ResultHeader {
                id,
                schema,
                algorithm,
                from_cache,
            } => {
                codec::put_u64(&mut out, *id);
                codec::put_schema(&mut out, schema);
                codec::put_str(&mut out, algorithm);
                codec::put_bool(&mut out, *from_cache);
                (FrameType::ResultHeader, out)
            }
            Response::ResultChunk { id, payload } => {
                codec::put_u64(&mut out, *id);
                codec::put_bytes(&mut out, payload);
                (FrameType::ResultChunk, out)
            }
            Response::ResultDone {
                id,
                rows,
                queue_us,
                exec_us,
                latency_us,
                stats,
            } => {
                codec::put_u64(&mut out, *id);
                codec::put_u64(&mut out, *rows);
                codec::put_u64(&mut out, *queue_us);
                codec::put_u64(&mut out, *exec_us);
                codec::put_u64(&mut out, *latency_us);
                codec::put_u32(&mut out, stats.len() as u32);
                for (k, v) in stats {
                    codec::put_str(&mut out, k);
                    codec::put_u64(&mut out, *v);
                }
                (FrameType::ResultDone, out)
            }
            Response::Error {
                id,
                code,
                retryable,
                message,
            } => {
                codec::put_u64(&mut out, *id);
                codec::put_u8(&mut out, *code as u8);
                codec::put_bool(&mut out, *retryable);
                codec::put_str(&mut out, message);
                (FrameType::Error, out)
            }
        }
    }

    pub fn decode(ty: FrameType, payload: &[u8]) -> Result<Response, CodecError> {
        let mut d = Decoder::new(payload);
        let resp = match ty {
            FrameType::HelloAck => Response::HelloAck {
                tenant_index: d.u64()?,
            },
            FrameType::ResultHeader => Response::ResultHeader {
                id: d.u64()?,
                schema: codec::schema(&mut d)?,
                algorithm: d.str()?,
                from_cache: d.bool()?,
            },
            FrameType::ResultChunk => Response::ResultChunk {
                id: d.u64()?,
                payload: d.bytes()?,
            },
            FrameType::ResultDone => {
                let id = d.u64()?;
                let rows = d.u64()?;
                let queue_us = d.u64()?;
                let exec_us = d.u64()?;
                let latency_us = d.u64()?;
                let n = d.u32()? as usize;
                let mut stats = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let k = d.str()?;
                    let v = d.u64()?;
                    stats.push((k, v));
                }
                Response::ResultDone {
                    id,
                    rows,
                    queue_us,
                    exec_us,
                    latency_us,
                    stats,
                }
            }
            FrameType::Error => Response::Error {
                id: d.u64()?,
                code: {
                    let raw = d.u8()?;
                    ErrorCode::from_u8(raw)
                        .ok_or_else(|| CodecError(format!("error code {raw}")))?
                },
                retryable: d.bool()?,
                message: d.str()?,
            },
            other => {
                return Err(CodecError(format!(
                    "frame type {other:?} is not a response"
                )))
            }
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::datum::DataType;
    use hybrid_common::expr::Expr;
    use hybrid_common::ops::AggSpec;

    fn round_trip_request(r: Request) {
        let (ty, payload) = r.encode();
        assert_eq!(Request::decode(ty, &payload).unwrap(), r);
    }

    fn round_trip_response(r: Response) {
        let (ty, payload) = r.encode();
        assert_eq!(Response::decode(ty, &payload).unwrap(), r);
    }

    fn tiny_query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(1, 3),
            db_proj: vec![0, 1],
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 4),
            hdfs_proj: vec![0, 1],
            hdfs_key: 0,
            post_predicate: None,
            group_expr: Expr::col(1),
            aggs: vec![AggSpec::Count],
            bloom: hybrid_bloom::BloomParams::new(1024, 2).unwrap(),
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            tenant: "acme".into(),
            token: "s3cret".into(),
        });
        round_trip_request(Request::Query(QueryFrame {
            id: 42,
            deadline_ms: 1500,
            body: QueryBody::Binary {
                query: tiny_query(),
                algorithm: Some(JoinAlgorithm::Zigzag),
            },
        }));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::HelloAck { tenant_index: 3 });
        round_trip_response(Response::ResultHeader {
            id: 7,
            schema: Schema::from_pairs(&[("g", DataType::I32), ("count", DataType::I64)]),
            algorithm: "repartition(BF)".into(),
            from_cache: true,
        });
        round_trip_response(Response::ResultChunk {
            id: 7,
            payload: vec![1, 2, 3, 4, 5],
        });
        round_trip_response(Response::ResultDone {
            id: 7,
            rows: 12345,
            queue_us: 17,
            exec_us: 400,
            latency_us: 417,
            stats: vec![("net.cross.bytes".into(), 99), ("svc.retries".into(), 1)],
        });
        round_trip_response(Response::Error {
            id: CONNECTION_ID,
            code: ErrorCode::QuotaExceeded,
            retryable: true,
            message: "tenant acme over quota: 8 queued (max 8)".into(),
        });
    }

    #[test]
    fn request_response_frame_types_do_not_cross() {
        let (ty, payload) = Response::HelloAck { tenant_index: 0 }.encode();
        assert!(Request::decode(ty, &payload).is_err());
        let (ty, payload) = Request::Hello {
            tenant: "a".into(),
            token: "b".into(),
        }
        .encode();
        assert!(Response::decode(ty, &payload).is_err());
    }

    #[test]
    fn trailing_bytes_rejected_at_the_message_layer() {
        let (ty, mut payload) = Request::Hello {
            tenant: "a".into(),
            token: "b".into(),
        }
        .encode();
        payload.push(0xFF);
        assert!(Request::decode(ty, &payload).is_err());
    }
}
