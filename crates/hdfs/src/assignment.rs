//! Locality-aware balanced block assignment (paper §4.2).
//!
//! "When the JEN coordinator assigns the HDFS blocks to workers, it
//! carefully considers the locations of each HDFS block to create balanced
//! assignments and maximize the locality of data in a best-effort manner."
//!
//! JEN runs one worker per DataNode, so worker `i` is co-located with
//! DataNode `i`. The assignment must (a) give every worker an even share —
//! within one block of `ceil(total/workers)` — and (b) among balanced
//! assignments, maximize the number of blocks read from a local replica.

use crate::cluster::BlockMeta;
use hybrid_common::ids::BlockId;
#[cfg(test)]
use hybrid_common::ids::DataNodeId;

/// Outcome statistics of an assignment, used in tests and reported by the
/// coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignmentStats {
    pub total_blocks: usize,
    /// Blocks whose assigned worker is co-located with a replica.
    pub local_blocks: usize,
    pub max_per_worker: usize,
    pub min_per_worker: usize,
}

impl AssignmentStats {
    pub fn locality_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            return 1.0;
        }
        self.local_blocks as f64 / self.total_blocks as f64
    }
}

/// Assign `blocks` to `num_workers` workers (worker `i` ⇔ DataNode `i`).
///
/// Two passes:
/// 1. **local pass** — every block is offered to the *least-loaded* worker
///    co-located with one of its replicas, provided that worker is still
///    under the per-worker cap `ceil(total/num_workers)`;
/// 2. **spill pass** — blocks that could not be placed locally go to the
///    globally least-loaded worker.
///
/// Returns the per-worker block lists and the stats.
pub fn assign_blocks(
    blocks: &[BlockMeta],
    num_workers: usize,
) -> (Vec<Vec<BlockId>>, AssignmentStats) {
    assert!(num_workers > 0, "need at least one worker");
    let cap = blocks.len().div_ceil(num_workers);
    let mut assignment: Vec<Vec<BlockId>> = vec![Vec::new(); num_workers];
    let mut load = vec![0usize; num_workers];
    let mut local_blocks = 0usize;
    let mut spill: Vec<&BlockMeta> = Vec::new();

    // Pass 1: prefer local placement under the cap. Process blocks in order
    // of fewest co-located candidate workers first, so constrained blocks
    // grab their only local slot before flexible ones fill it.
    let mut ordered: Vec<&BlockMeta> = blocks.iter().collect();
    ordered.sort_by_key(|b| {
        b.locations
            .iter()
            .filter(|dn| dn.index() < num_workers)
            .count()
    });
    for block in ordered {
        let candidate = block
            .locations
            .iter()
            .filter(|dn| dn.index() < num_workers)
            .map(|dn| dn.index())
            .filter(|&w| load[w] < cap)
            .min_by_key(|&w| load[w]);
        match candidate {
            Some(w) => {
                assignment[w].push(block.id);
                load[w] += 1;
                local_blocks += 1;
            }
            None => spill.push(block),
        }
    }

    // Pass 2: spill to least-loaded workers.
    for block in spill {
        let w = (0..num_workers)
            .min_by_key(|&w| load[w])
            .expect("non-empty");
        assignment[w].push(block.id);
        load[w] += 1;
    }

    let stats = AssignmentStats {
        total_blocks: blocks.len(),
        local_blocks,
        max_per_worker: load.iter().copied().max().unwrap_or(0),
        min_per_worker: load.iter().copied().min().unwrap_or(0),
    };
    (assignment, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: usize, locs: &[usize]) -> BlockMeta {
        BlockMeta {
            id: BlockId(id),
            size: 1,
            locations: locs.iter().copied().map(DataNodeId).collect(),
        }
    }

    #[test]
    fn empty_input() {
        let (a, s) = assign_blocks(&[], 4);
        assert_eq!(a.len(), 4);
        assert_eq!(s.total_blocks, 0);
        assert_eq!(s.locality_fraction(), 1.0);
    }

    #[test]
    fn perfectly_local_when_possible() {
        // one block per node, each with a replica there
        let blocks: Vec<BlockMeta> = (0..8).map(|i| meta(i, &[i, (i + 1) % 8])).collect();
        let (a, s) = assign_blocks(&blocks, 8);
        assert_eq!(s.local_blocks, 8);
        assert_eq!(s.max_per_worker, 1);
        assert!(a.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn balance_is_enforced_even_when_locality_suffers() {
        // all blocks live on node 0 only: balance must still spread them
        let blocks: Vec<BlockMeta> = (0..12).map(|i| meta(i, &[0])).collect();
        let (_, s) = assign_blocks(&blocks, 4);
        assert_eq!(s.max_per_worker, 3);
        assert_eq!(s.min_per_worker, 3);
        // only cap-many can be local
        assert_eq!(s.local_blocks, 3);
    }

    #[test]
    fn constrained_blocks_get_priority_for_their_slot() {
        // Block A can only be local on node 0; blocks B and C can be local
        // on either node. With cap 2 per worker (3 blocks, 2 workers),
        // A must get node 0.
        let blocks = vec![meta(0, &[0]), meta(1, &[0, 1]), meta(2, &[0, 1])];
        let (_, s) = assign_blocks(&blocks, 2);
        assert_eq!(s.local_blocks, 3, "all three should be local");
    }

    #[test]
    fn replicas_on_nonworker_nodes_are_ignored() {
        // locations point past the worker range (e.g. decommissioned nodes)
        let blocks = vec![meta(0, &[7, 9]), meta(1, &[8])];
        let (a, s) = assign_blocks(&blocks, 2);
        assert_eq!(s.local_blocks, 0);
        assert_eq!(a[0].len() + a[1].len(), 2);
    }

    #[test]
    fn large_random_layout_is_balanced_and_mostly_local() {
        // 30 nodes, replication 2, 300 blocks — the paper's shape.
        use hybrid_common::hash::splitmix64;
        let blocks: Vec<BlockMeta> = (0..300)
            .map(|i| {
                let a = (splitmix64(i as u64) % 30) as usize;
                let mut b = (splitmix64(i as u64 ^ 0xABCD) % 30) as usize;
                if b == a {
                    b = (b + 1) % 30;
                }
                meta(i, &[a, b])
            })
            .collect();
        let (_, s) = assign_blocks(&blocks, 30);
        assert_eq!(s.max_per_worker, 10);
        assert!(s.min_per_worker >= 9);
        assert!(
            s.locality_fraction() > 0.9,
            "locality {}",
            s.locality_fraction()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// Every block assigned exactly once, and load spread is within one
        /// of perfect balance.
        #[test]
        fn assignment_is_a_balanced_partition(
            n_workers in 1usize..12,
            locs in proptest::collection::vec(
                proptest::collection::vec(0usize..12, 1..3), 0..60),
        ) {
            let blocks: Vec<BlockMeta> = locs
                .iter()
                .enumerate()
                .map(|(i, l)| BlockMeta {
                    id: BlockId(i),
                    size: 1,
                    locations: l.iter().copied().map(DataNodeId).collect(),
                })
                .collect();
            let (a, s) = assign_blocks(&blocks, n_workers);
            let mut seen = HashSet::new();
            for w in &a {
                for id in w {
                    prop_assert!(seen.insert(*id), "block assigned twice");
                }
            }
            prop_assert_eq!(seen.len(), blocks.len());
            prop_assert!(s.max_per_worker <= blocks.len().div_ceil(n_workers));
        }
    }
}
