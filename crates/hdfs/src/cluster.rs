//! NameNode + DataNodes with replicated block storage.

use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::{BlockId, DataNodeId};
use hybrid_common::metrics::{CounterId, Metrics};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Metadata the NameNode hands out per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    pub id: BlockId,
    pub size: usize,
    /// DataNodes holding a replica (all distinct).
    pub locations: Vec<DataNodeId>,
}

#[derive(Debug)]
struct DataNode {
    alive: bool,
    blocks: HashMap<BlockId, Arc<Vec<u8>>>,
}

/// The simulated HDFS cluster: one NameNode worth of metadata plus the
/// DataNodes' actual block bytes.
///
/// Placement policy: each block's `replication` replicas land on distinct
/// DataNodes chosen by a seeded RNG, so layouts are reproducible across
/// experiment runs.
#[derive(Debug)]
pub struct HdfsCluster {
    datanodes: Vec<DataNode>,
    replication: usize,
    /// file path -> ordered block ids
    files: HashMap<String, Vec<BlockId>>,
    /// block id -> metadata
    blocks: HashMap<BlockId, BlockMeta>,
    next_block: usize,
    rng: StdRng,
    metrics: Metrics,
    /// Pre-registered ids for the block-read hot path (every scanned block
    /// meters two of these).
    ctr_local_bytes: CounterId,
    ctr_local_blocks: CounterId,
    ctr_remote_bytes: CounterId,
    ctr_remote_blocks: CounterId,
}

impl HdfsCluster {
    /// Create a cluster of `num_datanodes` nodes with the given replication
    /// factor (the paper uses 30 DataNodes, replication 2).
    pub fn new(num_datanodes: usize, replication: usize, metrics: Metrics) -> Result<HdfsCluster> {
        if num_datanodes == 0 {
            return Err(HybridError::config("HDFS needs at least one DataNode"));
        }
        if replication == 0 || replication > num_datanodes {
            return Err(HybridError::config(format!(
                "replication {replication} invalid for {num_datanodes} DataNodes"
            )));
        }
        Ok(HdfsCluster {
            datanodes: (0..num_datanodes)
                .map(|_| DataNode {
                    alive: true,
                    blocks: HashMap::new(),
                })
                .collect(),
            replication,
            files: HashMap::new(),
            blocks: HashMap::new(),
            next_block: 0,
            rng: StdRng::seed_from_u64(0x4DF5_0001),
            ctr_local_bytes: metrics.register("hdfs.read.local_bytes"),
            ctr_local_blocks: metrics.register("hdfs.read.local_blocks"),
            ctr_remote_bytes: metrics.register("hdfs.read.remote_bytes"),
            ctr_remote_blocks: metrics.register("hdfs.read.remote_blocks"),
            metrics,
        })
    }

    pub fn num_datanodes(&self) -> usize {
        self.datanodes.len()
    }

    pub fn replication(&self) -> usize {
        self.replication
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Write a file as a sequence of pre-encoded blocks. Replaces any
    /// existing file at `path`.
    pub fn write_file(&mut self, path: &str, block_payloads: Vec<Vec<u8>>) -> Result<()> {
        if let Some(old) = self.files.remove(path) {
            for id in old {
                if let Some(meta) = self.blocks.remove(&id) {
                    for dn in meta.locations {
                        self.datanodes[dn.index()].blocks.remove(&id);
                    }
                }
            }
        }
        let mut ids = Vec::with_capacity(block_payloads.len());
        let all_nodes: Vec<DataNodeId> = (0..self.datanodes.len()).map(DataNodeId).collect();
        for payload in block_payloads {
            let id = BlockId(self.next_block);
            self.next_block += 1;
            let mut locations = all_nodes.clone();
            locations.shuffle(&mut self.rng);
            locations.truncate(self.replication);
            let bytes = Arc::new(payload);
            for &dn in &locations {
                self.datanodes[dn.index()]
                    .blocks
                    .insert(id, Arc::clone(&bytes));
            }
            self.blocks.insert(
                id,
                BlockMeta {
                    id,
                    size: bytes.len(),
                    locations,
                },
            );
            ids.push(id);
        }
        self.files.insert(path.to_string(), ids);
        Ok(())
    }

    /// NameNode lookup: ordered block metadata of a file.
    pub fn file_blocks(&self, path: &str) -> Result<Vec<BlockMeta>> {
        let ids = self
            .files
            .get(path)
            .ok_or_else(|| HybridError::Storage(format!("no such HDFS file: {path}")))?;
        Ok(ids.iter().map(|id| self.blocks[id].clone()).collect())
    }

    /// Total size of a file in bytes.
    pub fn file_size(&self, path: &str) -> Result<usize> {
        Ok(self.file_blocks(path)?.iter().map(|b| b.size).sum())
    }

    pub fn file_exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Read a block from the perspective of a reader co-located with
    /// DataNode `reader` (JEN workers run one per DataNode).
    ///
    /// Prefers a local replica (short-circuit read); falls back to any live
    /// remote replica. Metrics record `hdfs.read.local_bytes` vs
    /// `hdfs.read.remote_bytes`, which the cost model prices differently.
    pub fn read_block(&self, id: BlockId, reader: DataNodeId) -> Result<Arc<Vec<u8>>> {
        self.read_block_metered(id, reader, &self.metrics)
    }

    /// [`HdfsCluster::read_block`], metering into `metrics` instead of the
    /// cluster's own registry. Per-query sessions read shared HDFS state
    /// through this so each query's `hdfs.read.*` counters stay isolated.
    pub fn read_block_into(
        &self,
        id: BlockId,
        reader: DataNodeId,
        metrics: &Metrics,
    ) -> Result<Arc<Vec<u8>>> {
        self.read_block_metered(id, reader, metrics)
    }

    fn read_block_metered(
        &self,
        id: BlockId,
        reader: DataNodeId,
        metrics: &Metrics,
    ) -> Result<Arc<Vec<u8>>> {
        // When metering the cluster's own registry, use the pre-registered
        // ids (the single-query hot path); foreign registries resolve names.
        let own = metrics.same_registry(&self.metrics);
        let meter = |bytes: u64, local: bool| {
            if own {
                let (b, n) = if local {
                    (self.ctr_local_bytes, self.ctr_local_blocks)
                } else {
                    (self.ctr_remote_bytes, self.ctr_remote_blocks)
                };
                metrics.add_id(b, bytes);
                metrics.incr_id(n);
            } else if local {
                metrics.add("hdfs.read.local_bytes", bytes);
                metrics.add("hdfs.read.local_blocks", 1);
            } else {
                metrics.add("hdfs.read.remote_bytes", bytes);
                metrics.add("hdfs.read.remote_blocks", 1);
            }
        };
        let meta = self
            .blocks
            .get(&id)
            .ok_or_else(|| HybridError::Storage(format!("unknown block {id}")))?;
        // local replica first
        if meta.locations.contains(&reader) && self.datanodes[reader.index()].alive {
            let bytes = self.datanodes[reader.index()]
                .blocks
                .get(&id)
                .expect("namenode/datanode metadata out of sync");
            meter(bytes.len() as u64, true);
            return Ok(Arc::clone(bytes));
        }
        for &dn in &meta.locations {
            if self.datanodes[dn.index()].alive {
                let bytes = self.datanodes[dn.index()]
                    .blocks
                    .get(&id)
                    .expect("namenode/datanode metadata out of sync");
                meter(bytes.len() as u64, false);
                return Ok(Arc::clone(bytes));
            }
        }
        Err(HybridError::Storage(format!(
            "all replicas of {id} are on dead DataNodes"
        )))
    }

    /// Failure injection: take a DataNode offline.
    pub fn kill_datanode(&mut self, dn: DataNodeId) {
        if let Some(node) = self.datanodes.get_mut(dn.index()) {
            node.alive = false;
        }
    }

    /// Bring a DataNode back (replicas it held become readable again).
    pub fn revive_datanode(&mut self, dn: DataNodeId) {
        if let Some(node) = self.datanodes.get_mut(dn.index()) {
            node.alive = true;
        }
    }

    pub fn is_alive(&self, dn: DataNodeId) -> bool {
        self.datanodes.get(dn.index()).is_some_and(|n| n.alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, r: usize) -> HdfsCluster {
        HdfsCluster::new(n, r, Metrics::new()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(HdfsCluster::new(0, 1, Metrics::new()).is_err());
        assert!(HdfsCluster::new(3, 0, Metrics::new()).is_err());
        assert!(HdfsCluster::new(3, 4, Metrics::new()).is_err());
        assert!(HdfsCluster::new(3, 3, Metrics::new()).is_ok());
    }

    #[test]
    fn write_and_read_roundtrip() {
        let mut c = cluster(5, 2);
        c.write_file("/t/l", vec![vec![1, 2, 3], vec![4, 5]])
            .unwrap();
        let blocks = c.file_blocks("/t/l").unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(c.file_size("/t/l").unwrap(), 5);
        for b in &blocks {
            assert_eq!(b.locations.len(), 2);
            let mut sorted = b.locations.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 2, "replicas must be on distinct nodes");
            let bytes = c.read_block(b.id, b.locations[0]).unwrap();
            assert_eq!(bytes.len(), b.size);
        }
    }

    #[test]
    fn local_reads_preferred_and_metered() {
        let m = Metrics::new();
        let mut c = HdfsCluster::new(4, 2, m.clone()).unwrap();
        c.write_file("/f", vec![vec![9; 100]]).unwrap();
        let b = &c.file_blocks("/f").unwrap()[0];
        // read from a replica holder: local
        c.read_block(b.id, b.locations[0]).unwrap();
        assert_eq!(m.get("hdfs.read.local_bytes"), 100);
        // read from a non-holder: remote
        let outsider = (0..4)
            .map(DataNodeId)
            .find(|dn| !b.locations.contains(dn))
            .unwrap();
        c.read_block(b.id, outsider).unwrap();
        assert_eq!(m.get("hdfs.read.remote_bytes"), 100);
    }

    #[test]
    fn failure_falls_back_to_surviving_replica() {
        let mut c = cluster(4, 2);
        c.write_file("/f", vec![vec![7; 10]]).unwrap();
        let b = c.file_blocks("/f").unwrap()[0].clone();
        c.kill_datanode(b.locations[0]);
        assert!(!c.is_alive(b.locations[0]));
        // reading "from" the dead node's position falls back to the replica
        let bytes = c.read_block(b.id, b.locations[0]).unwrap();
        assert_eq!(bytes.len(), 10);
        // kill the second replica too: now unreadable
        c.kill_datanode(b.locations[1]);
        assert!(c.read_block(b.id, b.locations[0]).is_err());
        c.revive_datanode(b.locations[1]);
        assert!(c.read_block(b.id, b.locations[0]).is_ok());
    }

    #[test]
    fn rewrite_replaces_file_and_frees_old_blocks() {
        let mut c = cluster(3, 1);
        c.write_file("/f", vec![vec![1]]).unwrap();
        let old = c.file_blocks("/f").unwrap()[0].clone();
        c.write_file("/f", vec![vec![2, 2]]).unwrap();
        assert_eq!(c.file_size("/f").unwrap(), 2);
        assert!(c.read_block(old.id, old.locations[0]).is_err());
    }

    #[test]
    fn missing_file_errors() {
        let c = cluster(2, 1);
        assert!(c.file_blocks("/nope").is_err());
        assert!(!c.file_exists("/nope"));
    }

    #[test]
    fn placement_spreads_blocks() {
        let mut c = cluster(10, 2);
        c.write_file("/big", (0..200).map(|i| vec![i as u8; 4]).collect())
            .unwrap();
        let blocks = c.file_blocks("/big").unwrap();
        let mut per_node = vec![0usize; 10];
        for b in &blocks {
            for dn in &b.locations {
                per_node[dn.index()] += 1;
            }
        }
        // 400 replicas over 10 nodes: each node should hold a fair share
        assert!(per_node.iter().all(|&n| n > 15 && n < 70), "{per_node:?}");
    }
}
