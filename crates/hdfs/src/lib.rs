//! A simulated HDFS: NameNode metadata, DataNode block storage, replica
//! placement, and the locality-aware balanced block assignment that JEN's
//! coordinator performs (paper §4.2).
//!
//! The simulation stores real bytes (encoded by `hybrid-storage`) and
//! reproduces the properties the join algorithms observe:
//!
//! * files are sequences of replicated blocks; the NameNode knows where the
//!   replicas live ([`cluster::HdfsCluster::file_blocks`]);
//! * scan-based access only — there is no record-level index, matching the
//!   paper's assumption about HQP engines (§2);
//! * reads are **local** (short-circuit) when the reader sits on a DataNode
//!   holding a replica, **remote** otherwise; both are metered so the cost
//!   model can price them differently;
//! * DataNodes can be killed for failure-injection tests; reads fall back to
//!   surviving replicas and error only when none remain.
//!
//! The [`assignment`] module implements the coordinator's balanced,
//! best-effort-local assignment of blocks to JEN workers, and [`catalog`]
//! is the HCatalog stand-in mapping table names to paths, formats, and
//! schemas.

pub mod assignment;
pub mod catalog;
pub mod cluster;

pub use assignment::{assign_blocks, AssignmentStats};
pub use catalog::{Catalog, TableMeta};
pub use cluster::{BlockMeta, HdfsCluster};
