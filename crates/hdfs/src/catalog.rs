//! HCatalog stand-in: table name → (HDFS path, input format, schema).
//!
//! The paper's JEN coordinator "is responsible for retrieving the meta data
//! (HDFS path, input format, etc.) for HDFS tables from HCatalog" (§4.1).

use hybrid_common::error::{HybridError, Result};
use hybrid_common::schema::Schema;
use hybrid_storage::FileFormat;
use std::collections::HashMap;

/// Metadata for one HDFS-resident table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    pub name: String,
    pub path: String,
    pub format: FileFormat,
    pub schema: Schema,
}

/// A registry of HDFS table metadata.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, TableMeta>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, meta: TableMeta) {
        self.tables.insert(meta.name.clone(), meta);
    }

    /// Look up a table by name.
    pub fn lookup(&self, name: &str) -> Result<&TableMeta> {
        self.tables
            .get(name)
            .ok_or_else(|| HybridError::Storage(format!("table {name:?} not in catalog")))
    }

    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::datum::DataType;

    fn meta(name: &str) -> TableMeta {
        TableMeta {
            name: name.to_string(),
            path: format!("/warehouse/{name}"),
            format: FileFormat::Columnar,
            schema: Schema::from_pairs(&[("joinKey", DataType::I32)]),
        }
    }

    #[test]
    fn register_lookup_drop() {
        let mut c = Catalog::new();
        assert!(c.lookup("L").is_err());
        c.register(meta("L"));
        assert_eq!(c.lookup("L").unwrap().path, "/warehouse/L");
        assert!(c.drop_table("L"));
        assert!(!c.drop_table("L"));
        assert!(c.lookup("L").is_err());
    }

    #[test]
    fn replace_updates_format() {
        let mut c = Catalog::new();
        c.register(meta("L"));
        let mut m = meta("L");
        m.format = FileFormat::Text;
        c.register(m);
        assert_eq!(c.lookup("L").unwrap().format, FileFormat::Text);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register(meta("zeta"));
        c.register(meta("alpha"));
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }
}
