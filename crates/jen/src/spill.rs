//! Grace hash join with spill-to-disk.
//!
//! The paper's JEN "requires that all data fit in memory for the local
//! hash-based join on each worker. In the future, we plan to support
//! spilling to disk to overcome this limitation" (§4.4). This module is
//! that future work: when the build side exceeds a row budget, both sides
//! are hash-partitioned into on-disk runs (encoded with the columnar
//! format), and partitions are joined one at a time — classic grace hash
//! join. Partitioning on the join key guarantees matching rows land in the
//! same partition, so the result equals the in-memory join exactly.

use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::hash_key_seeded;
use hybrid_common::metrics::Metrics;
use hybrid_common::ops::{partition_by_key, HashJoiner};
use hybrid_common::schema::Schema;
use hybrid_storage::columnar;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed for the spill partitioning hash — distinct from both the agreed
/// shuffle hash and the DB partitioning hash, so spill partitions are
/// uncorrelated with how rows were routed to this worker.
const SPILL_SEED: u64 = 0x5B11_1ED0_0000_0001;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn spill_partition(key: i64, n: usize) -> usize {
    (hash_key_seeded(key, SPILL_SEED) % n as u64) as usize
}

/// One side's on-disk runs: a file per partition of length-prefixed
/// columnar-encoded batches.
///
/// Carries its own [`Metrics`] handle so the `jen.spill.files_created` /
/// `jen.spill.files_removed` pair balances even when cleanup happens in
/// [`Drop`] on an error path (e.g. a fault-injected worker kill between
/// the spill-write and spill-read phases): any imbalance means orphaned
/// partition files.
struct SpillSide {
    schema: Schema,
    key_col: usize,
    files: Vec<PathBuf>,
    /// Which partition files have actually been created on disk.
    written: Vec<bool>,
    rows: usize,
    metrics: Metrics,
}

impl SpillSide {
    fn create(
        schema: Schema,
        key_col: usize,
        dir: &Path,
        tag: &str,
        parts: usize,
        metrics: Metrics,
    ) -> Result<SpillSide> {
        let run = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let files: Vec<PathBuf> = (0..parts)
            .map(|p| {
                dir.join(format!(
                    "hybrid-spill-{}-{run}-{tag}-{p}.col",
                    std::process::id()
                ))
            })
            .collect();
        Ok(SpillSide {
            schema,
            key_col,
            written: vec![false; files.len()],
            files,
            rows: 0,
            metrics,
        })
    }

    fn append(&mut self, batch: &Batch) -> Result<()> {
        let parts = partition_by_key(batch, self.key_col, self.files.len(), spill_partition)?;
        for (p, (path, part)) in self.files.iter().zip(parts).enumerate() {
            if part.is_empty() {
                continue;
            }
            let payload = columnar::encode(&part);
            let mut f = File::options()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| HybridError::Storage(format!("spill open {path:?}: {e}")))?;
            if !self.written[p] {
                self.written[p] = true;
                self.metrics.incr("jen.spill.files_created");
            }
            f.write_all(&(payload.len() as u32).to_le_bytes())
                .and_then(|()| f.write_all(&payload))
                .map_err(|e| HybridError::Storage(format!("spill write: {e}")))?;
            self.metrics
                .add("jen.spill.bytes_written", (payload.len() + 4) as u64);
        }
        self.rows += batch.num_rows();
        Ok(())
    }

    fn read_partition(&self, p: usize) -> Result<Vec<Batch>> {
        let path = &self.files[p];
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| HybridError::Storage(format!("spill read: {e}")))?;
            }
            Err(_) => return Ok(Vec::new()), // partition never received rows
        }
        self.metrics.add("jen.spill.bytes_read", bytes.len() as u64);
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            if pos + 4 > bytes.len() {
                return Err(HybridError::Storage("spill run truncated".into()));
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            let chunk = bytes
                .get(pos..pos + len)
                .ok_or_else(|| HybridError::Storage("spill chunk truncated".into()))?;
            pos += len;
            let (batch, _) = columnar::decode(&self.schema, chunk, None)?;
            out.push(batch);
        }
        Ok(out)
    }

    fn cleanup(&mut self) {
        for (p, f) in self.files.iter().enumerate() {
            if fs::remove_file(f).is_ok() && self.written[p] {
                self.written[p] = false;
                self.metrics.incr("jen.spill.files_removed");
            }
        }
    }
}

impl Drop for SpillSide {
    fn drop(&mut self) {
        self.cleanup();
    }
}

/// A hash join that holds the build side in memory while it fits and
/// gracefully degrades to partitioned on-disk runs when it does not.
pub struct GraceHashJoiner {
    build_schema: Schema,
    build_key: usize,
    max_in_memory_rows: usize,
    num_partitions: usize,
    spill_dir: PathBuf,
    metrics: Metrics,
    /// In-memory mode state (until the budget is blown).
    mem_build: Vec<Batch>,
    mem_rows: usize,
    /// Spill mode state. The probe run is created lazily on the first
    /// probe batch after spilling, so its schema is always the real one.
    spilled_build: Option<SpillSide>,
    spilled_probe: Option<SpillSide>,
    probe_schema: Option<Schema>,
    probe_key: Option<usize>,
    /// Probe batches that arrive while still in memory mode are joined
    /// immediately on [`GraceHashJoiner::finish`]; in spill mode they go to
    /// disk. We therefore buffer probes until finish in memory mode.
    mem_probe: Vec<Batch>,
}

impl GraceHashJoiner {
    pub fn new(
        build_schema: Schema,
        build_key: usize,
        max_in_memory_rows: usize,
        num_partitions: usize,
        metrics: Metrics,
    ) -> Result<GraceHashJoiner> {
        if num_partitions == 0 {
            return Err(HybridError::config(
                "grace join needs at least one partition",
            ));
        }
        Ok(GraceHashJoiner {
            build_schema,
            build_key,
            max_in_memory_rows,
            num_partitions,
            spill_dir: std::env::temp_dir(),
            metrics,
            mem_build: Vec::new(),
            mem_rows: 0,
            spilled_build: None,
            spilled_probe: None,
            probe_schema: None,
            probe_key: None,
            mem_probe: Vec::new(),
        })
    }

    /// Whether the join has degraded to on-disk partitions.
    pub fn is_spilled(&self) -> bool {
        self.spilled_build.is_some()
    }

    /// Feed a build-side batch.
    pub fn add_build(&mut self, batch: Batch) -> Result<()> {
        if batch.schema() != &self.build_schema {
            return Err(HybridError::SchemaMismatch(
                "grace join build schema".into(),
            ));
        }
        if let Some(build) = &mut self.spilled_build {
            return build.append(&batch);
        }
        self.mem_rows += batch.num_rows();
        self.mem_build.push(batch);
        if self.mem_rows > self.max_in_memory_rows {
            self.spill_now()?;
        }
        Ok(())
    }

    /// Feed a probe-side batch. The first probe batch fixes the probe schema
    /// and key column.
    pub fn add_probe(&mut self, batch: Batch, probe_key: usize) -> Result<()> {
        match (&self.probe_schema, &self.probe_key) {
            (None, _) => {
                self.probe_schema = Some(batch.schema().clone());
                self.probe_key = Some(probe_key);
            }
            (Some(s), Some(k)) => {
                if s != batch.schema() || *k != probe_key {
                    return Err(HybridError::SchemaMismatch(
                        "grace join probe schema/key changed mid-stream".into(),
                    ));
                }
            }
            _ => unreachable!(),
        }
        if self.spilled_build.is_some() {
            if self.spilled_probe.is_none() {
                self.spilled_probe = Some(SpillSide::create(
                    batch.schema().clone(),
                    probe_key,
                    &self.spill_dir,
                    "probe",
                    self.num_partitions,
                    self.metrics.clone(),
                )?);
            }
            self.spilled_probe
                .as_mut()
                .expect("just created")
                .append(&batch)
        } else {
            self.mem_probe.push(batch);
            Ok(())
        }
    }

    fn spill_now(&mut self) -> Result<()> {
        let mut build_side = SpillSide::create(
            self.build_schema.clone(),
            self.build_key,
            &self.spill_dir,
            "build",
            self.num_partitions,
            self.metrics.clone(),
        )?;
        for b in self.mem_build.drain(..) {
            build_side.append(&b)?;
        }
        // Probe batches buffered in memory mode move to disk too; the
        // probe run is created here only if its schema is already known.
        if let (Some(schema), Some(key)) = (self.probe_schema.clone(), self.probe_key) {
            let mut probe_side = SpillSide::create(
                schema,
                key,
                &self.spill_dir,
                "probe",
                self.num_partitions,
                self.metrics.clone(),
            )?;
            for b in self.mem_probe.drain(..) {
                probe_side.append(&b)?;
            }
            self.spilled_probe = Some(probe_side);
        }
        self.metrics.incr("jen.spill.activations");
        self.spilled_build = Some(build_side);
        self.mem_rows = 0;
        Ok(())
    }

    /// Run the join and return the concatenated output
    /// (`build_row ++ probe_row`, like [`HashJoiner::probe`]).
    pub fn finish(self) -> Result<Batch> {
        let probe_key = match self.probe_key {
            Some(k) => k,
            None => {
                // no probe data at all: empty output with the joined schema
                let probe_schema = self
                    .probe_schema
                    .unwrap_or_else(|| self.build_schema.clone());
                return Ok(Batch::empty(self.build_schema.join(&probe_schema)));
            }
        };
        match self.spilled_build {
            None => {
                let mut joiner = HashJoiner::new(self.build_schema.clone(), self.build_key);
                for b in self.mem_build {
                    joiner.build(b)?;
                }
                let probe_schema = self.probe_schema.expect("probe_key implies schema");
                let outs: Vec<Batch> = self
                    .mem_probe
                    .iter()
                    .map(|p| joiner.probe(p, probe_key))
                    .collect::<Result<_>>()?;
                Batch::concat(self.build_schema.join(&probe_schema), &outs)
            }
            Some(build_side) => {
                let probe_schema = self.probe_schema.expect("probe_key implies schema");
                let out_schema = self.build_schema.join(&probe_schema);
                let mut outs: Vec<Batch> = Vec::new();
                if let Some(probe_side) = &self.spilled_probe {
                    for p in 0..self.num_partitions {
                        let build_batches = build_side.read_partition(p)?;
                        if build_batches.is_empty() {
                            continue;
                        }
                        let mut joiner = HashJoiner::new(self.build_schema.clone(), self.build_key);
                        for b in build_batches {
                            joiner.build(b)?;
                        }
                        for pb in probe_side.read_partition(p)? {
                            outs.push(joiner.probe(&pb, probe_key)?);
                        }
                    }
                }
                Batch::concat(out_schema, &outs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;

    fn build_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)])
    }

    fn probe_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("s", DataType::Utf8)])
    }

    fn build_batch(range: std::ops::Range<i32>) -> Batch {
        Batch::new(
            build_schema(),
            vec![
                Column::I32(range.clone().collect()),
                Column::I64(range.map(i64::from).map(|v| v * 10).collect()),
            ],
        )
        .unwrap()
    }

    fn probe_batch(keys: &[i32]) -> Batch {
        Batch::new(
            probe_schema(),
            vec![
                Column::I32(keys.to_vec()),
                Column::Utf8(keys.iter().map(|k| format!("p{k}")).collect()),
            ],
        )
        .unwrap()
    }

    fn reference_join(build: &Batch, probe: &Batch) -> Batch {
        let mut j = HashJoiner::new(build.schema().clone(), 0);
        j.build(build.clone()).unwrap();
        j.probe(probe, 0).unwrap()
    }

    fn sorted_rows(b: &Batch) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..b.num_rows())
            .map(|r| b.row(r).iter().map(|d| d.to_string()).collect())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn in_memory_path_matches_reference() {
        let m = Metrics::new();
        let mut g = GraceHashJoiner::new(build_schema(), 0, 1000, 4, m.clone()).unwrap();
        g.add_build(build_batch(0..50)).unwrap();
        g.add_probe(probe_batch(&[1, 2, 99, 2]), 0).unwrap();
        assert!(!g.is_spilled());
        let out = g.finish().unwrap();
        let expected = reference_join(&build_batch(0..50), &probe_batch(&[1, 2, 99, 2]));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert_eq!(m.get("jen.spill.activations"), 0);
    }

    #[test]
    fn spilled_path_matches_in_memory() {
        let m = Metrics::new();
        let mut g = GraceHashJoiner::new(build_schema(), 0, 64, 4, m.clone()).unwrap();
        // probe arrives early (buffered), then the build blows the budget
        g.add_probe(
            probe_batch(&(0..300).map(|i| i % 120).collect::<Vec<_>>()),
            0,
        )
        .unwrap();
        for chunk in 0..5 {
            g.add_build(build_batch(chunk * 40..(chunk + 1) * 40))
                .unwrap();
        }
        assert!(g.is_spilled());
        // more probes after the spill go straight to disk
        g.add_probe(probe_batch(&[5, 199, 250]), 0).unwrap();
        let out = g.finish().unwrap();

        let all_build = build_batch(0..200);
        let mut probe_keys: Vec<i32> = (0..300).map(|i| i % 120).collect();
        probe_keys.extend([5, 199, 250]);
        let expected = reference_join(&all_build, &probe_batch(&probe_keys));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert_eq!(m.get("jen.spill.activations"), 1);
        assert!(m.get("jen.spill.bytes_written") > 0);
        assert!(m.get("jen.spill.bytes_read") > 0);
    }

    #[test]
    fn no_probe_data_yields_empty_joined_schema() {
        let m = Metrics::new();
        let mut g = GraceHashJoiner::new(build_schema(), 0, 10, 2, m).unwrap();
        g.add_build(build_batch(0..5)).unwrap();
        let out = g.finish().unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().len(), 4);
    }

    #[test]
    fn probe_schema_change_rejected() {
        let m = Metrics::new();
        let mut g = GraceHashJoiner::new(build_schema(), 0, 10, 2, m).unwrap();
        g.add_probe(probe_batch(&[1]), 0).unwrap();
        assert!(g.add_probe(build_batch(0..1), 0).is_err());
        assert!(g.add_probe(probe_batch(&[1]), 1).is_err());
    }

    #[test]
    fn build_schema_mismatch_rejected() {
        let m = Metrics::new();
        let mut g = GraceHashJoiner::new(build_schema(), 0, 10, 2, m).unwrap();
        assert!(g.add_build(probe_batch(&[1])).is_err());
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(GraceHashJoiner::new(build_schema(), 0, 10, 0, Metrics::new()).is_err());
    }

    #[test]
    fn spill_files_cleaned_up() {
        let m = Metrics::new();
        let dir = std::env::temp_dir();
        let before = count_spill_files(&dir);
        {
            let mut g = GraceHashJoiner::new(build_schema(), 0, 8, 4, m.clone()).unwrap();
            for chunk in 0..4 {
                g.add_build(build_batch(chunk * 10..(chunk + 1) * 10))
                    .unwrap();
            }
            g.add_probe(probe_batch(&[1, 2]), 0).unwrap();
            assert!(g.is_spilled());
            let _ = g.finish().unwrap();
        }
        assert_eq!(count_spill_files(&dir), before);
        let created = m.get("jen.spill.files_created");
        assert!(created > 0, "spilled join must create partition files");
        assert_eq!(created, m.get("jen.spill.files_removed"));
    }

    /// The orphan-accounting invariant on an *abandoned* join: a joiner
    /// dropped mid-spill (as when a fault-injected kill unwinds the worker
    /// between build and probe) must still remove every file it created.
    #[test]
    fn abandoned_spill_leaves_no_orphans() {
        let m = Metrics::new();
        let dir = std::env::temp_dir();
        let before = count_spill_files(&dir);
        {
            let mut g = GraceHashJoiner::new(build_schema(), 0, 8, 4, m.clone()).unwrap();
            for chunk in 0..4 {
                g.add_build(build_batch(chunk * 10..(chunk + 1) * 10))
                    .unwrap();
            }
            g.add_probe(probe_batch(&[1, 2, 3]), 0).unwrap();
            assert!(g.is_spilled());
            // dropped without finish(): the kill path
        }
        assert_eq!(count_spill_files(&dir), before);
        let created = m.get("jen.spill.files_created");
        assert!(created > 0);
        assert_eq!(created, m.get("jen.spill.files_removed"));
    }

    fn count_spill_files(dir: &std::path::Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("hybrid-spill-{}", std::process::id()))
            })
            .count()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)])
    }

    fn batch(rows: &[(i32, i64)]) -> Batch {
        Batch::new(
            schema(),
            vec![
                Column::I32(rows.iter().map(|r| r.0).collect()),
                Column::I64(rows.iter().map(|r| r.1).collect()),
            ],
        )
        .unwrap()
    }

    fn sorted_rows(b: &Batch) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..b.num_rows())
            .map(|r| b.row(r).iter().map(|d| d.to_string()).collect())
            .collect();
        rows.sort();
        rows
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The grace (spilled) join equals the in-memory join for arbitrary
        /// build/probe streams, memory budgets, and partition counts.
        #[test]
        fn grace_equals_in_memory(
            build in proptest::collection::vec((0i32..15, any::<i64>()), 0..60),
            probe in proptest::collection::vec((0i32..15, any::<i64>()), 0..60),
            limit in 1usize..30,
            parts in 1usize..6,
        ) {
            let mut mem = HashJoiner::new(schema(), 0);
            mem.build(batch(&build)).unwrap();
            let expected = mem.probe(&batch(&probe), 0).unwrap();

            let mut grace =
                GraceHashJoiner::new(schema(), 0, limit, parts, Metrics::new()).unwrap();
            // feed in small chunks to exercise incremental appends
            for chunk in build.chunks(7) {
                grace.add_build(batch(chunk)).unwrap();
            }
            for chunk in probe.chunks(5) {
                grace.add_probe(batch(chunk), 0).unwrap();
            }
            let got = grace.finish().unwrap();
            prop_assert_eq!(sorted_rows(&got), sorted_rows(&expected));
        }
    }
}
