//! Robust dynamic hybrid hash join with spill-to-disk.
//!
//! The paper's JEN "requires that all data fit in memory for the local
//! hash-based join on each worker. In the future, we plan to support
//! spilling to disk to overcome this limitation" (§4.4). This module is
//! that future work, upgraded from a wholesale grace hash join to the
//! *robust dynamic hybrid* design: the build side is hash-partitioned up
//! front, but partitions stay **resident in memory while the budget
//! allows**. Under pressure the joiner dynamically evicts the largest
//! resident partition to an on-disk run (via `SpillSide`, encoded with
//! the columnar format) and keeps going; partitions that still do not fit
//! at join time are **recursively repartitioned** with a depth-salted hash
//! until they fit or a depth bound is reached (correctness over memory:
//! at the bound the partition is joined in memory regardless).
//!
//! Partitioning on the join key guarantees matching rows land in the same
//! partition at every depth, so the result equals the in-memory join
//! exactly — resident partitions just skip the disk round-trip that the
//! old grace join paid for the whole build side.
//!
//! # Budgets and determinism
//!
//! Residency is bounded two ways, both optional: a row limit (the legacy
//! `jen_memory_limit_rows` knob) and a byte cap carried by a
//! [`WorkerBudget`] ledger from the system's shared
//! [`BufferPool`](hybrid_common::mempool::BufferPool). The worker cap is a
//! *static* share of the query's reservation, so each joiner's eviction
//! decisions depend only on its own input stream — results are
//! bit-identical at any thread count, and spill/`mem.*` counters are
//! exactly reproducible at `threads=1`.
//!
//! Residency is re-checked after every build append and evictions bring it
//! back under the cap before the joiner returns to its caller; the ledger
//! is reported at those stable points, so the pool-level high-water mark
//! never exceeds the sum of worker caps. (The transient peak *during* an
//! append-then-evict step, and re-reading an evicted partition at join
//! time, are not ledgered — classic hybrid hash accounting.)

use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::hash_key_seeded;
use hybrid_common::mempool::WorkerBudget;
use hybrid_common::metrics::Metrics;
use hybrid_common::ops::{partition_by_key, HashJoiner};
use hybrid_common::schema::Schema;
use hybrid_storage::columnar;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed for the spill partitioning hash — distinct from both the agreed
/// shuffle hash and the DB partitioning hash, so spill partitions are
/// uncorrelated with how rows were routed to this worker.
const SPILL_SEED: u64 = 0x5B11_1ED0_0000_0001;

/// Per-depth salt for recursive repartitioning: a bucket that overflows at
/// depth `d` is re-split with a *different* hash at depth `d+1`, otherwise
/// every row would land in the same sub-bucket again.
const DEPTH_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Recursion depth bound. A partition that still overflows after this many
/// re-splits (e.g. a single hot key) is joined in memory anyway —
/// correctness over memory — and counted under `mem.depth_bound_hits`.
const MAX_RECURSION: usize = 4;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Partitioning hash at recursion `depth` (depth 0 = the eviction layer).
fn depth_seed(depth: usize) -> u64 {
    SPILL_SEED ^ (depth as u64).wrapping_mul(DEPTH_SALT)
}

/// One side's on-disk runs: a file per partition of length-prefixed
/// columnar-encoded batches.
///
/// Carries its own [`Metrics`] handle so the `jen.spill.files_created` /
/// `jen.spill.files_removed` pair balances even when cleanup happens in
/// [`Drop`] on an error path (e.g. a fault-injected worker kill between
/// the spill-write and spill-read phases): any imbalance means orphaned
/// partition files.
struct SpillSide {
    schema: Schema,
    key_col: usize,
    seed: u64,
    files: Vec<PathBuf>,
    /// Which partition files have actually been created on disk.
    written: Vec<bool>,
    metrics: Metrics,
}

impl SpillSide {
    fn create(
        schema: Schema,
        key_col: usize,
        dir: &Path,
        tag: &str,
        parts: usize,
        seed: u64,
        metrics: Metrics,
    ) -> Result<SpillSide> {
        let run = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let files: Vec<PathBuf> = (0..parts)
            .map(|p| {
                dir.join(format!(
                    "hybrid-spill-{}-{run}-{tag}-{p}.col",
                    std::process::id()
                ))
            })
            .collect();
        Ok(SpillSide {
            schema,
            key_col,
            seed,
            written: vec![false; files.len()],
            files,
            metrics,
        })
    }

    /// Partition `batch` with this side's seed and append each non-empty
    /// slice to its partition file.
    fn append(&mut self, batch: &Batch) -> Result<()> {
        let seed = self.seed;
        let parts = partition_by_key(batch, self.key_col, self.files.len(), |key, n| {
            (hash_key_seeded(key, seed) % n as u64) as usize
        })?;
        for (p, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.append_part(p, part)?;
        }
        Ok(())
    }

    /// Append an already-partitioned batch to partition `p`'s file —
    /// the eviction path, where the joiner partitioned on arrival.
    fn append_part(&mut self, p: usize, part: &Batch) -> Result<()> {
        let path = &self.files[p];
        let payload = columnar::encode(part);
        let mut f = File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| HybridError::Storage(format!("spill open {path:?}: {e}")))?;
        if !self.written[p] {
            self.written[p] = true;
            self.metrics.incr("jen.spill.files_created");
        }
        f.write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| f.write_all(&payload))
            .map_err(|e| HybridError::Storage(format!("spill write: {e}")))?;
        self.metrics
            .add("jen.spill.bytes_written", (payload.len() + 4) as u64);
        Ok(())
    }

    fn read_partition(&self, p: usize) -> Result<Vec<Batch>> {
        let path = &self.files[p];
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| HybridError::Storage(format!("spill read: {e}")))?;
            }
            Err(_) => return Ok(Vec::new()), // partition never received rows
        }
        self.metrics.add("jen.spill.bytes_read", bytes.len() as u64);
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            if pos + 4 > bytes.len() {
                return Err(HybridError::Storage("spill run truncated".into()));
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            let chunk = bytes
                .get(pos..pos + len)
                .ok_or_else(|| HybridError::Storage("spill chunk truncated".into()))?;
            pos += len;
            let (batch, _) = columnar::decode(&self.schema, chunk, None)?;
            out.push(batch);
        }
        Ok(out)
    }

    fn cleanup(&mut self) {
        for (p, f) in self.files.iter().enumerate() {
            if fs::remove_file(f).is_ok() && self.written[p] {
                self.written[p] = false;
                self.metrics.incr("jen.spill.files_removed");
            }
        }
    }
}

impl Drop for SpillSide {
    fn drop(&mut self) {
        self.cleanup();
    }
}

/// One hash partition's in-memory state.
#[derive(Default)]
struct Partition {
    /// False once evicted: its build (and buffered probe) rows live on
    /// disk and all later arrivals go straight there.
    evicted: bool,
    build: Vec<Batch>,
    rows: usize,
    bytes: u64,
    /// Probe slices buffered while the partition is resident; moved to the
    /// probe spill run if the partition is evicted later.
    probe: Vec<Batch>,
}

/// A robust dynamic hybrid hash join: resident partitions while the budget
/// allows, dynamic eviction under pressure, recursive repartitioning of
/// buckets that overflow their share.
pub struct HybridHashJoiner {
    build_schema: Schema,
    build_key: usize,
    /// Legacy row limit on total resident build rows (`jen_memory_limit_rows`).
    max_rows: Option<usize>,
    /// Byte-budget ledger; its cap bounds total resident build bytes.
    budget: Option<WorkerBudget>,
    num_partitions: usize,
    spill_dir: PathBuf,
    metrics: Metrics,
    parts: Vec<Partition>,
    resident_rows: usize,
    resident_bytes: u64,
    /// Created lazily at the first eviction.
    build_spill: Option<SpillSide>,
    probe_spill: Option<SpillSide>,
    probe_schema: Option<Schema>,
    probe_key: Option<usize>,
    evictions: u64,
}

impl HybridHashJoiner {
    pub fn new(
        build_schema: Schema,
        build_key: usize,
        max_rows: Option<usize>,
        budget: Option<WorkerBudget>,
        num_partitions: usize,
        metrics: Metrics,
    ) -> Result<HybridHashJoiner> {
        if num_partitions == 0 {
            return Err(HybridError::config(
                "hybrid hash join needs at least one partition",
            ));
        }
        Ok(HybridHashJoiner {
            build_schema,
            build_key,
            max_rows,
            budget,
            num_partitions,
            spill_dir: std::env::temp_dir(),
            metrics,
            parts: (0..num_partitions).map(|_| Partition::default()).collect(),
            resident_rows: 0,
            resident_bytes: 0,
            build_spill: None,
            probe_spill: None,
            probe_schema: None,
            probe_key: None,
            evictions: 0,
        })
    }

    /// Whether any partition has been evicted to disk.
    pub fn is_spilled(&self) -> bool {
        self.evictions > 0
    }

    fn over_budget(&self) -> bool {
        if self.max_rows.is_some_and(|mr| self.resident_rows > mr) {
            return true;
        }
        self.budget
            .as_ref()
            .is_some_and(|b| !b.fits(self.resident_bytes))
    }

    /// Feed a build-side batch: partition it, keep slices for resident
    /// partitions in memory, then evict until residency fits the budget.
    pub fn add_build(&mut self, batch: Batch) -> Result<()> {
        if batch.schema() != &self.build_schema {
            return Err(HybridError::SchemaMismatch(
                "hybrid join build schema".into(),
            ));
        }
        let slices = partition_by_key(&batch, self.build_key, self.num_partitions, |key, n| {
            (hash_key_seeded(key, depth_seed(0)) % n as u64) as usize
        })?;
        for (p, slice) in slices.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            if self.parts[p].evicted {
                self.build_spill
                    .as_mut()
                    .expect("evicted partition implies a build spill run")
                    .append_part(p, &slice)?;
            } else {
                let bytes = slice.serialized_bytes() as u64;
                self.parts[p].rows += slice.num_rows();
                self.parts[p].bytes += bytes;
                self.resident_rows += slice.num_rows();
                self.resident_bytes += bytes;
                self.parts[p].build.push(slice);
            }
        }
        self.enforce_budget()?;
        self.report_residency();
        Ok(())
    }

    /// Evict largest-resident-first until residency fits both caps.
    fn enforce_budget(&mut self) -> Result<()> {
        while self.over_budget() {
            // victim: largest resident partition by bytes, ties → lowest
            // index (deterministic for a given input order)
            let victim = (0..self.num_partitions)
                .filter(|&p| !self.parts[p].evicted && self.parts[p].rows > 0)
                .max_by_key(|&p| (self.parts[p].bytes, std::cmp::Reverse(p)));
            match victim {
                Some(p) => self.evict(p)?,
                // nothing evictable left; residency is already minimal
                None => break,
            }
        }
        Ok(())
    }

    fn evict(&mut self, p: usize) -> Result<()> {
        if self.build_spill.is_none() {
            self.build_spill = Some(SpillSide::create(
                self.build_schema.clone(),
                self.build_key,
                &self.spill_dir,
                "build",
                self.num_partitions,
                depth_seed(0),
                self.metrics.clone(),
            )?);
            // first eviction = the join degraded to disk at all
            self.metrics.incr("jen.spill.activations");
        }
        let build = std::mem::take(&mut self.parts[p].build);
        let probe = std::mem::take(&mut self.parts[p].probe);
        self.resident_rows -= self.parts[p].rows;
        self.resident_bytes -= self.parts[p].bytes;
        self.parts[p].rows = 0;
        self.parts[p].bytes = 0;
        self.parts[p].evicted = true;
        let spill = self.build_spill.as_mut().expect("created above");
        for b in &build {
            spill.append_part(p, b)?;
        }
        if !probe.is_empty() {
            self.ensure_probe_spill()?;
            let ps = self.probe_spill.as_mut().expect("created above");
            for b in &probe {
                ps.append_part(p, b)?;
            }
        }
        self.evictions += 1;
        self.metrics.incr("mem.evictions");
        Ok(())
    }

    fn ensure_probe_spill(&mut self) -> Result<()> {
        if self.probe_spill.is_none() {
            let schema = self
                .probe_schema
                .clone()
                .expect("buffered probe slices imply a known probe schema");
            let key = self.probe_key.expect("probe schema implies probe key");
            self.probe_spill = Some(SpillSide::create(
                schema,
                key,
                &self.spill_dir,
                "probe",
                self.num_partitions,
                depth_seed(0),
                self.metrics.clone(),
            )?);
        }
        Ok(())
    }

    /// Report residency to the pool ledger and the `mem.high_water` mark.
    /// Called at stable points only (after evictions), so the reported
    /// high-water never exceeds the worker cap.
    fn report_residency(&mut self) {
        if let Some(b) = &mut self.budget {
            b.report(self.resident_bytes);
        }
        self.metrics.set_max("mem.high_water", self.resident_bytes);
    }

    /// Feed a probe-side batch. The first probe batch fixes the probe schema
    /// and key column. Slices for resident partitions are buffered in
    /// memory; slices for evicted partitions go to the probe spill run.
    pub fn add_probe(&mut self, batch: Batch, probe_key: usize) -> Result<()> {
        match (&self.probe_schema, &self.probe_key) {
            (None, _) => {
                self.probe_schema = Some(batch.schema().clone());
                self.probe_key = Some(probe_key);
            }
            (Some(s), Some(k)) => {
                if s != batch.schema() || *k != probe_key {
                    return Err(HybridError::SchemaMismatch(
                        "hybrid join probe schema/key changed mid-stream".into(),
                    ));
                }
            }
            _ => unreachable!(),
        }
        let slices = partition_by_key(&batch, probe_key, self.num_partitions, |key, n| {
            (hash_key_seeded(key, depth_seed(0)) % n as u64) as usize
        })?;
        for (p, slice) in slices.into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            if self.parts[p].evicted {
                self.ensure_probe_spill()?;
                self.probe_spill
                    .as_mut()
                    .expect("created above")
                    .append_part(p, &slice)?;
            } else {
                self.parts[p].probe.push(slice);
            }
        }
        Ok(())
    }

    /// Join one evicted partition, recursively repartitioning while it
    /// overflows the per-worker caps and the depth bound allows.
    fn join_partition(
        &self,
        build: Vec<Batch>,
        probe: Vec<Batch>,
        probe_key: usize,
        depth: usize,
        outs: &mut Vec<Batch>,
    ) -> Result<()> {
        let rows: usize = build.iter().map(Batch::num_rows).sum();
        let bytes: u64 = build.iter().map(|b| b.serialized_bytes() as u64).sum();
        let fits = self.max_rows.map_or(true, |mr| rows <= mr)
            && self.budget.as_ref().map_or(true, |b| b.fits(bytes));
        if fits || depth >= MAX_RECURSION {
            if !fits {
                // e.g. one scorching key: no split can help, join anyway
                self.metrics.incr("mem.depth_bound_hits");
            }
            let mut joiner = HashJoiner::new(self.build_schema.clone(), self.build_key);
            for b in build {
                joiner.build(b)?;
            }
            for pb in &probe {
                outs.push(joiner.probe(pb, probe_key)?);
            }
            return Ok(());
        }
        self.metrics.incr("mem.recursive_repartitions");
        let probe_schema = self
            .probe_schema
            .clone()
            .expect("join_partition runs only with probe data");
        let mut sub_build = SpillSide::create(
            self.build_schema.clone(),
            self.build_key,
            &self.spill_dir,
            &format!("rbuild{depth}"),
            self.num_partitions,
            depth_seed(depth),
            self.metrics.clone(),
        )?;
        let mut sub_probe = SpillSide::create(
            probe_schema,
            probe_key,
            &self.spill_dir,
            &format!("rprobe{depth}"),
            self.num_partitions,
            depth_seed(depth),
            self.metrics.clone(),
        )?;
        for b in &build {
            sub_build.append(b)?;
        }
        for b in &probe {
            sub_probe.append(b)?;
        }
        drop(build);
        drop(probe);
        for sp in 0..self.num_partitions {
            let b = sub_build.read_partition(sp)?;
            if b.is_empty() {
                continue;
            }
            let p = sub_probe.read_partition(sp)?;
            self.join_partition(b, p, probe_key, depth + 1, outs)?;
        }
        Ok(())
    }

    /// Run the join and return the concatenated output
    /// (`build_row ++ probe_row`, like [`HashJoiner::probe`]).
    ///
    /// Resident partitions join purely in memory; evicted partitions are
    /// re-read from their spill runs (recursing if they overflow). The
    /// number of non-empty partitions that never touched disk is recorded
    /// under `mem.partitions_resident` — the hybrid win over grace.
    pub fn finish(mut self) -> Result<Batch> {
        // Residency is a property of the build, so it is recorded even on
        // the no-probe path below — a worker that holds its partitions in
        // memory scored the hybrid win whether or not any probe row arrives.
        let resident_nonempty = self
            .parts
            .iter()
            .filter(|p| !p.evicted && p.rows > 0)
            .count() as u64;
        self.metrics
            .add("mem.partitions_resident", resident_nonempty);
        let probe_key = match self.probe_key {
            Some(k) => k,
            None => {
                // no probe data at all: empty output with the joined schema
                let probe_schema = self
                    .probe_schema
                    .unwrap_or_else(|| self.build_schema.clone());
                return Ok(Batch::empty(self.build_schema.join(&probe_schema)));
            }
        };
        let probe_schema = self.probe_schema.clone().expect("probe_key implies schema");
        let out_schema = self.build_schema.join(&probe_schema);
        let mut outs: Vec<Batch> = Vec::new();
        for p in 0..self.num_partitions {
            if self.parts[p].evicted {
                let build = self
                    .build_spill
                    .as_ref()
                    .expect("evicted partition implies a build spill run")
                    .read_partition(p)?;
                if build.is_empty() {
                    continue;
                }
                let probe = match &self.probe_spill {
                    Some(ps) => ps.read_partition(p)?,
                    None => Vec::new(),
                };
                self.join_partition(build, probe, probe_key, 1, &mut outs)?;
            } else {
                if self.parts[p].rows == 0 {
                    continue;
                }
                let mut joiner = HashJoiner::new(self.build_schema.clone(), self.build_key);
                for b in std::mem::take(&mut self.parts[p].build) {
                    joiner.build(b)?;
                }
                for pb in std::mem::take(&mut self.parts[p].probe) {
                    outs.push(joiner.probe(&pb, probe_key)?);
                }
            }
        }
        Batch::concat(out_schema, &outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::mempool::BufferPool;

    fn build_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)])
    }

    fn probe_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("s", DataType::Utf8)])
    }

    fn build_batch(range: std::ops::Range<i32>) -> Batch {
        Batch::new(
            build_schema(),
            vec![
                Column::I32(range.clone().collect()),
                Column::I64(range.map(i64::from).map(|v| v * 10).collect()),
            ],
        )
        .unwrap()
    }

    fn probe_batch(keys: &[i32]) -> Batch {
        Batch::new(
            probe_schema(),
            vec![
                Column::I32(keys.to_vec()),
                Column::Utf8(keys.iter().map(|k| format!("p{k}")).collect()),
            ],
        )
        .unwrap()
    }

    fn reference_join(build: &Batch, probe: &Batch) -> Batch {
        let mut j = HashJoiner::new(build.schema().clone(), 0);
        j.build(build.clone()).unwrap();
        j.probe(probe, 0).unwrap()
    }

    fn sorted_rows(b: &Batch) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..b.num_rows())
            .map(|r| b.row(r).iter().map(|d| d.to_string()).collect())
            .collect();
        rows.sort();
        rows
    }

    fn row_limited(limit: usize, parts: usize, m: Metrics) -> HybridHashJoiner {
        HybridHashJoiner::new(build_schema(), 0, Some(limit), None, parts, m).unwrap()
    }

    #[test]
    fn in_memory_path_matches_reference() {
        let m = Metrics::new();
        let mut g = row_limited(1000, 4, m.clone());
        g.add_build(build_batch(0..50)).unwrap();
        g.add_probe(probe_batch(&[1, 2, 99, 2]), 0).unwrap();
        assert!(!g.is_spilled());
        let out = g.finish().unwrap();
        let expected = reference_join(&build_batch(0..50), &probe_batch(&[1, 2, 99, 2]));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert_eq!(m.get("jen.spill.activations"), 0);
        assert_eq!(m.get("mem.evictions"), 0);
        assert!(m.get("mem.partitions_resident") > 0);
    }

    #[test]
    fn spilled_path_matches_in_memory() {
        let m = Metrics::new();
        let mut g = row_limited(64, 4, m.clone());
        // probe arrives early (buffered), then the build blows the budget
        g.add_probe(
            probe_batch(&(0..300).map(|i| i % 120).collect::<Vec<_>>()),
            0,
        )
        .unwrap();
        for chunk in 0..5 {
            g.add_build(build_batch(chunk * 40..(chunk + 1) * 40))
                .unwrap();
        }
        assert!(g.is_spilled());
        // more probes after the spill go straight to disk
        g.add_probe(probe_batch(&[5, 199, 250]), 0).unwrap();
        let out = g.finish().unwrap();

        let all_build = build_batch(0..200);
        let mut probe_keys: Vec<i32> = (0..300).map(|i| i % 120).collect();
        probe_keys.extend([5, 199, 250]);
        let expected = reference_join(&all_build, &probe_batch(&probe_keys));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert_eq!(m.get("jen.spill.activations"), 1);
        assert!(m.get("jen.spill.bytes_written") > 0);
        assert!(m.get("jen.spill.bytes_read") > 0);
        assert!(m.get("mem.evictions") > 0);
    }

    /// The hybrid property itself: under pressure *some* partitions go to
    /// disk while at least one stays resident, and the result is still
    /// exact. A budget of ~half the build bytes cannot evict everything.
    #[test]
    fn partial_eviction_keeps_some_partitions_resident() {
        let m = Metrics::new();
        let total_bytes = build_batch(0..400).serialized_bytes() as u64;
        let pool = BufferPool::new(Some(total_bytes / 2), Metrics::new());
        let q = pool.reserve(total_bytes / 2, "t").unwrap();
        let mut g = HybridHashJoiner::new(
            build_schema(),
            0,
            None,
            Some(q.worker_share(1)),
            8,
            m.clone(),
        )
        .unwrap();
        for chunk in 0..10 {
            g.add_build(build_batch(chunk * 40..(chunk + 1) * 40))
                .unwrap();
        }
        assert!(g.is_spilled(), "half budget must evict");
        let probe_keys: Vec<i32> = (0..500).map(|i| i % 420).collect();
        g.add_probe(probe_batch(&probe_keys), 0).unwrap();
        let out = g.finish().unwrap();
        let expected = reference_join(&build_batch(0..400), &probe_batch(&probe_keys));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert!(m.get("mem.evictions") > 0);
        assert!(
            m.get("mem.partitions_resident") > 0,
            "hybrid must keep >=1 partition in memory under a half budget"
        );
        assert!(m.get("mem.high_water") > 0);
        assert!(m.get("mem.high_water") <= total_bytes / 2);
    }

    /// A tiny budget forces every partition out; overflowing buckets are
    /// recursively repartitioned and the result is still exact.
    #[test]
    fn tiny_budget_recursively_repartitions() {
        let m = Metrics::new();
        let pool = BufferPool::new(Some(64), Metrics::new());
        let q = pool.reserve(64, "t").unwrap();
        // row limit low enough that depth-0 partitions (~100 rows each at
        // 2 partitions) must re-split at join time
        let mut g = HybridHashJoiner::new(
            build_schema(),
            0,
            Some(30),
            Some(q.worker_share(1)),
            2,
            m.clone(),
        )
        .unwrap();
        for chunk in 0..5 {
            g.add_build(build_batch(chunk * 40..(chunk + 1) * 40))
                .unwrap();
        }
        let probe_keys: Vec<i32> = (0..300).map(|i| i % 250).collect();
        g.add_probe(probe_batch(&probe_keys), 0).unwrap();
        let out = g.finish().unwrap();
        let expected = reference_join(&build_batch(0..200), &probe_batch(&probe_keys));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert!(
            m.get("mem.recursive_repartitions") > 0,
            "tiny budget must trigger recursive repartitioning"
        );
        assert_eq!(m.get("mem.partitions_resident"), 0);
        // recursion's temporary runs are cleaned up like any other
        assert_eq!(
            m.get("jen.spill.files_created"),
            m.get("jen.spill.files_removed")
        );
    }

    /// A single hot key cannot be split at any depth: the depth bound must
    /// stop the recursion and join in memory anyway.
    #[test]
    fn single_hot_key_hits_depth_bound_but_joins() {
        let m = Metrics::new();
        let mut g = row_limited(10, 2, m.clone());
        let hot = Batch::new(
            build_schema(),
            vec![
                Column::I32(vec![7; 100]),
                Column::I64((0..100).collect::<Vec<i64>>()),
            ],
        )
        .unwrap();
        g.add_build(hot.clone()).unwrap();
        g.add_probe(probe_batch(&[7, 8]), 0).unwrap();
        let out = g.finish().unwrap();
        let expected = reference_join(&hot, &probe_batch(&[7, 8]));
        assert_eq!(sorted_rows(&out), sorted_rows(&expected));
        assert!(m.get("mem.depth_bound_hits") > 0);
        assert_eq!(
            m.get("jen.spill.files_created"),
            m.get("jen.spill.files_removed")
        );
    }

    #[test]
    fn no_probe_data_yields_empty_joined_schema() {
        let m = Metrics::new();
        let mut g = row_limited(10, 2, m);
        g.add_build(build_batch(0..5)).unwrap();
        let out = g.finish().unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().len(), 4);
    }

    #[test]
    fn probe_schema_change_rejected() {
        let m = Metrics::new();
        let mut g = row_limited(10, 2, m);
        g.add_probe(probe_batch(&[1]), 0).unwrap();
        assert!(g.add_probe(build_batch(0..1), 0).is_err());
        assert!(g.add_probe(probe_batch(&[1]), 1).is_err());
    }

    #[test]
    fn build_schema_mismatch_rejected() {
        let m = Metrics::new();
        let mut g = row_limited(10, 2, m);
        assert!(g.add_build(probe_batch(&[1])).is_err());
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(
            HybridHashJoiner::new(build_schema(), 0, Some(10), None, 0, Metrics::new()).is_err()
        );
    }

    #[test]
    fn spill_files_cleaned_up() {
        let m = Metrics::new();
        let dir = std::env::temp_dir();
        let before = count_spill_files(&dir);
        {
            let mut g = row_limited(8, 4, m.clone());
            for chunk in 0..4 {
                g.add_build(build_batch(chunk * 10..(chunk + 1) * 10))
                    .unwrap();
            }
            g.add_probe(probe_batch(&[1, 2]), 0).unwrap();
            assert!(g.is_spilled());
            let _ = g.finish().unwrap();
        }
        assert_eq!(count_spill_files(&dir), before);
        let created = m.get("jen.spill.files_created");
        assert!(created > 0, "spilled join must create partition files");
        assert_eq!(created, m.get("jen.spill.files_removed"));
    }

    /// The orphan-accounting invariant on an *abandoned* join: a joiner
    /// dropped mid-spill (as when a fault-injected kill unwinds the worker
    /// between build and probe) must still remove every file it created.
    #[test]
    fn abandoned_spill_leaves_no_orphans() {
        let m = Metrics::new();
        let dir = std::env::temp_dir();
        let before = count_spill_files(&dir);
        {
            let mut g = row_limited(8, 4, m.clone());
            for chunk in 0..4 {
                g.add_build(build_batch(chunk * 10..(chunk + 1) * 10))
                    .unwrap();
            }
            g.add_probe(probe_batch(&[1, 2, 3]), 0).unwrap();
            assert!(g.is_spilled());
            // dropped without finish(): the kill path
        }
        assert_eq!(count_spill_files(&dir), before);
        let created = m.get("jen.spill.files_created");
        assert!(created > 0);
        assert_eq!(created, m.get("jen.spill.files_removed"));
    }

    /// Residency deltas reported through the worker ledger are released on
    /// drop, so a pool shared by many joiners ends at zero.
    #[test]
    fn ledger_released_on_drop() {
        let root = Metrics::new();
        let pool = BufferPool::new(Some(1 << 20), root.clone());
        let q = pool.reserve(1 << 20, "t").unwrap();
        {
            let mut g = HybridHashJoiner::new(
                build_schema(),
                0,
                None,
                Some(q.worker_share(1)),
                4,
                Metrics::new(),
            )
            .unwrap();
            g.add_build(build_batch(0..50)).unwrap();
            assert!(pool.used() > 0, "residency must be ledgered");
        }
        assert_eq!(pool.used(), 0);
        assert!(root.get("mem.pool_high_water") > 0);
    }

    fn count_spill_files(dir: &std::path::Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("hybrid-spill-{}", std::process::id()))
            })
            .count()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::mempool::BufferPool;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)])
    }

    fn batch(rows: &[(i32, i64)]) -> Batch {
        Batch::new(
            schema(),
            vec![
                Column::I32(rows.iter().map(|r| r.0).collect()),
                Column::I64(rows.iter().map(|r| r.1).collect()),
            ],
        )
        .unwrap()
    }

    fn sorted_rows(b: &Batch) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..b.num_rows())
            .map(|r| b.row(r).iter().map(|d| d.to_string()).collect())
            .collect();
        rows.sort();
        rows
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The hybrid (partially spilled) join equals the in-memory join
        /// for arbitrary build/probe streams, row limits, byte budgets,
        /// and partition counts.
        #[test]
        fn hybrid_equals_in_memory(
            build in proptest::collection::vec((0i32..15, any::<i64>()), 0..60),
            probe in proptest::collection::vec((0i32..15, any::<i64>()), 0..60),
            limit in 1usize..30,
            parts in 1usize..6,
            budget_bytes in 0u64..2000, // 0 = no byte budget
        ) {
            let mut mem = HashJoiner::new(schema(), 0);
            mem.build(batch(&build)).unwrap();
            let expected = mem.probe(&batch(&probe), 0).unwrap();

            let worker = (budget_bytes > 0).then(|| {
                let pool = BufferPool::new(Some(budget_bytes), Metrics::new());
                pool.reserve(budget_bytes, "prop").unwrap().worker_share(1)
            });
            let mut hybrid = HybridHashJoiner::new(
                schema(), 0, Some(limit), worker, parts, Metrics::new(),
            ).unwrap();
            // feed in small chunks to exercise incremental appends
            for chunk in build.chunks(7) {
                hybrid.add_build(batch(chunk)).unwrap();
            }
            for chunk in probe.chunks(5) {
                hybrid.add_probe(batch(chunk), 0).unwrap();
            }
            let got = hybrid.finish().unwrap();
            prop_assert_eq!(sorted_rows(&got), sorted_rows(&expected));
        }
    }
}
