//! A JEN worker: scan-based processing of its assigned HDFS blocks.

use hybrid_bloom::{filter_batch, ApproxMembership, BloomFilter};
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::expr::Expr;
use hybrid_common::ids::{BlockId, DataNodeId, JenWorkerId};
use hybrid_common::metrics::Metrics;
use hybrid_common::trace::{Stage, Tracer};
use hybrid_hdfs::{HdfsCluster, TableMeta};
use hybrid_storage::{columnar, decode, FileFormat};
use parking_lot::RwLock;
use std::sync::Arc;

/// What one scan should do to every block (paper step: "scan HDFS table,
/// apply local predicates, projection and `BF_DB`").
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// Local predicate over the table's base schema.
    pub pred: Expr,
    /// Output columns (base-schema indexes).
    pub proj: Vec<usize>,
    /// Join-key column (base-schema index) a Bloom filter applies to, if any.
    pub bloom_key: Option<usize>,
}

impl ScanSpec {
    /// Columns that must be materialized from storage: predicate inputs,
    /// outputs, and the Bloom-filter key.
    fn read_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .pred
            .referenced_columns()
            .into_iter()
            .chain(self.proj.iter().copied())
            .chain(self.bloom_key)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// Counters from one worker's scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    pub blocks_read: usize,
    pub blocks_skipped: usize,
    pub bytes_read: usize,
    pub rows_raw: usize,
    pub rows_after_pred: usize,
    pub rows_after_bloom: usize,
}

/// A JEN worker, co-located with DataNode `id` (one worker per DataNode).
pub struct JenWorker {
    id: JenWorkerId,
    hdfs: Arc<RwLock<HdfsCluster>>,
    metrics: Metrics,
    tracer: Tracer,
}

impl JenWorker {
    pub fn new(id: JenWorkerId, hdfs: Arc<RwLock<HdfsCluster>>, metrics: Metrics) -> JenWorker {
        JenWorker::with_tracer(id, hdfs, metrics, Tracer::new())
    }

    /// Like [`JenWorker::new`], but recording phase spans into a shared
    /// tracer (the system hands every worker the same one, so a run's
    /// timeline shows all workers on one clock).
    pub fn with_tracer(
        id: JenWorkerId,
        hdfs: Arc<RwLock<HdfsCluster>>,
        metrics: Metrics,
        tracer: Tracer,
    ) -> JenWorker {
        JenWorker {
            id,
            hdfs,
            metrics,
            tracer,
        }
    }

    pub fn id(&self) -> JenWorkerId {
        self.id
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Worker label used in timeline spans, e.g. `jen-2`.
    pub fn span_label(&self) -> String {
        format!("jen-{}", self.id.index())
    }

    /// The DataNode this worker is co-located with.
    pub fn datanode(&self) -> DataNodeId {
        DataNodeId(self.id.index())
    }

    /// Scan `blocks` of `table`, applying the spec and an optional database
    /// Bloom filter. Returns the filtered, projected rows of this worker's
    /// share plus the scan statistics.
    ///
    /// Per block: (columnar only) skip via chunk min/max when a `col <= b`
    /// predicate excludes it; otherwise decode the needed columns (text
    /// parses everything), evaluate the predicate, apply `BF_DB`, project.
    pub fn scan_blocks(
        &self,
        table: &TableMeta,
        blocks: &[BlockId],
        spec: &ScanSpec,
        bloom: Option<&BloomFilter>,
    ) -> Result<(Batch, ScanStats)> {
        let read_cols = spec.read_cols();
        let out_schema = table.schema.project(&spec.proj)?;
        let mut stats = ScanStats::default();
        let mut parts: Vec<Batch> = Vec::with_capacity(blocks.len());
        let span = self.tracer.start(self.span_label(), Stage::Scan);
        for &block in blocks {
            let bytes = self
                .hdfs
                .read()
                .read_block_into(block, self.datanode(), &self.metrics)?;
            match self.process_block(table, &bytes, &read_cols, spec, bloom, &mut stats)? {
                Some(batch) => parts.push(batch),
                None => continue,
            }
        }
        span.done(stats.bytes_read as u64, stats.rows_raw as u64);
        self.report(&stats);
        let out = Batch::concat(out_schema, &parts)?;
        Ok((out, stats))
    }

    /// Decode + filter + Bloom + project one raw block. `None` means the
    /// block was skipped entirely via columnar statistics.
    pub(crate) fn process_block(
        &self,
        table: &TableMeta,
        bytes: &[u8],
        read_cols: &[usize],
        spec: &ScanSpec,
        bloom: Option<&BloomFilter>,
        stats: &mut ScanStats,
    ) -> Result<Option<Batch>> {
        if table.format == FileFormat::Columnar {
            // chunk skipping: any `col <= bound` conjunct whose chunk min
            // exceeds the bound kills the whole block
            for (col, bound) in spec.pred.le_conjuncts() {
                if let Some(cs) = columnar::column_stats(&table.schema, bytes, col)? {
                    if cs.min > bound {
                        stats.blocks_skipped += 1;
                        return Ok(None);
                    }
                }
            }
        }
        let decoded = decode(table.format, &table.schema, bytes, Some(read_cols))?;
        stats.blocks_read += 1;
        stats.bytes_read += decoded.bytes_read;
        stats.rows_raw += decoded.batch.num_rows();

        // positions of base columns within the read set
        let pos = |base: usize| read_cols.iter().position(|&c| c == base);
        let pred = spec
            .pred
            .remap_columns(&|c| pos(c))
            .ok_or_else(|| HybridError::exec("scan read set misses a predicate column"))?;
        let mask = pred.eval_predicate(&decoded.batch)?;
        let mut batch = decoded.batch.filter(&mask)?;
        stats.rows_after_pred += batch.num_rows();

        if let (Some(key), Some(bf)) = (spec.bloom_key, bloom) {
            let key_pos =
                pos(key).ok_or_else(|| HybridError::exec("scan read set misses the bloom key"))?;
            let rows_in = batch.num_rows() as u64;
            let span = self.tracer.start(self.span_label(), Stage::BloomApply);
            let (filtered, _) = filter_batch(&batch, key_pos, bf)?;
            span.done(0, rows_in);
            batch = filtered;
        }
        stats.rows_after_bloom += batch.num_rows();

        let proj_pos: Vec<usize> = spec
            .proj
            .iter()
            .map(|&c| pos(c).expect("projection is part of the read set"))
            .collect();
        Ok(Some(batch.project(&proj_pos)?))
    }

    fn report(&self, stats: &ScanStats) {
        let m = &self.metrics;
        m.add("jen.scan.blocks_read", stats.blocks_read as u64);
        m.add("jen.scan.blocks_skipped", stats.blocks_skipped as u64);
        m.add("jen.scan.bytes_read", stats.bytes_read as u64);
        m.add("jen.scan.rows_raw", stats.rows_raw as u64);
        m.add("jen.scan.rows_after_pred", stats.rows_after_pred as u64);
        m.add("jen.scan.rows_after_bloom", stats.rows_after_bloom as u64);
    }

    pub(crate) fn hdfs(&self) -> &Arc<RwLock<HdfsCluster>> {
        &self.hdfs
    }

    /// Collect the distinct-ish join keys of a filtered batch into a Bloom
    /// filter (zigzag step 3b: "compute `BF_H`"). `key_col` indexes into
    /// `batch` (the already-projected output of [`JenWorker::scan_blocks`]).
    pub fn build_bloom_from(
        &self,
        batch: &Batch,
        key_col: usize,
        mut filter: BloomFilter,
    ) -> Result<BloomFilter> {
        let keys = batch.column(key_col)?.keys_i64()?;
        let span = self.tracer.start(self.span_label(), Stage::BloomBuild);
        filter.insert_all(&keys);
        span.done(filter.wire_bytes() as u64, batch.num_rows() as u64);
        self.metrics
            .add("jen.bloom.keys_inserted", batch.num_rows() as u64);
        Ok(filter)
    }

    /// [`JenWorker::build_bloom_from`] over a sequence of block batches —
    /// the shape the batched scan produces. One BloomBuild span and one
    /// metering add cover the whole share (identical trace cardinality and
    /// counter totals to building from the concatenation); each block's key
    /// column is widened once and inserted vectorized.
    pub fn build_bloom_from_blocks(
        &self,
        blocks: &[Batch],
        key_col: usize,
        mut filter: BloomFilter,
    ) -> Result<BloomFilter> {
        let span = self.tracer.start(self.span_label(), Stage::BloomBuild);
        let mut rows = 0u64;
        for batch in blocks {
            let keys = batch.column(key_col)?.keys_i64()?;
            filter.insert_all(&keys);
            rows += batch.num_rows() as u64;
        }
        span.done(filter.wire_bytes() as u64, rows);
        self.metrics.add("jen.bloom.keys_inserted", rows);
        Ok(filter)
    }
}

/// `true` when a bloom filter would accept the key — exposed for tests.
pub fn bloom_accepts(bf: &BloomFilter, key: i64) -> bool {
    bf.may_contain(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_bloom::BloomParams;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;
    use hybrid_storage::encode;

    fn l_schema() -> Schema {
        Schema::from_pairs(&[
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("indPred", DataType::I32),
            ("url", DataType::Utf8),
        ])
    }

    fn l_block(key_lo: i32, n: i32) -> Batch {
        Batch::new(
            l_schema(),
            vec![
                Column::I32((key_lo..key_lo + n).collect()),
                Column::I32((key_lo..key_lo + n).collect()), // corPred == joinKey
                Column::I32((0..n).map(|i| i % 4).collect()),
                Column::Utf8((0..n).map(|i| format!("url_{i}/x")).collect()),
            ],
        )
        .unwrap()
    }

    fn setup(format: FileFormat) -> (JenWorker, TableMeta, Vec<BlockId>, Metrics) {
        let metrics = Metrics::new();
        let mut hdfs = HdfsCluster::new(2, 1, metrics.clone()).unwrap();
        let blocks: Vec<Vec<u8>> = (0..4)
            .map(|i| encode(format, &l_block(i * 100, 100)))
            .collect();
        hdfs.write_file("/w/L", blocks).unwrap();
        let ids: Vec<BlockId> = hdfs
            .file_blocks("/w/L")
            .unwrap()
            .iter()
            .map(|b| b.id)
            .collect();
        let meta = TableMeta {
            name: "L".into(),
            path: "/w/L".into(),
            format,
            schema: l_schema(),
        };
        let worker = JenWorker::new(JenWorkerId(0), Arc::new(RwLock::new(hdfs)), metrics.clone());
        (worker, meta, ids, metrics)
    }

    fn spec() -> ScanSpec {
        ScanSpec {
            pred: Expr::col_le(1, 149).and(Expr::col_le(2, 1)), // corPred<=149, indPred<=1
            proj: vec![0, 3],
            bloom_key: Some(0),
        }
    }

    #[test]
    fn scan_filters_and_projects_text() {
        let (w, meta, ids, _) = setup(FileFormat::Text);
        let (out, stats) = w.scan_blocks(&meta, &ids, &spec(), None).unwrap();
        // corPred <= 149: blocks 0 (100 rows) and half of block 1, then
        // indPred <= 1 halves again
        assert_eq!(stats.rows_raw, 400);
        assert_eq!(stats.rows_after_pred, 75 + 1);
        assert_eq!(out.num_rows(), 76);
        assert_eq!(out.schema().len(), 2);
        assert_eq!(out.schema().field(1).unwrap().name, "url");
        assert_eq!(stats.blocks_skipped, 0);
    }

    #[test]
    fn columnar_skips_blocks_via_stats() {
        let (w, meta, ids, _) = setup(FileFormat::Columnar);
        let (out, stats) = w.scan_blocks(&meta, &ids, &spec(), None).unwrap();
        // blocks 2 and 3 have corPred min 200/300 > 149: skipped outright
        assert_eq!(stats.blocks_skipped, 2);
        assert_eq!(stats.blocks_read, 2);
        assert_eq!(stats.rows_raw, 200);
        assert_eq!(out.num_rows(), 76);
    }

    #[test]
    fn columnar_reads_fewer_bytes_than_text() {
        let (wt, mt, idst, _) = setup(FileFormat::Text);
        let (wc, mc, idsc, _) = setup(FileFormat::Columnar);
        let (_, st) = wt.scan_blocks(&mt, &idst, &spec(), None).unwrap();
        let (_, sc) = wc.scan_blocks(&mc, &idsc, &spec(), None).unwrap();
        assert!(
            sc.bytes_read * 2 < st.bytes_read,
            "columnar {} vs text {}",
            sc.bytes_read,
            st.bytes_read
        );
    }

    #[test]
    fn bloom_filter_prunes_rows() {
        let (w, meta, ids, _) = setup(FileFormat::Columnar);
        let mut bf = BloomFilter::new(BloomParams::new(1 << 14, 2).unwrap());
        // only keys 0..10 may join
        for k in 0..10 {
            bf.insert(k);
        }
        let (out, stats) = w.scan_blocks(&meta, &ids, &spec(), Some(&bf)).unwrap();
        assert!(stats.rows_after_bloom < stats.rows_after_pred);
        // all surviving keys are in the filter (no false negatives ever)
        let keys = out.column(0).unwrap().as_i32().unwrap();
        for &k in keys {
            assert!(bloom_accepts(&bf, i64::from(k)));
        }
        // true members with indPred<=1 pass: keys 0..10 with indPred<=1 → 5 rows minimum
        assert!(stats.rows_after_bloom >= 5);
    }

    #[test]
    fn metrics_reported() {
        let (w, meta, ids, m) = setup(FileFormat::Columnar);
        w.scan_blocks(&meta, &ids, &spec(), None).unwrap();
        assert_eq!(m.get("jen.scan.blocks_skipped"), 2);
        assert!(m.get("jen.scan.bytes_read") > 0);
        assert_eq!(m.get("jen.scan.rows_after_pred"), 76);
    }

    #[test]
    fn build_bloom_from_covers_batch_keys() {
        let (w, meta, ids, m) = setup(FileFormat::Columnar);
        let (out, _) = w.scan_blocks(&meta, &ids, &spec(), None).unwrap();
        let bf = w
            .build_bloom_from(
                &out,
                0,
                BloomFilter::new(BloomParams::new(1 << 14, 2).unwrap()),
            )
            .unwrap();
        let keys = out.column(0).unwrap().as_i32().unwrap();
        for &k in keys {
            assert!(bf.may_contain(i64::from(k)));
        }
        assert_eq!(m.get("jen.bloom.keys_inserted"), out.num_rows() as u64);
    }

    #[test]
    fn projection_only_scan_without_bloom_key() {
        let (w, meta, ids, _) = setup(FileFormat::Columnar);
        let s = ScanSpec {
            pred: Expr::col_le(1, 99),
            proj: vec![3],
            bloom_key: None,
        };
        let (out, _) = w.scan_blocks(&meta, &ids, &s, None).unwrap();
        assert_eq!(out.num_rows(), 100);
        assert_eq!(out.schema().len(), 1);
    }

    #[test]
    fn empty_block_list_gives_empty_batch() {
        let (w, meta, _, _) = setup(FileFormat::Text);
        let (out, stats) = w.scan_blocks(&meta, &[], &spec(), None).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(stats.blocks_read, 0);
    }
}
