//! The per-worker local join, with optional spilling.
//!
//! [`LocalJoiner`] is what a JEN worker uses for its repartition-based
//! local join: an in-memory hash join by default (the paper's JEN), or a
//! [`HybridHashJoiner`] when the engine is configured with a build-side
//! memory budget — a row limit, a byte budget from the system's
//! [`BufferPool`](hybrid_common::mempool::BufferPool), or both — the
//! paper's stated future work, reachable through `HybridSystem`
//! configuration.

use crate::spill::HybridHashJoiner;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::mempool::WorkerBudget;
use hybrid_common::metrics::Metrics;
use hybrid_common::ops::HashJoiner;
use hybrid_common::schema::Schema;

/// How many spill partitions the hybrid join fans out to (per depth).
const SPILL_PARTITIONS: usize = 8;

/// A local join that is in-memory when it fits and hybrid-hash otherwise.
/// The hybrid variant is boxed: it carries spill bookkeeping that would
/// otherwise bloat every in-memory joiner.
pub enum LocalJoiner {
    InMemory(HashJoiner),
    Hybrid(Box<HybridHashJoiner>),
}

impl LocalJoiner {
    /// `memory_limit_rows = None` plus an uncapped (or absent) `budget`
    /// reproduces the paper's all-in-memory JEN; a row limit and/or a
    /// byte-capped [`WorkerBudget`] enables the hybrid hash join with
    /// dynamic partition eviction past the configured residency.
    pub fn new(
        build_schema: Schema,
        build_key: usize,
        memory_limit_rows: Option<usize>,
        budget: Option<WorkerBudget>,
        metrics: Metrics,
    ) -> Result<LocalJoiner> {
        let byte_capped = budget.as_ref().is_some_and(|b| b.cap_bytes().is_some());
        Ok(if memory_limit_rows.is_none() && !byte_capped {
            LocalJoiner::InMemory(HashJoiner::new(build_schema, build_key))
        } else {
            LocalJoiner::Hybrid(Box::new(HybridHashJoiner::new(
                build_schema,
                build_key,
                memory_limit_rows,
                budget.filter(|b| b.cap_bytes().is_some()),
                SPILL_PARTITIONS,
                metrics,
            )?))
        })
    }

    /// Add a build-side batch (shuffled HDFS data).
    pub fn build(&mut self, batch: Batch) -> Result<()> {
        match self {
            LocalJoiner::InMemory(j) => j.build(batch),
            LocalJoiner::Hybrid(g) => g.add_build(batch),
        }
    }

    /// Probe with every batch and return the concatenated join output
    /// (`build_row ++ probe_row`).
    pub fn probe_all(
        self,
        probe_schema: &Schema,
        probes: Vec<Batch>,
        probe_key: usize,
    ) -> Result<Batch> {
        match self {
            LocalJoiner::InMemory(j) => {
                let outs: Vec<Batch> = probes
                    .iter()
                    .map(|p| j.probe(p, probe_key))
                    .collect::<Result<_>>()?;
                match outs.first() {
                    Some(first) => Batch::concat(first.schema().clone(), &outs),
                    None => {
                        // no probe data at all: empty joined output
                        let empty_probe = Batch::empty(probe_schema.clone());
                        j.probe(&empty_probe, probe_key)
                    }
                }
            }
            LocalJoiner::Hybrid(mut g) => {
                for p in probes {
                    g.add_probe(p, probe_key)?;
                }
                g.finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;

    fn build_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32)])
    }

    fn probe_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)])
    }

    fn batch_build(keys: &[i32]) -> Batch {
        Batch::new(build_schema(), vec![Column::I32(keys.to_vec())]).unwrap()
    }

    fn batch_probe(keys: &[i32]) -> Batch {
        Batch::new(
            probe_schema(),
            vec![
                Column::I32(keys.to_vec()),
                Column::I64(keys.iter().map(|&k| i64::from(k) * 10).collect()),
            ],
        )
        .unwrap()
    }

    fn sorted_rows(b: &Batch) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = (0..b.num_rows())
            .map(|r| b.row(r).iter().map(|d| d.to_string()).collect())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn in_memory_and_hybrid_agree() {
        let build: Vec<Batch> = (0..4).map(|i| batch_build(&[i, i + 10, i])).collect();
        let probes: Vec<Batch> = (0..3).map(|i| batch_probe(&[i, 11, 99])).collect();

        let mut mem = LocalJoiner::new(build_schema(), 0, None, None, Metrics::new()).unwrap();
        for b in build.clone() {
            mem.build(b).unwrap();
        }
        let mem_out = mem.probe_all(&probe_schema(), probes.clone(), 0).unwrap();

        let m = Metrics::new();
        let mut hybrid = LocalJoiner::new(build_schema(), 0, Some(2), None, m.clone()).unwrap();
        for b in build {
            hybrid.build(b).unwrap();
        }
        let hybrid_out = hybrid.probe_all(&probe_schema(), probes, 0).unwrap();

        assert_eq!(sorted_rows(&mem_out), sorted_rows(&hybrid_out));
        assert!(m.get("jen.spill.activations") > 0, "limit of 2 must spill");
    }

    #[test]
    fn uncapped_budget_stays_in_memory() {
        use hybrid_common::mempool::BufferPool;
        let pool = BufferPool::new(None, Metrics::new());
        let q = pool.reserve_remaining("q").unwrap();
        let j = LocalJoiner::new(
            build_schema(),
            0,
            None,
            Some(q.worker_share(4)),
            Metrics::new(),
        )
        .unwrap();
        assert!(matches!(j, LocalJoiner::InMemory(_)));
    }

    #[test]
    fn empty_probes_yield_empty_output_with_joined_schema() {
        let mut j = LocalJoiner::new(build_schema(), 0, None, None, Metrics::new()).unwrap();
        j.build(batch_build(&[1])).unwrap();
        let out = j.probe_all(&probe_schema(), vec![], 0).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().len(), 3);
    }
}
