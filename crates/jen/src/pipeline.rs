//! The Fig. 7 scan pipeline: reading and processing overlap.
//!
//! The paper dedicates a read thread per disk and a separate process thread
//! that parses, filters, applies the database Bloom filter and routes rows
//! to send buffers, all running concurrently (§4.4). This module reproduces
//! the structure with a dedicated **read thread** that pulls raw block bytes
//! from (simulated) HDFS through a small bounded queue while the **process
//! thread** decodes and filters — so I/O genuinely overlaps compute, block
//! `k+1` being fetched while block `k` is parsed.
//!
//! The result is bit-identical to [`JenWorker::scan_blocks`]; the
//! integration tests assert exactly that.

use crate::worker::{JenWorker, ScanSpec, ScanStats};
use crossbeam::channel::bounded;
use hybrid_bloom::BloomFilter;
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::BlockId;
use hybrid_hdfs::TableMeta;
use std::sync::Arc;

/// How many raw blocks may sit between the read and process threads.
/// Small, like a real double-buffered reader: enough to hide latency, not
/// enough to buffer the table.
const READ_QUEUE_DEPTH: usize = 4;

/// Pipelined variant of [`JenWorker::scan_blocks`]: a read thread streams
/// raw blocks to the calling thread, which decodes/filters/projects.
/// Returns the whole share as one concatenated batch; vectorized consumers
/// that route per block should call [`scan_blocks_batched`] instead and
/// skip the concat.
pub fn scan_blocks_pipelined(
    worker: &JenWorker,
    table: &TableMeta,
    blocks: &[BlockId],
    spec: &ScanSpec,
    bloom: Option<&BloomFilter>,
) -> Result<(Batch, ScanStats)> {
    let out_schema = table.schema.project(&spec.proj)?;
    let (parts, stats) = scan_blocks_batched(worker, table, blocks, spec, bloom)?;
    let out = Batch::concat(out_schema, &parts)
        .map_err(|e| HybridError::exec(format!("pipelined scan concat failed: {e}")))?;
    Ok((out, stats))
}

/// [`scan_blocks_pipelined`] without the final concatenation: the filtered,
/// projected output of each surviving block as its own columnar batch, in
/// block order. This is the shape the batched shuffle consumes — routing
/// starts on block `k` while block `k+1` is still being fetched, and no
/// whole-share copy is ever materialized. Scan metering is identical to the
/// concatenated variant.
pub fn scan_blocks_batched(
    worker: &JenWorker,
    table: &TableMeta,
    blocks: &[BlockId],
    spec: &ScanSpec,
    bloom: Option<&BloomFilter>,
) -> Result<(Vec<Batch>, ScanStats)> {
    let read_cols = read_cols_of(spec);
    let mut stats = ScanStats::default();
    let mut parts: Vec<Batch> = Vec::with_capacity(blocks.len());
    let span = worker
        .tracer()
        .start(worker.span_label(), hybrid_common::trace::Stage::Scan);

    std::thread::scope(|scope| -> Result<()> {
        let (tx, rx) = bounded::<Result<Arc<Vec<u8>>>>(READ_QUEUE_DEPTH);
        let hdfs = worker.hdfs().clone();
        let metrics = worker.metrics().clone();
        let datanode = worker.datanode();
        let block_list: Vec<BlockId> = blocks.to_vec();

        // The read thread: one block at a time, back-pressured by the queue.
        scope.spawn(move || {
            for block in block_list {
                let res = hdfs.read().read_block_into(block, datanode, &metrics);
                let failed = res.is_err();
                if tx.send(res).is_err() || failed {
                    return; // process side hung up, or read error delivered
                }
            }
        });

        // The process thread (this thread): decode, filter, bloom, project.
        while let Ok(delivery) = rx.recv() {
            let bytes = delivery?;
            if let Some(batch) =
                worker.process_block(table, &bytes, &read_cols, spec, bloom, &mut stats)?
            {
                parts.push(batch);
            }
        }
        Ok(())
    })?;

    span.done(stats.bytes_read as u64, stats.rows_raw as u64);
    report(worker, &stats);
    Ok((parts, stats))
}

fn read_cols_of(spec: &ScanSpec) -> Vec<usize> {
    let mut cols: Vec<usize> = spec
        .pred
        .referenced_columns()
        .into_iter()
        .chain(spec.proj.iter().copied())
        .chain(spec.bloom_key)
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

fn report(worker: &JenWorker, stats: &ScanStats) {
    let m = worker.metrics();
    m.add("jen.scan.blocks_read", stats.blocks_read as u64);
    m.add("jen.scan.blocks_skipped", stats.blocks_skipped as u64);
    m.add("jen.scan.bytes_read", stats.bytes_read as u64);
    m.add("jen.scan.rows_raw", stats.rows_raw as u64);
    m.add("jen.scan.rows_after_pred", stats.rows_after_pred as u64);
    m.add("jen.scan.rows_after_bloom", stats.rows_after_bloom as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::expr::Expr;
    use hybrid_common::ids::JenWorkerId;
    use hybrid_common::metrics::Metrics;
    use hybrid_common::schema::Schema;
    use hybrid_hdfs::HdfsCluster;
    use hybrid_storage::{encode, FileFormat};
    use parking_lot::RwLock;

    fn schema() -> Schema {
        Schema::from_pairs(&[("joinKey", DataType::I32), ("corPred", DataType::I32)])
    }

    fn setup(format: FileFormat, nblocks: usize) -> (JenWorker, TableMeta, Vec<BlockId>) {
        let metrics = Metrics::new();
        let mut hdfs = HdfsCluster::new(2, 1, metrics.clone()).unwrap();
        let blocks: Vec<Vec<u8>> = (0..nblocks)
            .map(|i| {
                let base = (i * 50) as i32;
                let b = Batch::new(
                    schema(),
                    vec![
                        Column::I32((base..base + 50).collect()),
                        Column::I32((base..base + 50).collect()),
                    ],
                )
                .unwrap();
                encode(format, &b)
            })
            .collect();
        hdfs.write_file("/L", blocks).unwrap();
        let ids: Vec<BlockId> = hdfs
            .file_blocks("/L")
            .unwrap()
            .iter()
            .map(|b| b.id)
            .collect();
        let meta = TableMeta {
            name: "L".into(),
            path: "/L".into(),
            format,
            schema: schema(),
        };
        (
            JenWorker::new(JenWorkerId(0), Arc::new(RwLock::new(hdfs)), metrics),
            meta,
            ids,
        )
    }

    fn spec() -> ScanSpec {
        ScanSpec {
            pred: Expr::col_le(1, 120),
            proj: vec![0],
            bloom_key: None,
        }
    }

    #[test]
    fn pipelined_equals_sequential() {
        for format in [FileFormat::Text, FileFormat::Columnar] {
            let (w, meta, ids) = setup(format, 8);
            let (seq, seq_stats) = w.scan_blocks(&meta, &ids, &spec(), None).unwrap();
            let (pip, pip_stats) = scan_blocks_pipelined(&w, &meta, &ids, &spec(), None).unwrap();
            assert_eq!(seq, pip, "format {format}");
            assert_eq!(seq_stats, pip_stats);
        }
    }

    #[test]
    fn many_blocks_deeper_than_queue() {
        // more blocks than READ_QUEUE_DEPTH exercises back-pressure
        let (w, meta, ids) = setup(FileFormat::Columnar, 32);
        let (out, stats) = scan_blocks_pipelined(&w, &meta, &ids, &spec(), None).unwrap();
        assert_eq!(out.num_rows(), 121);
        assert!(stats.blocks_skipped > 0);
    }

    #[test]
    fn read_error_propagates() {
        let (w, meta, ids) = setup(FileFormat::Text, 4);
        // kill both replicas' nodes: reads fail
        {
            let hdfs = w.hdfs().clone();
            let mut guard = hdfs.write();
            guard.kill_datanode(hybrid_common::ids::DataNodeId(0));
            guard.kill_datanode(hybrid_common::ids::DataNodeId(1));
        }
        let err = scan_blocks_pipelined(&w, &meta, &ids, &spec(), None).unwrap_err();
        assert!(matches!(err, HybridError::Storage(_)));
    }

    #[test]
    fn empty_block_list() {
        let (w, meta, _) = setup(FileFormat::Text, 2);
        let (out, stats) = scan_blocks_pipelined(&w, &meta, &[], &spec(), None).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(stats, ScanStats::default());
    }
}
